"""Figure 14 — Trace experiment: JCT and makespan vs YARN-CS.

Paper: replaying a Philly-style trace on a 64-GPU cluster (32 V100 +
16 P100 + 16 T4), EasyScale-homo improves average JCT by 8.3x and
makespan by 2.5x over YARN's capacity scheduler; EasyScale-heter reaches
13.2x / 2.8x by also harvesting other GPU types.

Regenerates: the JCT/makespan bars for the three schedulers on the same
trace.  Absolute ratios depend on the trace draw; the asserted shape is
decisive EasyScale wins on both metrics, with heter >= homo on JCT.
"""

from repro.hw import microbench_cluster
from repro.sched import (
    ClusterSimulator,
    EasyScalePolicy,
    YarnCapacityScheduler,
    generate_trace,
)

from benchmarks.conftest import print_header, print_table, smoke_scale

TRACE = dict(
    num_jobs=smoke_scale(60, 20),
    seed=4,
    mean_interarrival_s=smoke_scale(45, 15),
    mean_duration_s=1500,
    burst_fraction=0.5,
    type_weights={"v100": 0.3, "p100": 0.4, "t4": 0.3},
    demand=[(1, 0.3), (2, 0.2), (4, 0.2), (8, 0.18), (16, 0.12)],
    duration_sigma=1.1,
    max_duration_factor=20,
)


def run_experiment():
    jobs = generate_trace(**TRACE)
    results = {}
    for policy in (YarnCapacityScheduler(), EasyScalePolicy(False), EasyScalePolicy(True)):
        results[policy.name] = ClusterSimulator(microbench_cluster(), jobs, policy).run()
    return results


def test_fig14_trace_jct_makespan(run_once):
    results = run_once(run_experiment)

    yarn = results["yarn-cs"]
    homo = results["easyscale-homo"]
    heter = results["easyscale-heter"]

    print_header("Figure 14: average JCT and makespan (64-GPU trace)")
    print_table(
        ["scheduler", "avg JCT (s)", "makespan (s)", "JCT vs YARN", "makespan vs YARN"],
        [
            [
                name,
                f"{r.average_jct:.0f}",
                f"{r.makespan:.0f}",
                f"x{yarn.average_jct / r.average_jct:.1f}",
                f"x{yarn.makespan / r.makespan:.2f}",
            ]
            for name, r in results.items()
        ],
        fmt="16",
    )
    print(
        "\npaper: EasyScale-homo x8.3 JCT / x2.5 makespan; "
        "EasyScale-heter x13.2 / x2.8"
    )

    for result in results.values():
        assert len(result.completed) == TRACE["num_jobs"]
    # the JCT gap widens with backlog depth; the smoke trace is shallower,
    # so it asserts a proportionally smaller (still decisive) margin
    jct_factor = smoke_scale(3.0, 2.0)
    makespan_factor = smoke_scale(1.5, 1.4)
    assert homo.average_jct < yarn.average_jct / jct_factor
    assert heter.average_jct < yarn.average_jct / jct_factor
    assert homo.makespan < yarn.makespan / makespan_factor
    assert heter.makespan < yarn.makespan / makespan_factor
    assert heter.average_jct <= homo.average_jct * 1.05
