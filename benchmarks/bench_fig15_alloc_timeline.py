"""Figure 15 — Allocated GPUs over time: EasyScale-homo vs -heter.

Paper: over the trace run, EasyScale-heter's allocated GPU count is
generally at or above EasyScale-homo's — the heterogeneous plans let jobs
soak up idle P100/T4 capacity that homo jobs (pinned to one type each)
must leave stranded.

Regenerates: the allocation time series for both policies (sampled) and
their time-averaged allocated GPUs.
"""

import numpy as np

from repro.hw import microbench_cluster
from repro.sched import ClusterSimulator, EasyScalePolicy, generate_trace

from benchmarks.conftest import print_header

from benchmarks.bench_fig14_trace import TRACE


def time_average(timeline):
    if len(timeline) < 2:
        return 0.0
    total = 0.0
    for (t0, a), (t1, _) in zip(timeline, timeline[1:]):
        total += a * (t1 - t0)
    return total / (timeline[-1][0] - timeline[0][0])


def sample(timeline, points=16):
    """Step-function values at evenly spaced times."""
    t_end = timeline[-1][0]
    times = np.linspace(0, t_end, points)
    values = []
    idx = 0
    current = 0
    for t in times:
        while idx < len(timeline) and timeline[idx][0] <= t:
            current = timeline[idx][1]
            idx += 1
        values.append(current)
    return times, values


def run_experiment():
    jobs = generate_trace(**TRACE)
    out = {}
    for policy in (EasyScalePolicy(False), EasyScalePolicy(True)):
        result = ClusterSimulator(microbench_cluster(), jobs, policy).run()
        out[policy.name] = result.allocation_timeline
    return out


def test_fig15_allocation_timeline(run_once):
    timelines = run_once(run_experiment)

    print_header("Figure 15: allocated GPUs over time (of 64)")
    homo_t = timelines["easyscale-homo"]
    heter_t = timelines["easyscale-heter"]
    times, homo_vals = sample(homo_t)
    _, heter_vals = sample(heter_t)
    print(f"{'time (s)':>10} {'homo':>6} {'heter':>6}")
    for t, h, x in zip(times, homo_vals, heter_vals):
        print(f"{t:>10.0f} {h:>6d} {x:>6d}")

    homo_avg = time_average(homo_t)
    heter_avg = time_average(heter_t)
    print(f"\ntime-averaged allocation: homo {homo_avg:.1f}, heter {heter_avg:.1f}")
    print("paper: allocated GPUs of EasyScale-heter are generally higher than homo")

    assert max(v for _, v in homo_t) <= 64
    assert max(v for _, v in heter_t) <= 64
    # heter harvests at least as much of the cluster as homo (small noise
    # margin: grant ordering differs between the runs)
    assert heter_avg >= homo_avg * 0.95
