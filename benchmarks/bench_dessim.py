"""DES at production scale — 3,000-GPU month-long trace, heap vs batched core.

The paper's production claims (Fig-1 diurnal swing, Fig-14/16 replays)
are made at thousands of GPUs over weeks; this regenerator replays a
seeded 3,000-GPU, 30-day diurnal multi-tenant trace through both
simulator cores and measures event throughput.  The batched core drains
coincident events in one pass, advances all running jobs with one
vectorized step, skips reschedules at quiescent decision points, and
shares Role-2 plan searches across same-class jobs — none of which may
change a single event: the two logs must stay byte-identical.

Regenerates: wall cost and event throughput for both cores, and the
batched/heap speedup.  Asserts byte-identical ``EventLog`` fingerprints
and, at full scale, the >= 10x speedup the batched core exists for.
"""

import time

from repro.hw import microbench_cluster, production_cluster
from repro.sched import ClusterSimulator, EasyScalePolicy, diurnal_trace

from benchmarks.conftest import (
    print_header,
    print_table,
    record_trajectory,
    smoke_scale,
)

GPUS = smoke_scale(3000, 64)
NUM_JOBS = smoke_scale(2000, 60)
DAYS = smoke_scale(30, 0.5)
MEAN_DURATION_S = smoke_scale(8 * 3600.0, 4 * 3600.0)
SEED = 11
#: full-scale acceptance bar; the smoke trace is too small for the
#: asymptotic win (quiescent rounds and class sharing need scale), so it
#: only checks the batched core is not pathologically slower
MIN_SPEEDUP = smoke_scale(10.0, 0.2)


def _build_cluster():
    return microbench_cluster() if GPUS == 64 else production_cluster(GPUS)


def run_experiment():
    jobs = diurnal_trace(
        num_jobs=NUM_JOBS, seed=SEED, days=DAYS, mean_duration_s=MEAN_DURATION_S
    )

    def replay(core):
        sim = ClusterSimulator(_build_cluster(), jobs, EasyScalePolicy(True))
        runner = {"heap": sim.run, "batched": sim.run_batched}[core]
        start = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - start
        return elapsed, result

    heap_s, heap_result = replay("heap")
    batched_s, batched_result = replay("batched")
    return {
        "jobs": jobs,
        "heap_s": heap_s,
        "batched_s": batched_s,
        "heap_result": heap_result,
        "batched_result": batched_result,
    }


def test_dessim_month_trace_replay(run_once):
    r = run_once(run_experiment)

    # bitwise contract first: a speedup only counts if it is the *same*
    # simulation, event for event
    assert (
        r["batched_result"].events.fingerprint()
        == r["heap_result"].events.fingerprint()
    )
    assert r["batched_result"].jcts == r["heap_result"].jcts

    events = len(r["heap_result"].events)
    heap_eps = events / r["heap_s"]
    batched_eps = events / r["batched_s"]
    speedup = r["heap_s"] / r["batched_s"]

    print_header(
        f"DES core scaling: {GPUS} GPUs, {NUM_JOBS} jobs, {DAYS}-day diurnal trace"
    )
    print_table(
        ["core", "wall (s)", "events/s"],
        [
            ["heap", f"{r['heap_s']:.2f}", f"{heap_eps:,.0f}"],
            ["batched", f"{r['batched_s']:.2f}", f"{batched_eps:,.0f}"],
        ],
        fmt="12",
    )
    print(f"\nbatched/heap event-throughput speedup x{speedup:.1f} "
          f"({events} events, fingerprints identical)")

    assert speedup >= MIN_SPEEDUP, (
        f"batched core speedup x{speedup:.2f} below the x{MIN_SPEEDUP} bar"
    )

    record_trajectory(
        "dessim", "month_trace",
        {"gpus": GPUS, "jobs": NUM_JOBS, "days": DAYS, "shape": "diurnal"},
        {"heap_s": [r["heap_s"]], "batched_s": [r["batched_s"]],
         "speedup_x": [speedup]},
        directions={"speedup_x": "higher"},
    )
