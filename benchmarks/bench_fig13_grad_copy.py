"""Figure 13 — The overhead of gradient copy and synchronization.

Paper: with 8 ESTs on one GPU, ESTs 0-6 asynchronously stage their
gradients (the D2H copy hides under the next EST's compute), and EST 7
performs the gradient synchronization — which is *cheaper* than DDP's,
because by then every sibling's gradients are already staged, whereas DDP
workers can straggle.  Normalized per-EST time is therefore at or below
the DDP-8GPU bar.

Regenerates: normalized per-EST execution time (EST 0-6, EST 7) vs the
DDP-8GPU reference for all eight workloads, from the worker overlap model
plus a real 8-EST execution validating that staging happens as described.
"""

import numpy as np

from repro.core import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
from repro.hw import V100, context_switch_time, minibatch_time
from repro.models import TABLE1, get_workload
from repro.optim import SGD

from benchmarks.conftest import print_header, print_table

NUM_ESTS = 8


def timing_rows():
    rows = []
    for name in TABLE1:
        spec = get_workload(name)
        ddp_time = minibatch_time(spec, V100) + spec.params_gb / 5.0  # compute + allreduce
        switch = context_switch_time(spec, V100)
        # EST 0..6: compute + exposed staging fraction (copy mostly hidden)
        est_0_6 = minibatch_time(spec, V100) + switch
        # EST 7: compute + synchronization over pre-staged gradients; the
        # straggler wait DDP pays (one extra switch-equivalent) is absent
        est_7 = minibatch_time(spec, V100) + spec.params_gb / 5.0 - switch
        rows.append(
            {
                "model": name,
                "est_0_6": est_0_6 / ddp_time,
                "est_7": est_7 / ddp_time,
            }
        )
    return rows


def staging_check():
    """Run a real 8-EST global step and verify the staging invariant."""
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(128, seed=3)
    config = EasyScaleJobConfig(num_ests=NUM_ESTS, seed=1, batch_size=4)
    engine = EasyScaleEngine(
        spec,
        dataset,
        config,
        lambda m: SGD(m.named_parameters(), lr=0.05),
        WorkerAssignment.balanced([V100], NUM_ESTS),
    )
    worker = engine.workers[0]
    results = worker.run_global_step(
        engine.model,
        load_batch=lambda v: engine.loader.load(v, 0, 0),
        named_params=engine._named_params,
    )
    exposed = [r.exposed_copy_time for r in results]
    return exposed


def run_experiment():
    return timing_rows(), staging_check()


def test_fig13_gradient_copy_and_sync(run_once):
    rows, exposed = run_once(run_experiment)

    print_header("Figure 13: per-EST time normalized to DDP-8GPU")
    print_table(
        ["model", "EST 0-6", "EST 7"],
        [[r["model"], f"{r['est_0_6']:.3f}", f"{r['est_7']:.3f}"] for r in rows],
        fmt="15",
    )
    print("\nreal 8-EST step, exposed staging time per EST:")
    print("  " + " ".join(f"{v * 1000:.1f}ms" for v in exposed))
    print("(ESTs 0-6 stage under the next EST's compute; EST 7 has nothing left to hide)")

    for r in rows:
        # competitive or better than DDP (paper: "superior or competitive")
        assert r["est_0_6"] <= 1.05
        assert r["est_7"] <= 1.0 + 1e-9
    # staging invariant from the real engine
    assert all(v > 0 for v in exposed[:-1])
    assert exposed[-1] == 0.0
