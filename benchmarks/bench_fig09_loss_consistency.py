"""Figure 9 — Loss-curve difference of EasyScale and DDP across 3 stages.

Paper: ResNet50 and VGG19 train through stage 0 (4x V100), stage 1
(2x V100, elasticity), stage 2 (1x V100 + 2x P100, heterogeneity), 100
mini-batches each.  Plotting EasyScale's last-worker loss minus the DDP
reference's:

- **D1** is identical to DDP-homo through stages 0-1, diverges in stage 2;
- **D0** diverges already at stage 1 (bucket mapping lost on restart);
- **D1+D2** is identical to DDP-heter in *all* stages;
- **D0+D2** diverges at stage 1 like D0.

Regenerates: the per-stage max |loss difference| for all four determinism
configurations, for both models, and asserts exactly that zero/non-zero
pattern.
"""

import numpy as np

from repro.core import (
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
)
from repro.ddp import DDPTrainer, ddp_heter_config, ddp_homo_config
from repro.hw import P100, V100
from repro.models import get_workload
from repro.optim import SGD
from repro.utils.fingerprint import fingerprint_state_dict

from benchmarks.conftest import print_header, print_table, smoke_scale

SEED = 5
STEPS_PER_STAGE = smoke_scale(8, 3)
NUM_ESTS = 4
BATCH = 8
STAGES = [
    [V100, V100, V100, V100],
    [V100, V100],
    [V100, P100, P100],
]


def sgd(model):
    return SGD(model.named_parameters(), lr=0.05, momentum=0.9)


def ddp_losses(spec, dataset, heter):
    """Last-worker losses plus the parameter fingerprint at each stage end."""
    config = (
        ddp_heter_config(NUM_ESTS, ["v100"] * NUM_ESTS, seed=SEED, batch_size=BATCH)
        if heter
        else ddp_homo_config(NUM_ESTS, seed=SEED, batch_size=BATCH)
    )
    trainer = DDPTrainer(spec, dataset, config, sgd)
    digests = []
    for _ in STAGES:
        trainer.train_steps(STEPS_PER_STAGE)
        digests.append(fingerprint_state_dict(trainer.model.state_dict()))
    return np.array([row[-1] for row in trainer.loss_history]), digests


def easyscale_losses(spec, dataset, determinism):
    config = EasyScaleJobConfig(
        num_ests=NUM_ESTS,
        seed=SEED,
        batch_size=BATCH,
        determinism=determinism_from_label(determinism),
    )
    engine = EasyScaleEngine(
        spec, dataset, config, sgd, WorkerAssignment.balanced(STAGES[0], NUM_ESTS)
    )
    losses = []
    digests = []
    for stage_idx, gpus in enumerate(STAGES):
        if stage_idx > 0:
            engine = engine.reconfigure(WorkerAssignment.balanced(gpus, NUM_ESTS))
        losses.extend(engine.train_steps(STEPS_PER_STAGE))
        digests.append(fingerprint_state_dict(engine.model.state_dict()))
    return np.array(losses), digests


def run_experiment():
    results = {}
    for model_name in ("resnet50", "vgg19"):
        spec = get_workload(model_name)
        dataset = spec.build_dataset(256, seed=9)
        ref = {
            False: ddp_losses(spec, dataset, heter=False),
            True: ddp_losses(spec, dataset, heter=True),
        }
        per_config = {}
        for determinism in ("D0", "D1", "D0+D2", "D1+D2"):
            heter = "D2" in determinism
            ref_losses, ref_digests = ref[heter]
            losses, digests = easyscale_losses(spec, dataset, determinism)
            diff = np.abs(losses - ref_losses)
            stage_max = [
                float(diff[s * STEPS_PER_STAGE : (s + 1) * STEPS_PER_STAGE].max())
                for s in range(len(STAGES))
            ]
            bitwise = [d == r for d, r in zip(digests, ref_digests)]
            per_config[determinism] = (stage_max, bitwise)
        results[model_name] = per_config
    return results


def test_fig09_loss_consistency(run_once):
    results = run_once(run_experiment)

    for model_name, per_config in results.items():
        print_header(
            f"Figure 9 ({model_name}): max |EasyScale loss - DDP loss| per stage"
        )
        print_table(
            ["config", "stage0 4xV100", "stage1 2xV100", "stage2 V100+2xP100", "bitwise", "reference"],
            [
                [cfg] + [f"{v:.2e}" for v in stages]
                + ["/".join("=" if b else "!" for b in bitwise)]
                + ["DDP-heter" if "D2" in cfg else "DDP-homo"]
                for cfg, (stages, bitwise) in per_config.items()
            ],
            fmt="14",
        )

    for model_name, per_config in results.items():
        (_, d0), (_, d1) = per_config["D0"], per_config["D1"]
        (_, d0d2), (_, d1d2) = per_config["D0+D2"], per_config["D1+D2"]
        # D1+D2: bitwise identical to DDP-heter in every stage
        assert d1d2 == [True, True, True], f"{model_name}: D1+D2 must match DDP-heter"
        # D1: bitwise through the elastic stages, broken by heterogeneity
        assert d1[:2] == [True, True], f"{model_name}: D1 must survive elasticity"
        assert d1[2] is False, f"{model_name}: D1 must diverge on heterogeneous GPUs"
        # D0 family: bitwise only until the first restart
        assert d0[0] is True and d0d2[0] is True
        assert d0[1] is False, f"{model_name}: D0 must diverge after checkpoint/restart"
        assert d0d2[1] is False, f"{model_name}: D0+D2 must diverge after restart"
