#!/usr/bin/env python
"""Cluster scheduling: YARN-CS vs EasyScale-homo vs EasyScale-heter.

Replays a Philly-style job trace on the paper's 64-GPU heterogeneous
cluster (32 V100 + 16 P100 + 16 T4) under three policies and reports the
Fig. 14 metrics (average JCT, makespan) plus a Fig. 15-style allocation
timeline.  Also shows one job's companion plan database and the resource
proposals its intra-job scheduler would submit.

Run:  python examples/cluster_scheduling.py
"""

from repro.hw import microbench_cluster
from repro.sched import (
    ClusterSimulator,
    CompanionModule,
    EasyScalePolicy,
    IntraJobScheduler,
    YarnCapacityScheduler,
    generate_trace,
)

TRACE_KW = dict(num_jobs=60, seed=42, mean_interarrival_s=15.0, mean_duration_s=1500.0)


def main() -> None:
    # --- a peek inside one job's companion module ----------------------
    capability = {"v100": 9.0, "p100": 4.05, "t4": 2.97}  # resnet50-like C_i
    companion = CompanionModule(max_p=8, capability=capability)
    print("top plans for an 8-EST job with {v100: 4, p100: 4, t4: 4} free:")
    for scored in companion.best_plans({"v100": 4, "p100": 4, "t4": 4}, top_k=4):
        print(f"  alloc={scored.plan.alloc}  est.throughput={scored.throughput:.2f} mb/s")

    intra = IntraJobScheduler("demo-job", companion)
    intra.apply_best_plan({"v100": 2})
    print("\nproposals submitted when owning 2x V100 with {v100: 2, t4: 4} free:")
    for prop in intra.propose({"v100": 2}, {"v100": 2, "t4": 4}):
        print(
            f"  +{prop.extra_gpus} {prop.gtype}: {prop.current_throughput:.1f} -> "
            f"{prop.proposed_throughput:.1f} mb/s  (speedup/GPU {prop.speedup_per_gpu:.2f})"
        )

    # --- the trace experiment ------------------------------------------
    jobs = generate_trace(**TRACE_KW)
    print(f"\nreplaying a {len(jobs)}-job trace on 64 GPUs (32 V100 + 16 P100 + 16 T4):")
    results = {}
    for policy in (YarnCapacityScheduler(), EasyScalePolicy(False), EasyScalePolicy(True)):
        result = ClusterSimulator(microbench_cluster(), jobs, policy).run()
        results[result.policy] = result
        print(
            f"  {result.policy:16s} avg JCT = {result.average_jct:9.1f} s   "
            f"makespan = {result.makespan:9.1f} s   completed {len(result.completed)}/{len(jobs)}"
        )

    yarn = results["yarn-cs"]
    homo = results["easyscale-homo"]
    heter = results["easyscale-heter"]
    print(
        f"\nimprovement over YARN-CS:  "
        f"homo  JCT x{yarn.average_jct / homo.average_jct:.1f}, makespan x{yarn.makespan / homo.makespan:.1f};  "
        f"heter JCT x{yarn.average_jct / heter.average_jct:.1f}, makespan x{yarn.makespan / heter.makespan:.1f}"
    )

    print("\nallocated GPUs over time (EasyScale-heter, sampled):")
    timeline = heter.allocation_timeline
    for t, used in timeline[:: max(1, len(timeline) // 12)]:
        bar = "#" * int(used * 40 / 64)
        print(f"  t={t:8.0f}s  {used:3d}/64  {bar}")


if __name__ == "__main__":
    main()
