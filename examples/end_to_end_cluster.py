#!/usr/bin/env python
"""End-to-end: the full EasyScale loop on a shared cluster.

Everything at once, the way the deployed system runs (§3.4 + §4):

- two training jobs (a conv model and a transformer) share a small
  heterogeneous cluster;
- each job has an intra-job scheduler with a companion plan database;
  the inter-job scheduler arbitrates their scale-out proposals by
  speedup-per-GPU;
- granted plans are concretized into EST-to-GPU assignments and applied
  to live EasyScaleEngines via on-demand checkpoints — while the jobs
  keep training;
- when a job finishes, its GPUs free up and the survivor immediately
  scales out onto them;
- at the end, each job's model is verified bitwise against its own
  fixed-resource DDP reference: the entire dynamic schedule was invisible.

Run:  python examples/end_to_end_cluster.py
"""

from repro.core import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment, determinism_from_label
from repro.ddp import DDPTrainer, ddp_heter_config
from repro.hw import Cluster, Machine, P100, V100
from repro.models import get_workload
from repro.optim import SGD
from repro.sched import CompanionModule, InterJobScheduler, IntraJobScheduler, plan_to_assignment
from repro.utils.fingerprint import fingerprint_state_dict

SEED = 31
ROUNDS = 6
STEPS_PER_ROUND = 2


def make_optimizer(model):
    return SGD(model.named_parameters(), lr=0.03, momentum=0.9)


class Job:
    """One elastic job: engine + intra-job scheduler + cluster ownership."""

    def __init__(self, job_id, workload, num_ests, total_steps, cluster):
        self.job_id = job_id
        self.spec = get_workload(workload)
        self.dataset = self.spec.build_dataset(256, seed=SEED)
        self.num_ests = num_ests
        self.remaining = total_steps
        self.cluster = cluster
        companion = CompanionModule(
            max_p=num_ests, capability=dict(self.spec.throughput)
        )
        self.scheduler = IntraJobScheduler(job_id, companion)
        config = EasyScaleJobConfig(
            num_ests=num_ests, seed=SEED, batch_size=8,
            determinism=determinism_from_label("D1+D2"),
        )
        # bootstrap on one V100 (EasyScale jobs start with whatever exists)
        self.cluster.allocate(job_id, "V100", 1)
        self.engine = EasyScaleEngine(
            self.spec, self.dataset, config, make_optimizer,
            WorkerAssignment.balanced([V100], num_ests),
        )
        self.scheduler.apply_best_plan(self.owned())

    def owned(self):
        counts = {}
        for gpu in self.cluster.owned_by(self.job_id):
            counts[gpu.type.name.lower()] = counts.get(gpu.type.name.lower(), 0) + 1
        return counts

    def apply_grant(self, gtype, count):
        self.cluster.allocate(self.job_id, gtype.upper(), count)
        scored = self.scheduler.apply_best_plan(self.owned())
        assignment = plan_to_assignment(scored.plan)
        self.engine = self.engine.reconfigure(assignment)
        print(f"  {self.job_id}: scaled to "
              f"{[g.name for g in assignment.gpus]} "
              f"(est. {scored.throughput:.1f} mb/s)")

    def train_round(self):
        steps = min(STEPS_PER_ROUND, self.remaining)
        self.engine.train_steps(steps)
        self.remaining -= steps
        return self.remaining <= 0

    def release_all(self):
        self.cluster.release_all(self.job_id)


def main() -> None:
    cluster = Cluster(
        [Machine.build("v100-node", V100, 4), Machine.build("p100-node", P100, 2)]
    )
    jobs = {
        "job-conv": Job("job-conv", "resnet50", num_ests=4, total_steps=8, cluster=cluster),
        "job-bert": Job("job-bert", "bert", num_ests=2, total_steps=12, cluster=cluster),
    }
    total_steps = {name: 0 for name in jobs}
    inter = InterJobScheduler()

    print(f"cluster: 4x V100 + 2x P100; jobs: {list(jobs)}\n")
    for round_idx in range(ROUNDS):
        active = {n: j for n, j in jobs.items() if j.remaining > 0}
        if not active:
            break
        free = {k.lower(): v for k, v in cluster.free_by_type().items()}
        proposals = []
        for job in active.values():
            proposals.extend(job.scheduler.propose(job.owned(), free))
        grants = inter.arbitrate(proposals, free)
        print(f"round {round_idx}: free={free}, grants="
              f"{[(g.job_id, g.gtype, g.gpus) for g in grants]}")
        for grant in grants:
            active[grant.job_id].apply_grant(grant.gtype, grant.gpus)
        for name, job in active.items():
            done = job.train_round()
            total_steps[name] = job.engine.global_step
            if done:
                print(f"  {name}: finished after {job.engine.global_step} steps; "
                      f"releasing {len(cluster.owned_by(name))} GPUs")
                job.release_all()

    print("\nverifying bitwise consistency against fixed DDP references ...")
    for name, job in jobs.items():
        reference = DDPTrainer(
            job.spec,
            job.dataset,
            ddp_heter_config(job.num_ests, ["v100"] * job.num_ests, seed=SEED, batch_size=8),
            make_optimizer,
        )
        reference.train_steps(total_steps[name])
        same = fingerprint_state_dict(job.engine.model.state_dict()) == fingerprint_state_dict(
            reference.model.state_dict()
        )
        print(f"  {name}: trained {total_steps[name]} steps elastically -> "
              f"{'bitwise IDENTICAL' if same else 'MISMATCH'}")
        if not same:
            raise SystemExit(f"{name} diverged!")


if __name__ == "__main__":
    main()
