#!/usr/bin/env python
"""Porting a custom training loop to EasyScale ("a few lines of code").

The paper's workloads kept their own training code; porting meant hooking
EasyScale into the step boundaries (§3.2, §5).  This example shows exactly
that: a hand-written model + custom loss + hand-rolled loop, wrapped in a
PortedTrainingSession.  The session provides the EST machinery, so the
custom loop scales 2 GPUs -> 1 GPU mid-training and still matches its own
fixed-resource run bitwise.

Run:  python examples/porting_custom_loop.py
"""

import numpy as np

from repro import nn
from repro.core import WorkerAssignment
from repro.core.porting import PortedTrainingSession
from repro.data import SharedDataLoader, SyntheticImageDataset
from repro.hw import V100
from repro.optim import SGD
from repro.tensor import Tensor
from repro.tensor.ops import flatten
from repro.utils.fingerprint import fingerprint_state_dict
from repro.utils.rng import RNGBundle

SEED = 21
NUM_ESTS = 4


class MyCustomNet(nn.Module):
    """A user's own architecture — not from the model zoo."""

    def __init__(self, rng):
        super().__init__()
        self.conv = nn.Conv2d(3, 6, 3, rng.spawn("c"), padding=1)
        self.bn = nn.BatchNorm2d(6)
        self.drop = nn.Dropout(0.2)
        self.head = nn.Linear(6 * 8 * 8, 10, rng.spawn("h"))

    def forward(self, x):
        h = self.bn(self.conv(x)).relu()
        h = self.drop(h)
        return self.head(flatten(h))


def my_loss(logits, targets):
    """The user's own label-smoothed cross entropy."""
    from repro.tensor.ops import log_softmax

    eps = 0.05
    logp = log_softmax(logits, axis=-1)
    n, k = logits.shape
    one_hot = np.full((n, k), eps / (k - 1), dtype=np.float32)
    one_hot[np.arange(n), targets] = 1.0 - eps
    return -(logp * Tensor(one_hot)).sum() * (1.0 / n)


def build_session(assignment):
    model = MyCustomNet(RNGBundle(SEED))
    optimizer = SGD(model.named_parameters(), lr=0.05, momentum=0.9)
    return PortedTrainingSession(
        model=model,
        optimizer=optimizer,
        num_ests=NUM_ESTS,
        seed=SEED,
        assignment=assignment,
    )


def run(schedule):
    dataset = SyntheticImageDataset(256, seed=SEED)
    loader = SharedDataLoader(dataset, num_replicas=NUM_ESTS, batch_size=8, seed=SEED)
    session = build_session(schedule[0][0])

    def my_step(batch):  # <-- the user's existing step, unchanged
        x, y = batch
        loss = my_loss(session.model(Tensor(x)), y.astype(np.int64))
        loss.backward()
        return loss

    losses = []
    for assignment, steps in schedule:
        session.reassign(assignment)  # <-- line 1 of the port
        for _ in range(steps):
            step_losses = session.global_step_with(  # <-- line 2 of the port
                my_step, lambda v, s: loader.load(v, 0, s)
            )
            losses.append(step_losses[-1])
    return session, losses


def main() -> None:
    two_gpus = WorkerAssignment.balanced([V100] * 2, NUM_ESTS)
    one_gpu = WorkerAssignment.balanced([V100], NUM_ESTS)

    print("run A: 8 steps on a fixed 2-GPU assignment")
    session_a, losses_a = run([(two_gpus, 8)])

    print("run B: 4 steps on 2 GPUs, scale in, 4 steps on 1 GPU")
    session_b, losses_b = run([(two_gpus, 4), (one_gpu, 4)])

    print(f"\n{'step':>4}  {'fixed':>10}  {'elastic':>10}")
    for i, (a, b) in enumerate(zip(losses_a, losses_b)):
        print(f"{i:>4}  {a:>10.6f}  {b:>10.6f}")

    da = fingerprint_state_dict(session_a.model.state_dict())
    db = fingerprint_state_dict(session_b.model.state_dict())
    print(f"\nfixed run digest  : {da[:32]}...")
    print(f"elastic run digest: {db[:32]}...")
    if da == db:
        print("bitwise IDENTICAL: the custom loop kept the guarantee.")
    else:
        raise SystemExit("mismatch!")


if __name__ == "__main__":
    main()
