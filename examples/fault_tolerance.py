#!/usr/bin/env python
"""Fault tolerance: survive preemption via on-demand disk checkpoints.

The production scenario of §5.3: an EasyScale job runs as a best-effort
tenant on a serving cluster.  A serving spike preempts *all* of its GPUs —
the paper's point is that this is not a failure (gang-scheduled Sync-SGD
jobs abort here; 61.7% of >8-GPU job failures in CompanyA's cluster were
resource revocations).  The job checkpoints in seconds, waits, and later
resumes on whatever GPUs exist — here a single T4 where it had 4 V100s —
with bitwise-identical training state (D1+D2).

Run:  python examples/fault_tolerance.py
"""

import os
import tempfile

from repro.core import (
    Checkpoint,
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
)
from repro.ddp import DDPTrainer, ddp_heter_config
from repro.hw import T4, V100
from repro.models import get_workload
from repro.optim import SGD
from repro.utils.fingerprint import fingerprint_state_dict

SEED = 13


def make_optimizer(model):
    return SGD(model.named_parameters(), lr=0.03, momentum=0.9)


def main() -> None:
    spec = get_workload("bert")
    dataset = spec.build_dataset(256, seed=SEED)

    # the uninterrupted reference (what the job *should* compute)
    reference = DDPTrainer(
        spec, dataset, ddp_heter_config(4, ["v100"] * 4, seed=SEED, batch_size=4),
        make_optimizer,
    )
    reference.train_steps(10)

    # --- phase 1: the job runs on 4 V100s of the serving cluster -------
    config = EasyScaleJobConfig(
        num_ests=4, seed=SEED, batch_size=4, determinism=determinism_from_label("D1+D2")
    )
    engine = EasyScaleEngine(
        spec, dataset, config, make_optimizer, WorkerAssignment.balanced([V100] * 4, 4)
    )
    engine.train_steps(6)
    print(f"trained 6 global steps on 4x V100 (sim time {engine.sim_time:.1f}s)")

    # --- preemption: serving needs every GPU back, NOW ------------------
    with tempfile.TemporaryDirectory() as tmpdir:
        ckpt_path = os.path.join(tmpdir, "job.ckpt")
        engine.checkpoint().save(ckpt_path)
        size_kb = os.path.getsize(ckpt_path) / 1024
        print(f"serving spike: all GPUs revoked; checkpointed to disk ({size_kb:.1f} KB)")
        del engine  # the processes are gone

        # --- phase 2: hours later, one T4 frees up ----------------------
        restored = Checkpoint.load(ckpt_path)
        engine = EasyScaleEngine.from_checkpoint(
            spec, dataset, restored, make_optimizer, WorkerAssignment.balanced([T4], 4)
        )
        print(f"resumed at global step {engine.global_step} on 1x T4 (4 ESTs time-slicing)")
        engine.train_steps(4)

    ours = fingerprint_state_dict(engine.model.state_dict())
    ref = fingerprint_state_dict(reference.model.state_dict())
    print(f"\nreference (4x V100, never interrupted): {ref[:32]}...")
    print(f"preempted job (4x V100 -> disk -> 1x T4): {ours[:32]}...")
    if ours == ref:
        print("bitwise IDENTICAL: the preemption is invisible in the model.")
    else:
        raise SystemExit("mismatch: restore broke determinism!")


if __name__ == "__main__":
    main()
