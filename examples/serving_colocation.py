#!/usr/bin/env python
"""Production co-location: elastic training on an online-serving cluster.

Replays the §5.3 production experiment: a 3,000-GPU serving cluster with
a strong diurnal load (Fig. 1's ~2,000-GPU idle/peak swing).  Day 1 runs
serving alone; on day 2 EasyScale jobs opportunistically fill the idle
GPUs, scaling in within seconds whenever serving demand spikes and
refilling within minutes when it recedes (Fig. 16).

Run:  python examples/serving_colocation.py
"""

from repro.sched import MINUTES_PER_DAY, simulate_colocation

TOTAL_GPUS = 3000


def sparkline(values, width: int = 60, height: int = 8) -> str:
    step = max(1, len(values) // width)
    sampled = [max(values[i : i + step]) for i in range(0, len(values), step)]
    top = max(max(sampled), 1)
    rows = []
    for level in range(height, 0, -1):
        threshold = top * level / height
        rows.append("".join("#" if v >= threshold else " " for v in sampled))
    return "\n".join(rows)


def main() -> None:
    stats = simulate_colocation(total_gpus=TOTAL_GPUS, seed=2021)

    print("serving demand, two days (Fig. 1 shape):")
    print(sparkline(stats.serving_alloc.tolist()))

    print("\nEasyScale training allocation (day 2 only, Fig. 16 'elastic'):")
    print(sparkline(stats.training_alloc.tolist()))

    day1_alloc = stats.alloc_ratio(0, TOTAL_GPUS)
    day2_alloc = stats.alloc_ratio(1, TOTAL_GPUS)
    day1_util = stats.mean_utilization(0)
    day2_util = stats.mean_utilization(1)

    print("\nsummary (day 1 = serving only, day 2 = with EasyScale):")
    print(f"  GPU allocation ratio : {day1_alloc:6.1%} -> {day2_alloc:6.1%}  "
          f"(+{(day2_alloc - day1_alloc) * 100:.1f} points)")
    print(f"  mean SM utilization  : {day1_util:6.1%} -> {day2_util:6.1%}  "
          f"(+{(day2_util / day1_util - 1) * 100:.1f}% relative)")
    print(f"  avg idle GPUs used by training (day 2): "
          f"{stats.training_alloc[MINUTES_PER_DAY:].mean():.0f}")
    print(f"  preemptions on day 2 : {stats.preemptions_day2}")
    print(f"  training job failures: {stats.failures_day2}")
    print(f"  scale-in latency     : {stats.scale_in_latency_s:.0f} s")
    print(f"  refill after release : {stats.refill_minutes:.0f} min")


if __name__ == "__main__":
    main()
