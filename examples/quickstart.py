#!/usr/bin/env python
"""Quickstart: train elastically, scale in twice, stay bitwise-consistent.

Demonstrates the EasyScale headline property on a mini ResNet-18:

1. train a DDP reference job on 4 fixed (simulated) V100 GPUs;
2. train the same job with EasyScale (4 ESTs), scaling 4 GPUs -> 2 -> 1
   mid-training via on-demand checkpoints;
3. verify the final model parameters are bitwise identical.

Run:  python examples/quickstart.py
"""

from repro.core import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
from repro.ddp import DDPTrainer, ddp_homo_config
from repro.hw import V100
from repro.models import get_workload
from repro.optim import SGD
from repro.utils.fingerprint import fingerprint_state_dict

SEED = 7
STEPS = 12


def make_optimizer(model):
    return SGD(model.named_parameters(), lr=0.05, momentum=0.9)


def main() -> None:
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(512, seed=SEED)

    # --- reference: plain DDP on 4 fixed GPUs -------------------------
    print("training DDP reference on 4x V100 ...")
    ddp = DDPTrainer(
        spec, dataset, ddp_homo_config(world_size=4, seed=SEED, batch_size=8), make_optimizer
    )
    ddp_losses = ddp.train_steps(STEPS)
    ddp_digest = fingerprint_state_dict(ddp.model.state_dict())

    # --- EasyScale: same job, elastic 4 -> 2 -> 1 GPUs ----------------
    print("training EasyScale with 4 ESTs, scaling 4 -> 2 -> 1 GPUs ...")
    config = EasyScaleJobConfig(num_ests=4, seed=SEED, batch_size=8)
    engine = EasyScaleEngine(
        spec, dataset, config, make_optimizer, WorkerAssignment.balanced([V100] * 4, 4)
    )
    losses = engine.train_steps(4)
    engine = engine.reconfigure(WorkerAssignment.balanced([V100] * 2, 4))  # scale in
    losses += engine.train_steps(4)
    engine = engine.reconfigure(WorkerAssignment.balanced([V100] * 1, 4))  # scale in again
    losses += engine.train_steps(4)
    es_digest = fingerprint_state_dict(engine.model.state_dict())

    # --- compare -------------------------------------------------------
    print(f"\n{'step':>4}  {'DDP loss':>10}  {'EasyScale loss':>14}")
    for i, (a, b) in enumerate(zip(ddp_losses, losses)):
        print(f"{i:>4}  {a:>10.6f}  {b:>14.6f}")
    print(f"\nDDP model digest       : {ddp_digest[:32]}...")
    print(f"EasyScale model digest : {es_digest[:32]}...")
    if ddp_digest == es_digest:
        print("\nbitwise IDENTICAL: elasticity did not change a single bit.")
    else:
        raise SystemExit("mismatch: determinism broken!")


if __name__ == "__main__":
    main()
