#!/usr/bin/env python
"""Heterogeneous elastic training with D2 determinism.

The scenario from Fig. 9: a job starts on homogeneous V100s, then the
cluster can only offer a mixed V100 + P100 allocation.  With D1 alone the
P100's vendor kernels flip low-order float32 bits; with D1+D2 (hardware-
agnostic kernels, pinned algo ids) the model stays bitwise identical to
the DDP-heter reference — at a runtime cost for conv-heavy models that
the timing model quantifies (Fig. 12).

Also demonstrates the automatic D2-eligibility scan: transformer models
pass (cheap D2), conv models are flagged (expensive D2, the scheduler
would prefer homogeneous GPUs for them).

Run:  python examples/heterogeneous_training.py
"""

from repro.core import (
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
    scan_model,
)
from repro.ddp import DDPTrainer, ddp_heter_config
from repro.hw import P100, T4, V100, minibatch_time
from repro.models import get_workload
from repro.optim import SGD
from repro.tensor.kernels import D0_POLICY, D2_POLICY
from repro.utils.fingerprint import fingerprint_state_dict
from repro.utils.rng import RNGBundle

SEED = 11


def make_optimizer(model):
    return SGD(model.named_parameters(), lr=0.02, momentum=0.9)


def main() -> None:
    spec = get_workload("resnet50")
    dataset = spec.build_dataset(512, seed=SEED)

    # --- D2 eligibility scan across the whole workload suite ----------
    print("automatic nn.Module scan for vendor-kernel reliance:")
    for name in ("resnet50", "vgg19", "bert", "neumf", "swintransformer"):
        wl = get_workload(name)
        report = scan_model(wl.build_model(RNGBundle(0)))
        verdict = "cheap D2 (heterogeneous OK)" if report.d2_recommended else (
            f"conv-reliant ({len(report.vendor_kernel_modules)} modules) -> prefers homogeneous"
        )
        print(f"  {name:16s} {verdict}")

    # --- reference: DDP-heter (4 workers, D2 kernels) -----------------
    print("\ntraining DDP-heter reference (4 workers, D2 kernels) ...")
    ddp = DDPTrainer(
        spec, dataset, ddp_heter_config(4, ["v100"] * 4, seed=SEED, batch_size=8), make_optimizer
    )
    ddp.train_steps(9)
    ref = fingerprint_state_dict(ddp.model.state_dict())

    # --- EasyScale D1+D2 over three heterogeneous stages ---------------
    print("training EasyScale D1+D2: 4x V100 -> 2x V100 -> 1x V100 + 2x P100 ...")
    config = EasyScaleJobConfig(
        num_ests=4, seed=SEED, batch_size=8, determinism=determinism_from_label("D1+D2")
    )
    engine = EasyScaleEngine(
        spec, dataset, config, make_optimizer, WorkerAssignment.balanced([V100] * 4, 4)
    )
    engine.train_steps(3)
    engine = engine.reconfigure(WorkerAssignment.balanced([V100] * 2, 4))
    engine.train_steps(3)
    engine = engine.reconfigure(WorkerAssignment.balanced([V100, P100, P100], 4))
    engine.train_steps(3)
    mine = fingerprint_state_dict(engine.model.state_dict())

    print(f"\nDDP-heter digest : {ref[:32]}...")
    print(f"EasyScale digest : {mine[:32]}...")
    print("bitwise identical:", ref == mine)

    # --- what D2 costs (the Fig. 12 trade-off) -------------------------
    print("\nper-mini-batch time (s), D1 vs D1+D2, by GPU type:")
    for gpu in (V100, P100, T4):
        d1 = minibatch_time(spec, gpu, D0_POLICY)
        d2 = minibatch_time(spec, gpu, D2_POLICY)
        print(f"  {gpu.name:5s}  D1={d1:.4f}  D1+D2={d2:.4f}  (x{d2 / d1:.2f})")

    if ref != mine:
        raise SystemExit("mismatch: D2 determinism broken!")


if __name__ == "__main__":
    main()
