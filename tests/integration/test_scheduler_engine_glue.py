"""Full-loop integration: scheduler-driven assignments on live engines.

The deployed control flow (§3.4): companion plans → intra-job proposals →
inter-job grants → plan_to_assignment → engine.reconfigure, all while the
jobs train.  The test verifies both halves: the scheduling behaves
sensibly (no over-allocation, no harmful grants) and the training stays
bitwise faithful through every scheduler-chosen reconfiguration.
"""

import pytest

from repro.core import (
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
)
from repro.ddp import DDPTrainer, ddp_heter_config
from repro.hw import Cluster, Machine, P100, V100
from repro.models import get_workload
from repro.optim import SGD
from repro.sched import CompanionModule, InterJobScheduler, IntraJobScheduler, plan_to_assignment
from repro.utils.fingerprint import fingerprint_state_dict

from tests.conftest import sgd_factory

SEED = 31


def small_cluster():
    return Cluster([Machine.build("v", V100, 3), Machine.build("p", P100, 2)])


class TestSchedulerDrivenTraining:
    def test_scheduler_chosen_assignments_stay_bitwise(self):
        spec = get_workload("resnet18")
        dataset = spec.build_dataset(192, seed=SEED)
        cluster = small_cluster()
        num_ests = 4

        companion = CompanionModule(max_p=num_ests, capability=dict(spec.throughput))
        intra = IntraJobScheduler("job", companion)
        inter = InterJobScheduler()

        cluster.allocate("job", "V100", 1)
        config = EasyScaleJobConfig(
            num_ests=num_ests, seed=SEED, batch_size=8,
            determinism=determinism_from_label("D1+D2"),
        )
        engine = EasyScaleEngine(
            spec, dataset, config, sgd_factory(lr=0.03),
            WorkerAssignment.balanced([V100], num_ests),
        )
        intra.apply_best_plan({"v100": 1})

        total_steps = 0
        for _ in range(4):
            engine.train_steps(2)
            total_steps += 2
            free = {k.lower(): v for k, v in cluster.free_by_type().items()}
            owned = {"v100": len([g for g in cluster.owned_by("job") if g.type.name == "V100"]),
                     "p100": len([g for g in cluster.owned_by("job") if g.type.name == "P100"])}
            owned = {k: v for k, v in owned.items() if v}
            grants = inter.arbitrate(intra.propose(owned, free), free)
            for grant in grants:
                cluster.allocate("job", grant.gtype.upper(), grant.gpus)
                owned[grant.gtype] = owned.get(grant.gtype, 0) + grant.gpus
                scored = intra.apply_best_plan(owned)
                engine = engine.reconfigure(plan_to_assignment(scored.plan))

        reference = DDPTrainer(
            spec,
            dataset,
            ddp_heter_config(num_ests, ["v100"] * num_ests, seed=SEED, batch_size=8),
            sgd_factory(lr=0.03),
        )
        reference.train_steps(total_steps)
        assert fingerprint_state_dict(engine.model.state_dict()) == fingerprint_state_dict(
            reference.model.state_dict()
        )
        # the scheduler actually grew the job at some point
        assert engine.assignment.num_workers > 1

    def test_eq1_refuses_harmful_heterogeneous_grant(self):
        """A 4-EST job balanced on 2 V100s must not propose adding P100s:
        the slow GPUs would bottleneck Sync-SGD (Eq. 1's waste term)."""
        spec = get_workload("resnet50")
        companion = CompanionModule(max_p=4, capability=dict(spec.throughput))
        intra = IntraJobScheduler("job", companion)
        intra.apply_best_plan({"v100": 2})
        proposals = intra.propose({"v100": 2}, {"p100": 2})
        assert proposals == [], "adding P100s would reduce estimated throughput"

    def test_two_jobs_share_without_over_allocation(self):
        cluster = small_cluster()
        specs = {"a": get_workload("neumf"), "b": get_workload("electra")}
        intras = {
            name: IntraJobScheduler(
                name, CompanionModule(max_p=2, capability=dict(spec.throughput))
            )
            for name, spec in specs.items()
        }
        inter = InterJobScheduler()
        owned = {"a": {}, "b": {}}
        for _ in range(4):
            free = {k.lower(): v for k, v in cluster.free_by_type().items()}
            proposals = []
            for name, intra in intras.items():
                intra.apply_best_plan(owned[name])
                proposals.extend(intra.propose(owned[name], free))
            grants = inter.arbitrate(proposals, free)
            if not grants:
                break
            for grant in grants:
                cluster.allocate(grant.job_id, grant.gtype.upper(), grant.gpus)
                owned[grant.job_id][grant.gtype] = (
                    owned[grant.job_id].get(grant.gtype, 0) + grant.gpus
                )
        assert cluster.allocated_count() <= cluster.total()
        assert sum(sum(o.values()) for o in owned.values()) == cluster.allocated_count()
        # both jobs got something
        assert all(sum(o.values()) > 0 for o in owned.values())
