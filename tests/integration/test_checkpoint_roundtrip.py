"""Checkpoint round trips through bytes, mid-training, across allocations."""

import numpy as np
import pytest

from repro.core import (
    Checkpoint,
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
)
from repro.hw import P100, V100
from repro.models import get_workload
from repro.optim import StepLR
from repro.utils.fingerprint import fingerprint_state_dict

from tests.conftest import sgd_factory


@pytest.fixture(scope="module")
def spec():
    return get_workload("resnet18")


@pytest.fixture(scope="module")
def dataset(spec):
    return spec.build_dataset(192, seed=4)


def make_engine(spec, dataset, gpus=2, scheduler=False):
    config = EasyScaleJobConfig(num_ests=4, seed=8, batch_size=8)
    return EasyScaleEngine(
        spec,
        dataset,
        config,
        sgd_factory(),
        WorkerAssignment.balanced([V100] * gpus, 4),
        scheduler_factory=(lambda opt: StepLR(opt, 1, 0.5)) if scheduler else None,
    )


class TestByteRoundTrip:
    def test_resume_through_bytes_is_bitwise(self, spec, dataset):
        continuous = make_engine(spec, dataset)
        continuous.train_steps(6)

        interrupted = make_engine(spec, dataset)
        interrupted.train_steps(3)
        blob = interrupted.checkpoint().to_bytes()
        restored = EasyScaleEngine.from_checkpoint(
            spec,
            dataset,
            Checkpoint.from_bytes(blob),
            sgd_factory(),
            WorkerAssignment.balanced([V100] * 2, 4),
        )
        restored.train_steps(3)
        assert fingerprint_state_dict(restored.model.state_dict()) == fingerprint_state_dict(
            continuous.model.state_dict()
        )

    def test_checkpoint_is_snapshot_not_view(self, spec, dataset):
        engine = make_engine(spec, dataset)
        engine.train_steps(1)
        ckpt = engine.checkpoint()
        digest = fingerprint_state_dict(ckpt.params["model"])
        engine.train_steps(2)  # mutate the live model
        assert fingerprint_state_dict(ckpt.params["model"]) == digest

    def test_scheduler_state_travels(self, spec, dataset):
        engine = make_engine(spec, dataset, scheduler=True)
        engine.train_steps(engine.steps_per_epoch + 1)  # past one epoch
        lr_before = engine.optimizer.lr
        restored = engine.reconfigure(WorkerAssignment.balanced([V100], 4))
        assert restored.optimizer.lr == pytest.approx(lr_before)
        assert restored.scheduler.last_epoch == engine.scheduler.last_epoch

    def test_epoch_boundary_checkpoint(self, spec, dataset):
        continuous = make_engine(spec, dataset)
        steps = continuous.steps_per_epoch
        continuous.train_steps(steps + 2)

        interrupted = make_engine(spec, dataset)
        interrupted.train_steps(steps)  # exactly at the boundary
        resumed = interrupted.reconfigure(WorkerAssignment.balanced([V100] * 4, 4))
        resumed.train_steps(2)
        assert fingerprint_state_dict(resumed.model.state_dict()) == fingerprint_state_dict(
            continuous.model.state_dict()
        )

    def test_repeated_reconfigurations(self, spec, dataset):
        continuous = make_engine(spec, dataset)
        continuous.train_steps(5)

        engine = make_engine(spec, dataset)
        for gpus in (1, 3, 2, 4, 1):
            engine = engine.reconfigure(WorkerAssignment.balanced([V100] * gpus, 4))
            engine.train_steps(1)
        assert fingerprint_state_dict(engine.model.state_dict()) == fingerprint_state_dict(
            continuous.model.state_dict()
        )

    def test_bn_buffers_travel(self, spec, dataset):
        continuous = make_engine(spec, dataset)
        continuous.train_steps(4)
        interrupted = make_engine(spec, dataset)
        interrupted.train_steps(2)
        restored = interrupted.reconfigure(WorkerAssignment.balanced([V100], 4))
        restored.train_steps(2)
        a = {k: v for k, v in continuous.model.state_dict().items() if "running" in k}
        b = {k: v for k, v in restored.model.state_dict().items() if "running" in k}
        assert a and fingerprint_state_dict(a) == fingerprint_state_dict(b)
