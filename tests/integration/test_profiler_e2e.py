"""End-to-end: the profiler feedback loop on a heterogeneous job.

The ISSUE-2 acceptance scenario: a 2-GPU-type job with one artificially
slowed worker.  The online profiler must (a) flag exactly that worker as
a straggler, (b) calibrate the per-type capability ``C_i`` to the
perturbed truth within 20 windows, and (c) hand the intra-job scheduler
a table under which it picks a plan with lower true overload than the
static prior would.  And — the determinism contract — attaching the
profiler must not perturb training bitwise.
"""

import pytest

from repro import obs
from repro.core import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
from repro.hw import T4, V100
from repro.hw.timing import static_capability
from repro.models import get_workload
from repro.obs import OnlineProfiler, ProfilerConfig, diff_audits
from repro.sched.companion import CompanionModule
from repro.sched.intra import IntraJobScheduler
from repro.sched.perfmodel import overload_factor
from repro.utils.fingerprint import fingerprint_state_dict

from tests.conftest import sgd_factory

SEED = 7
SLOWDOWN = 2.0
SLOW_WORKER = 2  # the single T4 in the assignment below


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture(scope="module")
def spec():
    return get_workload("shufflenetv2")


@pytest.fixture(scope="module")
def dataset(spec):
    return spec.build_dataset(128, seed=3)


def hetero_engine(spec, dataset, profiler=None):
    """2 V100 + 1 T4, one EST each."""
    config = EasyScaleJobConfig(num_ests=3, seed=SEED, batch_size=4)
    assignment = WorkerAssignment(gpus=(V100, V100, T4), est_map=((0,), (1,), (2,)))
    return EasyScaleEngine(
        spec, dataset, config, sgd_factory(), assignment, profiler=profiler
    )


@pytest.fixture(scope="module")
def profiled_run(spec, dataset):
    """One 24-step run with the T4 worker slowed 2x; shared by the
    straggler/calibration assertions (the run itself is deterministic)."""
    static = static_capability(spec)
    profiler = OnlineProfiler(
        config=ProfilerConfig(window_size=1, straggler_windows=3),
        static_capability=static,
    )
    engine = hetero_engine(spec, dataset, profiler=profiler)
    engine.workers[SLOW_WORKER].slowdown = SLOWDOWN
    engine.train_steps(24)
    profiler.flush()
    return profiler, static


class TestStragglerFlagging:
    def test_flags_exactly_the_slowed_worker(self, profiled_run):
        profiler, _ = profiled_run
        assert profiler.straggler_events, "slowed worker never flagged"
        assert {e.worker_id for e in profiler.straggler_events} == {SLOW_WORKER}
        assert profiler.stragglers() == [SLOW_WORKER]

    def test_healthy_heterogeneous_peers_not_flagged(self, spec, dataset):
        # same hardware mix, nobody slowed: capability-normalized times
        # must keep the (legitimately slower) T4 off the straggler list
        profiler = OnlineProfiler(
            config=ProfilerConfig(window_size=1, straggler_windows=3),
            static_capability=static_capability(spec),
        )
        engine = hetero_engine(spec, dataset, profiler=profiler)
        engine.train_steps(8)
        profiler.flush()
        assert profiler.straggler_events == []

    def test_streak_length_respected(self, profiled_run):
        profiler, _ = profiled_run
        # first flag only after straggler_windows consecutive slow windows
        first = min(e.window for e in profiler.straggler_events)
        assert first >= profiler.config.straggler_windows - 1
        assert all(
            e.consecutive >= profiler.config.straggler_windows
            for e in profiler.straggler_events
        )


class TestCalibrationConvergence:
    def test_converges_to_perturbed_truth_within_20_windows(self, profiled_run):
        profiler, static = profiled_run
        assert profiler.windows_closed <= 24
        calibrated = profiler.calibrated_capability()
        # the T4's true rate is halved by the slowdown; the V100s are clean.
        # one EST per worker and window_size=1 make the expected medians
        # exact, so EWMA converges geometrically onto the truth
        assert calibrated["t4"] == pytest.approx(static["t4"] / SLOWDOWN, rel=0.05)
        assert calibrated["v100"] == pytest.approx(static["v100"], rel=0.05)
        # p100 never observed: static value passes through untouched
        assert calibrated["p100"] == static["p100"]

    def test_convergence_is_fast(self, spec, dataset):
        """20 windows is the ceiling; EWMA should be within 5% well before."""
        static = static_capability(spec)
        profiler = OnlineProfiler(
            config=ProfilerConfig(window_size=1), static_capability=static
        )
        engine = hetero_engine(spec, dataset, profiler=profiler)
        engine.workers[SLOW_WORKER].slowdown = SLOWDOWN
        truth = static["t4"] / SLOWDOWN
        for _ in range(20):
            engine.run_global_step()
            cal = profiler.calibrated_capability()
            if abs(cal["t4"] - truth) / truth < 0.05:
                return
        pytest.fail(f"t4 capability {cal['t4']:.4f} not within 5% of {truth:.4f}")


class TestCalibratedScheduling:
    def test_calibrated_plan_beats_static_under_truth(self, profiled_run):
        profiler, static = profiled_run
        owned = {"v100": 1, "t4": 1}
        max_p = 6

        sched = IntraJobScheduler("job", CompanionModule(max_p=max_p, capability=static))
        static_best = sched.apply_best_plan(owned)
        sched.apply_calibration(profiler.calibrated_capability())
        calibrated_best = sched.apply_best_plan(owned)

        truth = dict(static)
        truth["t4"] = static["t4"] / SLOWDOWN
        f_static = overload_factor(static_best.plan, truth)
        f_calibrated = overload_factor(calibrated_best.plan, truth)
        assert calibrated_best.plan != static_best.plan
        assert f_calibrated < f_static

    def test_static_prior_overloads_the_slow_t4(self, profiled_run):
        # context for the assertion above: the static table deals the T4
        # an EST it can no longer keep up with
        _, static = profiled_run
        sched = IntraJobScheduler("job", CompanionModule(max_p=6, capability=static))
        best = sched.apply_best_plan({"v100": 1, "t4": 1})
        assert best.plan.ests_per_gpu("t4") >= 1


class TestBitwiseNoOp:
    def test_profiled_run_is_bitwise_identical(self, spec, dataset):
        """Profiling on (calibration not applied) must not move a single bit."""
        obs.configure(enabled=True, audit=True)
        baseline = hetero_engine(spec, dataset)
        baseline.train_steps(6)
        baseline_audit = obs.audit_trail()
        baseline_fp = fingerprint_state_dict(baseline.model.state_dict())

        obs.configure(enabled=True, audit=True)  # fresh trail for run 2
        profiler = OnlineProfiler(
            config=ProfilerConfig(window_size=1),
            static_capability=static_capability(spec),
        )
        engine = hetero_engine(spec, dataset, profiler=profiler)
        engine.workers[SLOW_WORKER].slowdown = SLOWDOWN
        engine.train_steps(6)
        profiled_audit = obs.audit_trail()

        assert profiler.windows_closed > 0  # the profiler really observed
        diff = diff_audits(baseline_audit, profiled_audit)
        assert diff.identical, diff.describe()
        assert fingerprint_state_dict(engine.model.state_dict()) == baseline_fp

    def test_profiler_works_with_observability_disabled(self, spec, dataset):
        """The engine feeds the profiler directly; obs being off only mutes
        the metric/trace side-channels."""
        assert not obs.is_enabled()
        profiler = OnlineProfiler(
            config=ProfilerConfig(window_size=1),
            static_capability=static_capability(spec),
        )
        engine = hetero_engine(spec, dataset, profiler=profiler)
        engine.train_steps(3)
        assert profiler.windows_closed == 3
        assert "v100" in profiler.observed_capability
