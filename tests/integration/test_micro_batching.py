"""Gradient accumulation (micro-batching) across the stack.

Extension feature: each logical worker may split its batch into k
micro-batches, accumulating gradients in a fixed order before
synchronization.  The contracts:

- EasyScale(k micro-batches) under elasticity is bitwise identical to
  DDP(k micro-batches) on fixed GPUs — the guarantee composes;
- k is determinism-relevant configuration (it changes the float32
  association), so it must be preserved across checkpoints;
- activation memory divides by k (the practical reason to use it).
"""

import numpy as np
import pytest

from repro.core import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
from repro.ddp import DDPConfig, DDPTrainer
from repro.ddp.ddp import micro_slices
from repro.hw import V100
from repro.models import get_workload
from repro.utils.fingerprint import fingerprint_state_dict

from tests.conftest import sgd_factory

SEED = 5


@pytest.fixture(scope="module")
def spec():
    return get_workload("resnet18")


@pytest.fixture(scope="module")
def dataset(spec):
    return spec.build_dataset(128, seed=3)


class TestMicroSlices:
    def test_contiguous_order(self):
        x = np.arange(8).reshape(8, 1)
        y = np.arange(8)
        parts = list(micro_slices(x, y, 4))
        assert len(parts) == 4
        np.testing.assert_array_equal(parts[0][1], [0, 1])
        np.testing.assert_array_equal(parts[3][1], [6, 7])

    def test_single_micro_is_whole_batch(self):
        x, y = np.zeros((6, 2)), np.zeros(6)
        parts = list(micro_slices(x, y, 1))
        assert len(parts) == 1 and parts[0][0] is x

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            list(micro_slices(np.zeros((7, 1)), np.zeros(7), 2))


class TestBitwiseComposition:
    def test_elastic_micro_matches_ddp_micro(self, spec, dataset):
        ddp = DDPTrainer(
            spec,
            dataset,
            DDPConfig(world_size=2, seed=SEED, batch_size=8, micro_batches=2),
            sgd_factory(),
        )
        ddp.train_steps(4)

        config = EasyScaleJobConfig(num_ests=2, seed=SEED, batch_size=8, micro_batches=2)
        engine = EasyScaleEngine(
            spec, dataset, config, sgd_factory(), WorkerAssignment.balanced([V100] * 2, 2)
        )
        engine.train_steps(2)
        engine = engine.reconfigure(WorkerAssignment.balanced([V100], 2))
        engine.train_steps(2)
        assert fingerprint_state_dict(engine.model.state_dict()) == fingerprint_state_dict(
            ddp.model.state_dict()
        )

    def test_micro_count_changes_bits(self, spec, dataset):
        def run(micro):
            trainer = DDPTrainer(
                spec,
                dataset,
                DDPConfig(world_size=2, seed=SEED, batch_size=8, micro_batches=micro),
                sgd_factory(),
            )
            trainer.train_steps(3)
            return fingerprint_state_dict(trainer.model.state_dict())

        assert run(1) != run(4)

    def test_micro_count_close_for_norm_free_models(self):
        """For models without batch statistics or per-forward randomness,
        accumulation changes only the float32 association — tiny gap."""
        from repro.utils.fingerprint import max_abs_diff

        neumf = get_workload("neumf")
        ds = neumf.build_dataset(256, seed=3)

        def run(micro):
            trainer = DDPTrainer(
                neumf,
                ds,
                DDPConfig(world_size=2, seed=SEED, batch_size=8, micro_batches=micro),
                sgd_factory(),
            )
            trainer.train_steps(3)
            return trainer.model.state_dict()

        gap = max_abs_diff(run(1), run(4))
        assert 0 <= gap < 1e-6

    def test_micro_count_changes_bn_statistics(self, spec, dataset):
        """The classic gradient-accumulation caveat: BatchNorm computes its
        batch statistics per micro-batch, so k genuinely changes the math
        for BN models (size-2 stats vs size-8 stats) — not just the bits."""
        from repro.utils.fingerprint import max_abs_diff

        def run(micro):
            trainer = DDPTrainer(
                spec,
                dataset,
                DDPConfig(world_size=2, seed=SEED, batch_size=8, micro_batches=micro),
                sgd_factory(),
            )
            trainer.train_steps(3)
            return trainer.model.state_dict()

        gap = max_abs_diff(run(1), run(4))
        assert gap > 1e-3  # a real semantic difference, documented behaviour

    def test_micro_batches_survive_checkpoint(self, spec, dataset):
        config = EasyScaleJobConfig(num_ests=2, seed=SEED, batch_size=8, micro_batches=4)
        engine = EasyScaleEngine(
            spec, dataset, config, sgd_factory(), WorkerAssignment.balanced([V100], 2)
        )
        engine.train_steps(1)
        resumed = engine.reconfigure(WorkerAssignment.balanced([V100] * 2, 2))
        assert resumed.config.micro_batches == 4


class TestConfigValidation:
    def test_divisibility(self):
        with pytest.raises(ValueError):
            EasyScaleJobConfig(num_ests=2, batch_size=8, micro_batches=3)
        with pytest.raises(ValueError):
            DDPConfig(world_size=2, batch_size=8, micro_batches=3)

    def test_positive(self):
        with pytest.raises(ValueError):
            EasyScaleJobConfig(num_ests=2, micro_batches=0)


class TestMemoryBenefit:
    def test_activation_memory_divides(self, spec):
        full = spec.worker_memory_gb(64, micro_batches=1)
        quarter = spec.worker_memory_gb(64, micro_batches=4)
        static = 3.0 * spec.params_gb
        assert quarter - static == pytest.approx((full - static) / 4)

    def test_validation(self, spec):
        with pytest.raises(ValueError):
            spec.worker_memory_gb(64, micro_batches=0)
