"""The paper's headline claims, asserted end-to-end.

Every test here trains real models through the full stack and compares
final parameters (and optimizer state) **bitwise** against the DDP
reference — the property the whole system exists to provide.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
)
from repro.ddp import DDPTrainer, ddp_heter_config, ddp_homo_config
from repro.hw import P100, T4, V100
from repro.models import get_workload
from repro.utils.fingerprint import fingerprint_state_dict
from repro.utils.serialization import deep_equal

from tests.conftest import sgd_factory

SEED = 5
STEPS = 6


@pytest.fixture(scope="module")
def spec():
    return get_workload("resnet18")


@pytest.fixture(scope="module")
def dataset(spec):
    return spec.build_dataset(256, seed=9)


@pytest.fixture(scope="module")
def ddp_reference(spec, dataset):
    """DDP-homo with 4 fixed workers, the bitwise target."""
    trainer = DDPTrainer(
        spec, dataset, ddp_homo_config(4, seed=SEED, batch_size=8), sgd_factory()
    )
    trainer.train_steps(STEPS)
    return trainer


def easyscale(spec, dataset, determinism="D1", num_ests=4):
    config = EasyScaleJobConfig(
        num_ests=num_ests,
        seed=SEED,
        batch_size=8,
        determinism=determinism_from_label(determinism),
    )
    return EasyScaleEngine(
        spec,
        dataset,
        config,
        sgd_factory(),
        WorkerAssignment.balanced([V100] * num_ests, num_ests),
    )


class TestD1Elasticity:
    def test_static_four_workers_match_ddp(self, spec, dataset, ddp_reference):
        engine = easyscale(spec, dataset)
        engine.train_steps(STEPS)
        assert fingerprint_state_dict(engine.model.state_dict()) == fingerprint_state_dict(
            ddp_reference.model.state_dict()
        )

    def test_scale_in_4_2_1_matches_ddp(self, spec, dataset, ddp_reference):
        engine = easyscale(spec, dataset)
        engine.train_steps(2)
        engine = engine.reconfigure(WorkerAssignment.balanced([V100] * 2, 4))
        engine.train_steps(2)
        engine = engine.reconfigure(WorkerAssignment.balanced([V100], 4))
        engine.train_steps(2)
        assert fingerprint_state_dict(engine.model.state_dict()) == fingerprint_state_dict(
            ddp_reference.model.state_dict()
        )
        assert deep_equal(
            engine.optimizer.state_dict(), ddp_reference.optimizer.state_dict()
        )

    def test_scale_out_1_to_4_matches_ddp(self, spec, dataset, ddp_reference):
        engine = EasyScaleEngine(
            spec,
            dataset,
            EasyScaleJobConfig(num_ests=4, seed=SEED, batch_size=8),
            sgd_factory(),
            WorkerAssignment.balanced([V100], 4),
        )
        engine.train_steps(3)
        engine = engine.reconfigure(WorkerAssignment.balanced([V100] * 4, 4))
        engine.train_steps(STEPS - 3)
        assert fingerprint_state_dict(engine.model.state_dict()) == fingerprint_state_dict(
            ddp_reference.model.state_dict()
        )

    def test_losses_match_ddp_stepwise(self, spec, dataset, ddp_reference):
        engine = easyscale(spec, dataset)
        engine.train_steps(STEPS)
        easyscale_last = [row[-1] for row in engine.loss_history]
        ddp_last = [row[-1] for row in ddp_reference.loss_history]
        assert easyscale_last == ddp_last

    def test_uneven_est_distribution_matches(self, spec, dataset, ddp_reference):
        # 3 workers hosting 2/1/1 ESTs: mapping should not matter at all
        assignment = WorkerAssignment(
            gpus=(V100, V100, V100), est_map=((0, 1), (2,), (3,))
        )
        config = EasyScaleJobConfig(num_ests=4, seed=SEED, batch_size=8)
        engine = EasyScaleEngine(spec, dataset, config, sgd_factory(), assignment)
        engine.train_steps(STEPS)
        assert fingerprint_state_dict(engine.model.state_dict()) == fingerprint_state_dict(
            ddp_reference.model.state_dict()
        )

    @given(
        split1=st.integers(1, 4),
        split2=st.integers(1, 4),
        boundary=st.integers(1, 5),
    )
    @settings(max_examples=6, deadline=None)
    def test_any_scale_schedule_matches(self, spec, dataset, ddp_reference, split1, split2, boundary):
        """Property: any two-phase worker-count schedule is bitwise clean."""
        engine = easyscale(spec, dataset)
        engine = engine.reconfigure(WorkerAssignment.balanced([V100] * split1, 4))
        engine.train_steps(boundary)
        engine = engine.reconfigure(WorkerAssignment.balanced([V100] * split2, 4))
        engine.train_steps(STEPS - boundary)
        assert fingerprint_state_dict(engine.model.state_dict()) == fingerprint_state_dict(
            ddp_reference.model.state_dict()
        )


class TestD0Divergence:
    def test_d0_diverges_after_scale_event(self, spec, dataset, ddp_reference):
        engine = easyscale(spec, dataset, determinism="D0")
        engine.train_steps(3)
        engine = engine.reconfigure(WorkerAssignment.balanced([V100] * 2, 4))
        engine.train_steps(STEPS - 3)
        assert fingerprint_state_dict(engine.model.state_dict()) != fingerprint_state_dict(
            ddp_reference.model.state_dict()
        )

    def test_d0_fine_without_scale_events(self, spec, dataset, ddp_reference):
        engine = easyscale(spec, dataset, determinism="D0")
        engine.train_steps(STEPS)
        assert fingerprint_state_dict(engine.model.state_dict()) == fingerprint_state_dict(
            ddp_reference.model.state_dict()
        )


class TestD2Heterogeneity:
    @pytest.fixture(scope="class")
    def ddp_heter_reference(self, spec, dataset):
        trainer = DDPTrainer(
            spec,
            dataset,
            ddp_heter_config(4, ["v100"] * 4, seed=SEED, batch_size=8),
            sgd_factory(),
        )
        trainer.train_steps(STEPS)
        return trainer

    def test_d1d2_heterogeneous_stages_match(self, spec, dataset, ddp_heter_reference):
        config = EasyScaleJobConfig(
            num_ests=4,
            seed=SEED,
            batch_size=8,
            determinism=determinism_from_label("D1+D2"),
        )
        engine = EasyScaleEngine(
            spec, dataset, config, sgd_factory(), WorkerAssignment.balanced([V100] * 4, 4)
        )
        engine.train_steps(2)
        engine = engine.reconfigure(WorkerAssignment.balanced([V100] * 2, 4))
        engine.train_steps(2)
        engine = engine.reconfigure(WorkerAssignment.balanced([V100, P100, P100], 4))
        engine.train_steps(1)
        engine = engine.reconfigure(WorkerAssignment.balanced([T4], 4))
        engine.train_steps(1)
        assert fingerprint_state_dict(engine.model.state_dict()) == fingerprint_state_dict(
            ddp_heter_reference.model.state_dict()
        )

    def test_d1_alone_breaks_on_heterogeneous_gpus(self, spec, dataset, ddp_reference):
        engine = easyscale(spec, dataset, determinism="D1")
        engine.train_steps(3)
        engine = engine.reconfigure(WorkerAssignment.balanced([V100, P100], 4))
        engine.train_steps(STEPS - 3)
        assert fingerprint_state_dict(engine.model.state_dict()) != fingerprint_state_dict(
            ddp_reference.model.state_dict()
        )


class TestOtherWorkloads:
    @pytest.mark.parametrize("name", ["neumf", "bert"])
    def test_bitwise_consistency_generalizes(self, name):
        spec = get_workload(name)
        dataset = spec.build_dataset(128, seed=2)
        ddp = DDPTrainer(
            spec, dataset, ddp_homo_config(2, seed=3, batch_size=4), sgd_factory(lr=0.01)
        )
        ddp.train_steps(4)

        config = EasyScaleJobConfig(num_ests=2, seed=3, batch_size=4)
        engine = EasyScaleEngine(
            spec, dataset, config, sgd_factory(lr=0.01), WorkerAssignment.balanced([V100] * 2, 2)
        )
        engine.train_steps(2)
        engine = engine.reconfigure(WorkerAssignment.balanced([V100], 2))
        engine.train_steps(2)
        assert fingerprint_state_dict(engine.model.state_dict()) == fingerprint_state_dict(
            ddp.model.state_dict()
        )
