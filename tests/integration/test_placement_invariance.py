"""Property: the EST-to-worker placement never affects the result.

The decoupling claim at its strongest: *any* partition of the virtual
ranks onto *any* mix of workers (same GPU type under D1; any types under
D1+D2) trains the identical model.  Hypothesis draws placements.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment, determinism_from_label
from repro.hw import P100, T4, V100
from repro.models import get_workload
from repro.utils.fingerprint import fingerprint_state_dict

from tests.conftest import sgd_factory

SEED = 5
NUM_ESTS = 4
STEPS = 3


@pytest.fixture(scope="module")
def spec():
    return get_workload("resnet18")


@pytest.fixture(scope="module")
def dataset(spec):
    return spec.build_dataset(128, seed=3)


@pytest.fixture(scope="module")
def reference_digest(spec, dataset):
    config = EasyScaleJobConfig(num_ests=NUM_ESTS, seed=SEED, batch_size=8)
    engine = EasyScaleEngine(
        spec, dataset, config, sgd_factory(), WorkerAssignment.balanced([V100] * 4, 4)
    )
    engine.train_steps(STEPS)
    return fingerprint_state_dict(engine.model.state_dict())


@pytest.fixture(scope="module")
def reference_digest_d2(spec, dataset):
    config = EasyScaleJobConfig(
        num_ests=NUM_ESTS, seed=SEED, batch_size=8,
        determinism=determinism_from_label("D1+D2"),
    )
    engine = EasyScaleEngine(
        spec, dataset, config, sgd_factory(), WorkerAssignment.balanced([V100] * 4, 4)
    )
    engine.train_steps(STEPS)
    return fingerprint_state_dict(engine.model.state_dict())


def partitions_of_four():
    """Strategy: a partition of vranks {0,1,2,3} into 1-4 ordered groups."""

    @st.composite
    def build(draw):
        vranks = list(range(NUM_ESTS))
        perm = draw(st.permutations(vranks))
        num_workers = draw(st.integers(1, NUM_ESTS))
        cuts = sorted(
            draw(
                st.lists(
                    st.integers(1, NUM_ESTS - 1),
                    min_size=num_workers - 1,
                    max_size=num_workers - 1,
                    unique=True,
                )
            )
        )
        groups = []
        prev = 0
        for cut in cuts + [NUM_ESTS]:
            groups.append(tuple(perm[prev:cut]))
            prev = cut
        return tuple(g for g in groups if g)

    return build()


class TestPlacementInvariance:
    @given(est_map=partitions_of_four())
    @settings(max_examples=8, deadline=None)
    def test_any_homogeneous_placement_matches(
        self, spec, dataset, reference_digest, est_map
    ):
        assignment = WorkerAssignment(gpus=tuple([V100] * len(est_map)), est_map=est_map)
        config = EasyScaleJobConfig(num_ests=NUM_ESTS, seed=SEED, batch_size=8)
        engine = EasyScaleEngine(spec, dataset, config, sgd_factory(), assignment)
        engine.train_steps(STEPS)
        assert (
            fingerprint_state_dict(engine.model.state_dict()) == reference_digest
        ), f"placement {est_map} changed the result"

    @given(
        est_map=partitions_of_four(),
        gpu_picks=st.lists(st.sampled_from([V100, P100, T4]), min_size=4, max_size=4),
    )
    @settings(max_examples=8, deadline=None)
    def test_any_heterogeneous_placement_matches_under_d2(
        self, spec, dataset, reference_digest_d2, est_map, gpu_picks
    ):
        gpus = tuple(gpu_picks[: len(est_map)])
        assignment = WorkerAssignment(gpus=gpus, est_map=est_map)
        config = EasyScaleJobConfig(
            num_ests=NUM_ESTS, seed=SEED, batch_size=8,
            determinism=determinism_from_label("D1+D2"),
        )
        engine = EasyScaleEngine(spec, dataset, config, sgd_factory(), assignment)
        engine.train_steps(STEPS)
        assert (
            fingerprint_state_dict(engine.model.state_dict()) == reference_digest_d2
        ), f"placement {est_map} on {[g.name for g in gpus]} changed the result"
