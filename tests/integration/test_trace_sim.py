"""End-to-end trace experiment: the Fig. 14/15 shape on a small trace."""

import pytest

from repro.hw import microbench_cluster
from repro.sched import (
    ClusterSimulator,
    EasyScalePolicy,
    YarnCapacityScheduler,
    generate_trace,
)

TRACE = dict(
    num_jobs=30,
    seed=4,
    mean_interarrival_s=45,
    mean_duration_s=1200,
    burst_fraction=0.5,
    type_weights={"v100": 0.3, "p100": 0.4, "t4": 0.3},
    demand=[(1, 0.3), (2, 0.2), (4, 0.2), (8, 0.18), (16, 0.12)],
    duration_sigma=1.1,
    max_duration_factor=20,
)


@pytest.fixture(scope="module")
def results():
    jobs = generate_trace(**TRACE)
    out = {}
    for policy in (YarnCapacityScheduler(), EasyScalePolicy(False), EasyScalePolicy(True)):
        out[policy.name] = ClusterSimulator(microbench_cluster(), jobs, policy).run()
    return out


class TestCompletion:
    def test_all_policies_finish_all_jobs(self, results):
        for name, result in results.items():
            assert len(result.completed) == TRACE["num_jobs"], name

    def test_no_gpus_leak(self, results):
        for name, result in results.items():
            # timeline ends with everything released
            assert result.allocation_timeline[-1][1] == 0, name


class TestPaperShape:
    def test_easyscale_beats_yarn_jct(self, results):
        yarn = results["yarn-cs"].average_jct
        homo = results["easyscale-homo"].average_jct
        heter = results["easyscale-heter"].average_jct
        assert homo < yarn / 2  # paper: 8.3x; shape: decisively better
        assert heter < yarn / 2  # paper: 13.2x

    def test_easyscale_beats_yarn_makespan(self, results):
        yarn = results["yarn-cs"].makespan
        assert results["easyscale-homo"].makespan < yarn
        assert results["easyscale-heter"].makespan < yarn

    def test_heter_allocates_at_least_as_much_as_homo(self, results):
        """Fig. 15: the heterogeneous policy's allocation dominates."""

        def avg_alloc(result):
            timeline = result.allocation_timeline
            if len(timeline) < 2:
                return 0.0
            total = 0.0
            for (t0, a), (t1, _) in zip(timeline, timeline[1:]):
                total += a * (t1 - t0)
            return total / (timeline[-1][0] - timeline[0][0])

        homo = avg_alloc(results["easyscale-homo"])
        heter = avg_alloc(results["easyscale-heter"])
        assert heter >= homo * 0.95  # allow small scheduling noise

    def test_events_are_consistent(self, results):
        for result in results.values():
            submits = len(result.events.of_kind("job_submit"))
            dones = len(result.events.of_kind("job_done"))
            assert submits == TRACE["num_jobs"]
            assert dones == TRACE["num_jobs"]
