"""The eight workload models: forward/backward, structure, registry."""

import numpy as np
import pytest

from repro.models import (
    TABLE1,
    WORKLOADS,
    channel_shuffle,
    get_workload,
    resnet18_mini,
    swin_mini,
)
from repro.nn import use_rng
from repro.tensor import Tensor, execution_context
from repro.utils.rng import RNGBundle

from tests.tensor.test_autograd import _rand


@pytest.mark.parametrize("name", sorted(WORKLOADS))
class TestAllWorkloads:
    def test_forward_backward_produces_grads(self, name):
        spec = get_workload(name)
        rng = RNGBundle(1)
        model = spec.build_model(rng.spawn("m"))
        ds = spec.build_dataset(32, seed=2)
        xs, ys = zip(*[ds[i] for i in range(4)])
        x, y = np.stack(xs), np.asarray(ys)
        with execution_context("v100"), use_rng(rng.spawn("r")):
            loss = spec.forward_loss(model, x, y)
            loss.backward()
        assert np.isfinite(loss.item())
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).sum() > 0 for g in grads)

    def test_build_deterministic(self, name):
        spec = get_workload(name)
        a = spec.build_model(RNGBundle(9))
        b = spec.build_model(RNGBundle(9))
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            assert pa.data.tobytes() == pb.data.tobytes()

    def test_state_dict_roundtrip(self, name):
        spec = get_workload(name)
        model = spec.build_model(RNGBundle(1))
        fresh = spec.build_model(RNGBundle(2))
        fresh.load_state_dict(model.state_dict())
        for (_, pa), (_, pb) in zip(model.named_parameters(), fresh.named_parameters()):
            assert pa.data.tobytes() == pb.data.tobytes()


class TestChannelShuffle:
    def test_interleaves(self):
        x = Tensor(np.arange(8, dtype=np.float32).reshape(1, 8, 1, 1))
        out = channel_shuffle(x, 2).data.reshape(-1)
        np.testing.assert_array_equal(out, [0, 4, 1, 5, 2, 6, 3, 7])

    def test_inverse_property(self):
        x = Tensor(_rand((2, 12, 3, 3), 1))
        once = channel_shuffle(x, 3)
        # shuffling with the complementary group count inverts
        back = channel_shuffle(once, 4)
        np.testing.assert_array_equal(back.data, x.data)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            channel_shuffle(Tensor(_rand((1, 5, 2, 2))), 2)


class TestSpecificArchitectures:
    def test_resnet_output_shape(self):
        model = resnet18_mini(RNGBundle(0), num_classes=7)
        out = model(Tensor(_rand((3, 3, 8, 8), 1)))
        assert out.shape == (3, 7)

    def test_swin_window_partition(self):
        model = swin_mini(RNGBundle(0))
        out = model(Tensor(_rand((2, 3, 16, 16), 1)))
        assert out.shape == (2, 10)

    def test_swin_rejects_bad_geometry(self):
        model = swin_mini(RNGBundle(0))
        with pytest.raises(ValueError):
            model(Tensor(_rand((1, 3, 12, 12), 1)))  # 3x3 patches, window 2

    def test_yolo_loss_combines_terms(self):
        spec = get_workload("yolov3")
        model = spec.build_model(RNGBundle(1))
        ds = spec.build_dataset(8, seed=1)
        xs, ys = zip(*[ds[i] for i in range(4)])
        with execution_context("v100"), use_rng(RNGBundle(2)):
            out = model(Tensor(np.stack(xs)))
            loss = model.loss(out, np.stack(ys))
        assert out.shape[1] == 3 + 5  # box + classes
        assert loss.item() > 0

    def test_neumf_forward_dtype(self):
        spec = get_workload("neumf")
        model = spec.build_model(RNGBundle(1))
        pairs = np.array([[0, 1], [2, 3]], dtype=np.int64)
        with execution_context("v100"), use_rng(RNGBundle(2)):
            out = model(pairs)
        assert out.shape == (2,)


class TestRegistry:
    def test_table1_membership(self):
        assert len(TABLE1) == 8
        assert set(TABLE1) <= set(WORKLOADS)

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("alexnet")

    def test_throughput_ordering(self):
        # V100 fastest, T4 slowest, on every workload
        for spec in WORKLOADS.values():
            assert spec.throughput["v100"] > spec.throughput["p100"] > spec.throughput["t4"]

    def test_conv_heavy_flags(self):
        conv = {n for n, s in WORKLOADS.items() if s.conv_heavy}
        assert conv == {"shufflenetv2", "resnet18", "resnet50", "vgg19", "yolov3"}

    def test_worker_memory_scales_with_batch(self):
        spec = get_workload("resnet50")
        assert spec.worker_memory_gb(64) > spec.worker_memory_gb(32)
