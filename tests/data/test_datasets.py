"""Synthetic datasets: determinism, shapes, learnable structure."""

import numpy as np
import pytest

from repro.data.datasets import (
    SyntheticDetectionDataset,
    SyntheticImageDataset,
    SyntheticQADataset,
    SyntheticRatingsDataset,
    build_dataset,
)


class TestImageDataset:
    def test_pure_function_of_seed_and_index(self):
        a = SyntheticImageDataset(100, seed=5)
        b = SyntheticImageDataset(100, seed=5)
        xa, ya = a[17]
        xb, yb = b[17]
        assert xa.tobytes() == xb.tobytes() and ya == yb

    def test_seed_changes_data(self):
        a = SyntheticImageDataset(10, seed=5)
        b = SyntheticImageDataset(10, seed=6)
        assert a[0][0].tobytes() != b[0][0].tobytes()

    def test_shapes_and_dtype(self):
        ds = SyntheticImageDataset(10, shape=(3, 8, 8))
        x, y = ds[0]
        assert x.shape == (3, 8, 8) and x.dtype == np.float32
        assert isinstance(y, int)

    def test_labels_cover_all_classes(self):
        ds = SyntheticImageDataset(30, num_classes=10)
        labels = {ds[i][1] for i in range(30)}
        assert labels == set(range(10))

    def test_class_structure_is_learnable(self):
        # nearest-prototype classification should beat chance easily
        ds = SyntheticImageDataset(100, num_classes=4, noise_scale=0.3)
        correct = 0
        for i in range(100):
            x, y = ds[i]
            dists = [np.linalg.norm(x - p) for p in ds.prototypes]
            correct += int(np.argmin(dists) == y)
        assert correct > 80

    def test_index_validation(self):
        ds = SyntheticImageDataset(5)
        with pytest.raises(IndexError):
            ds[5]
        with pytest.raises(IndexError):
            ds[-1]

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset(0)


class TestDetectionDataset:
    def test_target_format(self):
        ds = SyntheticDetectionDataset(20, num_classes=5)
        x, t = ds[3]
        assert t.shape == (4,)
        cx, cy, size, cls = t
        assert 0 <= cx <= 1 and 0 <= cy <= 1
        assert 0 < size < 1
        assert 0 <= int(cls) < 5

    def test_patch_is_visible(self):
        ds = SyntheticDetectionDataset(10, shape=(3, 16, 16))
        x, t = ds[0]
        assert x.max() > 1.5  # the bright patch


class TestRatingsDataset:
    def test_pairs_in_range(self):
        ds = SyntheticRatingsDataset(50, num_users=10, num_items=20)
        for i in range(50):
            (u, it), label = ds[i]
            assert 0 <= u < 10 and 0 <= it < 20
            assert label in (0.0, 1.0)

    def test_labels_correlate_with_affinity(self):
        ds = SyntheticRatingsDataset(2000, num_users=20, num_items=20, seed=1)
        affinities, labels = [], []
        for i in range(2000):
            (u, it), label = ds[i]
            affinities.append(float(ds.user_factors[u] @ ds.item_factors[it]))
            labels.append(label)
        affinities = np.array(affinities)
        labels = np.array(labels)
        assert affinities[labels == 1].mean() > affinities[labels == 0].mean()


class TestQADataset:
    def test_keyword_planted(self):
        ds = SyntheticQADataset(30, vocab_size=32, num_classes=4)
        for i in range(30):
            tokens, label = ds[i]
            assert label in tokens  # keyword token id == label
            assert tokens.dtype == np.int64

    def test_non_keyword_tokens_above_classes(self):
        ds = SyntheticQADataset(10, vocab_size=32, num_classes=4)
        tokens, label = ds[0]
        others = tokens[tokens != label]
        assert (others >= 4).all()

    def test_class_vocab_validation(self):
        with pytest.raises(ValueError):
            SyntheticQADataset(10, vocab_size=4, num_classes=4)


class TestRegistry:
    def test_known_names(self):
        for name in ("cifar10-like", "imagenet-like", "pascal-like", "movielens-like", "squad-like"):
            ds = build_dataset(name, 8, seed=1)
            assert len(ds) == 8
            ds[0]

    def test_imagenet_defaults_larger(self):
        ds = build_dataset("imagenet-like", 4)
        assert ds[0][0].shape == (3, 16, 16)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_dataset("mnist", 4)
