"""Distributed sampler: partition properties over virtual ranks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.sampler import BatchPlan, DistributedSampler


class TestPartition:
    @given(
        n=st.integers(2, 200),
        replicas=st.integers(1, 8),
        seed=st.integers(0, 1000),
        epoch=st.integers(0, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_disjoint_and_complete(self, n, replicas, seed, epoch):
        shards = []
        for rank in range(replicas):
            s = DistributedSampler(n, replicas, rank, seed=seed)
            s.set_epoch(epoch)
            shards.append(s.indices())
        lengths = {len(s) for s in shards}
        assert len(lengths) == 1  # equal shares
        all_indices = np.concatenate(shards)
        # padded with wrap-around: every dataset index appears >= 1 time
        assert set(all_indices.tolist()) == set(range(n)) or n < replicas or set(
            all_indices.tolist()
        ) <= set(range(n))
        # non-padded portion is a permutation: counts differ by at most 1
        counts = np.bincount(all_indices, minlength=n)
        assert counts.max() - counts.min() <= 1

    def test_rank_independent_of_worker_count_elsewhere(self):
        # EST 1 of 4 sees the same stream no matter what other ESTs do
        a = DistributedSampler(100, 4, 1, seed=3)
        b = DistributedSampler(100, 4, 1, seed=3)
        np.testing.assert_array_equal(a.indices(), b.indices())

    def test_epoch_changes_order(self):
        s = DistributedSampler(50, 2, 0, seed=3)
        s.set_epoch(0)
        e0 = s.indices().copy()
        s.set_epoch(1)
        e1 = s.indices()
        assert not np.array_equal(e0, e1)

    def test_no_shuffle_is_strided(self):
        s = DistributedSampler(10, 2, 1, shuffle=False)
        np.testing.assert_array_equal(s.indices(), [1, 3, 5, 7, 9])

    def test_padding_wraps(self):
        s0 = DistributedSampler(5, 2, 0, shuffle=False)
        s1 = DistributedSampler(5, 2, 1, shuffle=False)
        assert len(s0) == len(s1) == 3
        combined = sorted(np.concatenate([s0.indices(), s1.indices()]).tolist())
        assert combined == [0, 0, 1, 2, 3, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedSampler(10, 0, 0)
        with pytest.raises(ValueError):
            DistributedSampler(10, 2, 2)
        with pytest.raises(ValueError):
            DistributedSampler(0, 1, 0)

    def test_iter_protocol(self):
        s = DistributedSampler(6, 3, 0, shuffle=False)
        assert list(s) == [0, 3]
        assert len(s) == 2


class TestBatchPlan:
    def test_steps_per_epoch_drop_last(self):
        s = DistributedSampler(103, 4, 0, seed=1)  # 26 samples per rank
        plan = BatchPlan(s, batch_size=8)
        assert plan.steps_per_epoch == 3  # 26 // 8

    def test_batches_partition_rank_stream(self):
        s = DistributedSampler(64, 2, 0, seed=1)
        plan = BatchPlan(s, batch_size=8)
        batches = plan.batches()
        flat = np.concatenate(batches)
        np.testing.assert_array_equal(flat, s.indices()[: len(flat)])

    def test_epoch_cache_invalidation(self):
        s = DistributedSampler(64, 2, 0, seed=1)
        plan = BatchPlan(s, batch_size=8)
        b_e0 = plan.batch(0).copy()
        s.set_epoch(1)
        b_e1 = plan.batch(0)
        assert not np.array_equal(b_e0, b_e1)

    def test_step_bounds(self):
        plan = BatchPlan(DistributedSampler(32, 2, 0), batch_size=8)
        with pytest.raises(IndexError):
            plan.batch(2)

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            BatchPlan(DistributedSampler(32, 2, 0), batch_size=0)
