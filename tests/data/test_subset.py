"""Subset views and train/eval splits."""

import numpy as np
import pytest

from repro.data.datasets import Subset, SyntheticImageDataset, train_eval_split


@pytest.fixture
def base():
    return SyntheticImageDataset(50, seed=3)


class TestSubset:
    def test_view_semantics(self, base):
        sub = Subset(base, range(10, 20))
        assert len(sub) == 10
        x_sub, y_sub = sub[0]
        x_base, y_base = base[10]
        assert x_sub.tobytes() == x_base.tobytes() and y_sub == y_base

    def test_arbitrary_indices(self, base):
        sub = Subset(base, [5, 3, 40])
        assert sub[2][0].tobytes() == base[40][0].tobytes()

    def test_bounds_checked_at_construction(self, base):
        with pytest.raises(IndexError):
            Subset(base, [0, 50])

    def test_bounds_checked_at_access(self, base):
        sub = Subset(base, range(5))
        with pytest.raises(IndexError):
            sub[5]

    def test_empty_rejected(self, base):
        with pytest.raises(ValueError):
            Subset(base, [])


class TestTrainEvalSplit:
    def test_disjoint_and_exhaustive(self, base):
        train, evalset = train_eval_split(base, 30)
        assert len(train) == 30 and len(evalset) == 20
        assert set(train.indices).isdisjoint(evalset.indices)
        assert sorted(train.indices + evalset.indices) == list(range(50))

    def test_shared_prototypes(self, base):
        # the whole point: both splits draw from the same class structure
        train, evalset = train_eval_split(base, 30)
        assert train.dataset is evalset.dataset

    def test_invalid_sizes(self, base):
        with pytest.raises(ValueError):
            train_eval_split(base, 0)
        with pytest.raises(ValueError):
            train_eval_split(base, 50)
