"""DistributedSampler epoch handling across checkpoint/restore.

The sampler's ``_global_order`` is a pure function of (seed, epoch) — so a
checkpoint restored at *any* step index of a multi-epoch run must land its
samplers on exactly the order the uninterrupted run used, and the batch
stream from the restore point onward must be identical.  Mirrors
``tests/core/test_reconfigure_midepoch.py``, but through the serialized
checkpoint round trip instead of a live reconfigure, and at every step of
a 3-epoch horizon.  Also pins ``set_epoch`` input validation: a malformed
epoch silently changes every rank's index stream, so it must raise.
"""

import numpy as np
import pytest

from repro.core import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
from repro.core.checkpoint import Checkpoint
from repro.data.sampler import BatchPlan, DistributedSampler
from repro.hw import gpu_type
from repro.models import get_workload
from repro.utils.fingerprint import fingerprint_state_dict
from tests.conftest import sgd_factory

TOTAL_STEPS = 12  # three epochs of four global steps each


class TestSetEpochValidation:
    @pytest.mark.parametrize("bad", [1.0, "2", None, np.float64(3.0)])
    def test_non_integer_rejected(self, bad):
        sampler = DistributedSampler(16, 2, 0, seed=0)
        with pytest.raises(TypeError, match="epoch must be an integer"):
            sampler.set_epoch(bad)

    def test_bool_rejected(self):
        # bool is an int subclass; accepting it would make set_epoch(True)
        # silently mean epoch 1
        sampler = DistributedSampler(16, 2, 0, seed=0)
        with pytest.raises(TypeError):
            sampler.set_epoch(True)

    def test_negative_rejected(self):
        sampler = DistributedSampler(16, 2, 0, seed=0)
        with pytest.raises(ValueError, match="non-negative"):
            sampler.set_epoch(-1)

    def test_numpy_integer_accepted(self):
        sampler = DistributedSampler(16, 2, 0, seed=0)
        sampler.set_epoch(np.int64(3))
        assert sampler.epoch == 3 and type(sampler.epoch) is int

    def test_failed_set_epoch_leaves_state_untouched(self):
        sampler = DistributedSampler(16, 2, 0, seed=0)
        sampler.set_epoch(2)
        with pytest.raises(TypeError):
            sampler.set_epoch("3")
        assert sampler.epoch == 2


class TestGlobalOrderIsSeedEpochPure:
    def test_same_epoch_same_order_across_instances(self):
        for epoch in range(3):
            orders = []
            for rank in range(2):
                s = DistributedSampler(32, 2, rank, seed=0)
                s.set_epoch(epoch)
                orders.append(s._global_order())
            np.testing.assert_array_equal(orders[0], orders[1])

    def test_epoch_revisit_reproduces_order(self):
        s = DistributedSampler(32, 2, 0, seed=0)
        s.set_epoch(1)
        e1 = s._global_order().copy()
        s.set_epoch(2)
        s.set_epoch(1)
        np.testing.assert_array_equal(s._global_order(), e1)


# ---------------------------------------------------------------------------
# restore at every step of a 3-epoch run
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def env():
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(32, seed=7)
    # 32 samples / (batch 4 x 2 ESTs) = 4 global steps per epoch
    config = EasyScaleJobConfig(num_ests=2, seed=0, batch_size=4)
    return spec, dataset, config


def _engine(env):
    spec, dataset, config = env
    return EasyScaleEngine(
        spec, dataset, config, sgd_factory(),
        WorkerAssignment.balanced([gpu_type("V100")] * 2, 2),
    )


def _batch_schedule(loader, epoch):
    """Every rank's per-step sample indices for one epoch."""
    schedule = {}
    for rank, plan in loader._plans.items():
        plan.sampler.set_epoch(epoch)
        schedule[rank] = [plan.batch(s).copy() for s in range(plan.steps_per_epoch)]
    return schedule


@pytest.fixture(scope="module")
def reference(env):
    engine = _engine(env)
    assert engine.steps_per_epoch == 4
    losses = engine.train_steps(TOTAL_STEPS)
    orders = {}
    sampler = DistributedSampler(32, 2, 0, seed=0)
    for epoch in range(4):
        sampler.set_epoch(epoch)
        orders[epoch] = sampler._global_order().copy()
    return {
        "losses": losses,
        "params": fingerprint_state_dict(engine.model.state_dict()),
        "cursor": (engine.epoch, engine.step_in_epoch),
        "orders": orders,
        "schedules": {e: _batch_schedule(engine.loader, e) for e in range(3)},
    }


@pytest.mark.parametrize("step", range(TOTAL_STEPS))
def test_restore_at_every_step_reproduces_global_order(env, reference, step):
    spec, dataset, _ = env
    engine = _engine(env)
    engine.train_steps(step)
    blob = engine.checkpoint().to_bytes()

    restored = EasyScaleEngine.from_checkpoint(
        spec, dataset, Checkpoint.from_bytes(blob), sgd_factory(),
        WorkerAssignment.balanced([gpu_type("V100")], 2),
    )
    assert (restored.epoch, restored.step_in_epoch) == (step // 4, step % 4)

    # every rank's sampler reproduces the exact _global_order of the
    # uninterrupted run, at the restored epoch and at every other epoch
    for epoch in range(3):
        for plan in restored.loader._plans.values():
            plan.sampler.set_epoch(epoch)
            np.testing.assert_array_equal(
                plan.sampler._global_order(), reference["orders"][epoch],
                err_msg=f"restore at step {step}: epoch-{epoch} order diverged",
            )
        assert _batch_schedule(restored.loader, epoch).keys() == {0, 1}
        for rank, batches in _batch_schedule(restored.loader, epoch).items():
            for s, batch in enumerate(batches):
                np.testing.assert_array_equal(
                    batch, reference["schedules"][epoch][rank][s],
                    err_msg=(
                        f"restore at step {step}: rank {rank} epoch {epoch} "
                        f"step {s} batch diverged"
                    ),
                )
    restored.loader.set_epoch(restored.epoch)

    # and continuing to the horizon lands bitwise on the reference run
    losses = restored.train_steps(TOTAL_STEPS - step)
    assert losses == reference["losses"][step:]
    assert fingerprint_state_dict(restored.model.state_dict()) == reference["params"]
    assert (restored.epoch, restored.step_in_epoch) == reference["cursor"]


def test_batch_plan_cache_follows_restore_epoch(env):
    """The BatchPlan epoch cache must not leak a pre-restore epoch's
    indices into the post-restore stream."""
    sampler = DistributedSampler(32, 2, 0, seed=0)
    plan = BatchPlan(sampler, batch_size=4)
    sampler.set_epoch(0)
    e0 = plan.batch(0).copy()
    sampler.set_epoch(2)
    plan.batch(0)  # warm the cache on epoch 2
    sampler.set_epoch(0)  # "restore" back to epoch 0
    np.testing.assert_array_equal(plan.batch(0), e0)
