"""Shared data workers: allocation-independent batches, queuing buffer."""

import numpy as np
import pytest

from repro.data.dataloader import (
    LoaderTiming,
    QueuingBuffer,
    SharedDataLoader,
    batch_rng_state,
)
from repro.data.datasets import SyntheticImageDataset
from repro.data.transforms import default_image_augmentation


@pytest.fixture
def dataset():
    return SyntheticImageDataset(128, seed=3)


def make_loader(dataset, num_workers=2, replicas=4, transform=True):
    return SharedDataLoader(
        dataset,
        num_replicas=replicas,
        batch_size=8,
        seed=11,
        num_workers=num_workers,
        transform=default_image_augmentation() if transform else None,
    )


class TestDeterminism:
    def test_batch_independent_of_worker_count(self, dataset):
        a = make_loader(dataset, num_workers=1)
        b = make_loader(dataset, num_workers=8)
        xa, ya = a.load(2, 0, 1)
        xb, yb = b.load(2, 0, 1)
        assert xa.tobytes() == xb.tobytes()
        np.testing.assert_array_equal(ya, yb)

    def test_batch_independent_of_load_order(self, dataset):
        a = make_loader(dataset)
        b = make_loader(dataset)
        # a loads in EST order, b interleaved differently
        xa = a.load(0, 0, 0)[0]
        a.load(1, 0, 0)
        b.load(1, 0, 0)
        xb = b.load(0, 0, 0)[0]
        assert xa.tobytes() == xb.tobytes()

    def test_batch_rng_state_pure(self):
        s1 = batch_rng_state(5, 1, 0, 3)
        s2 = batch_rng_state(5, 1, 0, 3)
        assert s1 == s2
        assert batch_rng_state(5, 1, 0, 4) != s1

    def test_augmentation_changes_bytes(self, dataset):
        plain = make_loader(dataset, transform=False)
        augmented = make_loader(dataset, transform=True)
        assert plain.load(0, 0, 0)[0].tobytes() != augmented.load(0, 0, 0)[0].tobytes()

    def test_int_inputs_not_transformed(self):
        from repro.data.datasets import SyntheticQADataset

        loader = SharedDataLoader(
            SyntheticQADataset(64, seed=1),
            num_replicas=2,
            batch_size=4,
            seed=2,
            transform=default_image_augmentation(),
        )
        x, y = loader.load(0, 0, 0)
        assert x.dtype == np.int64  # tokens passed through untouched


class TestQueuingBuffer:
    def test_commit_consume(self):
        q = QueuingBuffer()
        q.commit((0, 0, 1), {"s": 1})
        assert len(q) == 1
        assert q.consume((0, 0, 1)) == {"s": 1}
        assert len(q) == 0

    def test_double_commit_rejected(self):
        q = QueuingBuffer()
        q.commit((0, 0, 1), {})
        with pytest.raises(KeyError):
            q.commit((0, 0, 1), {})

    def test_consume_missing_rejected(self):
        with pytest.raises(KeyError):
            QueuingBuffer().consume((0, 0, 0))

    def test_pending_snapshot_is_copy(self):
        q = QueuingBuffer()
        q.commit((1, 0, 0), {"a": 1})
        snap = q.pending()
        q.consume((1, 0, 0))
        assert (1, 0, 0) in snap

    def test_prefetched_state_used_on_load(self, dataset):
        loader = make_loader(dataset)
        loader.prefetch(0, 0, 0)
        assert len(loader.queue) == 1
        x1 = loader.load(0, 0, 0)[0]
        assert len(loader.queue) == 0
        # identical to non-prefetched load (state derivation is the same)
        x2 = make_loader(dataset).load(0, 0, 0)[0]
        assert x1.tobytes() == x2.tobytes()

    def test_export_import_state(self, dataset):
        loader = make_loader(dataset)
        loader.prefetch(1, 0, 2)
        state = loader.export_state()
        fresh = make_loader(dataset)
        fresh.import_state(state)
        assert len(fresh.queue) == 1
        fresh.load(1, 0, 2)


class TestWorkers:
    def test_round_robin_assignment(self, dataset):
        loader = make_loader(dataset, num_workers=3)
        for i in range(6):
            loader.load(i % 4, 0, i // 4)
        assert [w.batches_processed for w in loader.workers] == [2, 2, 2]

    def test_rank_bounds(self, dataset):
        loader = make_loader(dataset, replicas=2)
        with pytest.raises(IndexError):
            loader.load(2, 0, 0)


class TestTiming:
    def test_sharing_reduces_first_batch_latency(self):
        timing = LoaderTiming(worker_launch_time=0.5, per_sample_time=0.002)
        # 8 ESTs x 4 data workers each = 32 without sharing; 4 with sharing
        unshared = timing.first_batch_latency(32, batch_size=8)
        shared = timing.first_batch_latency(4, batch_size=8)
        reduction = 1 - shared / unshared
        assert reduction > 0.6  # the paper reports 67.1% average

    def test_steady_state_scales_with_workers(self):
        timing = LoaderTiming()
        assert timing.steady_batch_latency(4, 8) == pytest.approx(
            timing.steady_batch_latency(1, 8) / 4
        )

    def test_zero_workers_invalid(self):
        with pytest.raises(ValueError):
            LoaderTiming().first_batch_latency(0, 8)
