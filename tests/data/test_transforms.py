"""Augmentation transforms: RNG-state determinism and semantics."""

import numpy as np
import pytest

from repro.data.transforms import (
    compose,
    default_image_augmentation,
    gaussian_noise,
    random_crop,
    random_horizontal_flip,
)


def _gen(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


def _img(seed=0):
    return _gen(seed).normal(size=(3, 8, 8)).astype(np.float32)


class TestFlip:
    def test_always_flips_at_p1(self):
        x = _img()
        out = random_horizontal_flip(1.0)(x, _gen(1))
        np.testing.assert_array_equal(out, x[..., ::-1])

    def test_never_flips_at_p0(self):
        x = _img()
        out = random_horizontal_flip(0.0)(x, _gen(1))
        np.testing.assert_array_equal(out, x)

    def test_consumes_draw_even_when_not_flipping(self):
        # RNG stream position must not depend on the coin's outcome
        g1, g2 = _gen(5), _gen(5)
        random_horizontal_flip(0.0)(_img(), g1)
        random_horizontal_flip(1.0)(_img(), g2)
        assert g1.random() == g2.random()


class TestCrop:
    def test_preserves_shape(self):
        out = random_crop(2)(_img(), _gen(0))
        assert out.shape == (3, 8, 8)

    def test_deterministic_given_state(self):
        a = random_crop(1)(_img(), _gen(7))
        b = random_crop(1)(_img(), _gen(7))
        assert a.tobytes() == b.tobytes()


class TestNoise:
    def test_noise_magnitude(self):
        x = np.zeros((3, 32, 32), np.float32)
        out = gaussian_noise(0.1)(x, _gen(0))
        assert out.std() == pytest.approx(0.1, rel=0.1)
        assert out.dtype == np.float32


class TestCompose:
    def test_threading_order_matters(self):
        t1 = compose([random_crop(1), gaussian_noise(0.1)])
        t2 = compose([gaussian_noise(0.1), random_crop(1)])
        a = t1(_img(), _gen(3))
        b = t2(_img(), _gen(3))
        assert a.tobytes() != b.tobytes()

    def test_default_stack_deterministic(self):
        t = default_image_augmentation()
        a = t(_img(), _gen(9))
        b = t(_img(), _gen(9))
        assert a.tobytes() == b.tobytes()
