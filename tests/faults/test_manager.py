"""CheckpointManager: periodic capture, retention, corruption fallback."""

import os

import pytest

from repro.core import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
from repro.core.checkpoint import CheckpointCorruptError
from repro.faults import CheckpointManager, Snapshot
from repro.hw import gpu_type
from repro.models import get_workload
from tests.conftest import sgd_factory


@pytest.fixture
def engine():
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(32, seed=7)
    config = EasyScaleJobConfig(num_ests=2, seed=0, batch_size=4)
    return EasyScaleEngine(
        spec, dataset, config, sgd_factory(),
        WorkerAssignment.balanced([gpu_type("V100")] * 2, 2),
    )


class TestCapture:
    def test_maybe_take_only_on_interval_boundaries(self, engine):
        manager = CheckpointManager(interval=2, retention=4)
        assert manager.maybe_take(engine) is not None  # step 0
        engine.train_steps(1)
        assert manager.maybe_take(engine) is None  # step 1
        engine.train_steps(1)
        assert manager.maybe_take(engine) is not None  # step 2
        assert [s.step for s in manager.snapshots] == [0, 2]
        assert manager.taken == 2

    def test_retention_drops_oldest(self, engine):
        manager = CheckpointManager(interval=1, retention=2)
        for _ in range(4):
            manager.take(engine)
            engine.train_steps(1)
        assert [s.step for s in manager.snapshots] == [2, 3]

    def test_retaking_a_step_replaces_it(self, engine):
        manager = CheckpointManager(interval=1, retention=3)
        manager.take(engine)
        manager.take(engine)
        assert [s.step for s in manager.snapshots] == [0]
        assert manager.taken == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointManager(interval=0)
        with pytest.raises(ValueError):
            CheckpointManager(retention=0)


class TestRestore:
    def test_candidates_newest_first_at_or_before(self, engine):
        manager = CheckpointManager(interval=1, retention=4)
        for _ in range(3):
            manager.take(engine)
            engine.train_steps(1)
        assert [s.step for s in manager.candidates()] == [2, 1, 0]
        assert [s.step for s in manager.candidates(at_or_before=1)] == [1, 0]

    def test_decode_round_trips_the_engine_state(self, engine):
        manager = CheckpointManager(interval=1, retention=2)
        engine.train_steps(2)
        snapshot = manager.take(engine)
        ckpt = manager.decode(snapshot)
        assert ckpt.extra["global_step"] == 2

    def test_corrupt_latest_is_caught_by_decode(self, engine):
        manager = CheckpointManager(interval=1, retention=3)
        manager.take(engine)
        engine.train_steps(1)
        manager.take(engine)
        assert manager.corrupt_latest() is not None
        bad = manager.candidates()[0]
        with pytest.raises(CheckpointCorruptError):
            manager.decode(bad)
        assert bad.corrupt and manager.corrupted_detected == 1
        # the fallback candidate is the older, intact snapshot
        assert [s.step for s in manager.candidates()] == [0]
        assert manager.latest().step == 0

    def test_step_label_mismatch_is_corruption(self, engine):
        manager = CheckpointManager(interval=1, retention=2)
        snapshot = manager.take(engine)
        relabeled = Snapshot(step=snapshot.step + 5, data=snapshot.data)
        with pytest.raises(CheckpointCorruptError, match="labeled step"):
            manager.decode(relabeled)
        assert relabeled.corrupt

    def test_corrupt_latest_on_empty_manager(self):
        assert CheckpointManager().corrupt_latest() is None


class TestDiskMode:
    def test_snapshots_persist_and_trim_on_disk(self, engine, tmp_path):
        manager = CheckpointManager(interval=1, retention=2,
                                    directory=str(tmp_path))
        for _ in range(3):
            manager.take(engine)
            engine.train_steps(1)
        names = sorted(os.listdir(tmp_path))
        assert names == ["step-00000001.ckpt", "step-00000002.ckpt"]
        assert not any(n.endswith(".tmp") for n in names)

    def test_corruption_reaches_the_disk_copy(self, engine, tmp_path):
        manager = CheckpointManager(interval=1, retention=2,
                                    directory=str(tmp_path))
        snapshot = manager.take(engine)
        manager.corrupt_latest()
        with open(snapshot.path, "rb") as fh:
            assert fh.read() == snapshot.data

    def test_describe_lists_snapshots(self, engine):
        manager = CheckpointManager(interval=1, retention=2)
        manager.take(engine)
        text = manager.describe()
        assert "retain 2" in text and "step" in text
