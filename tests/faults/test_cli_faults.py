"""CLI: ``faults gen``/``faults replay``, ``train --faults``, trace-sim faults."""

import json

import pytest

from repro.cli import main
from repro.faults import FaultEvent, FaultPlan, random_sim_plan


@pytest.fixture
def small_plan(tmp_path):
    path = tmp_path / "plan.json"
    FaultPlan(events=(
        FaultEvent(kind="gpu_revoke", at_step=2),
    ), seed=1).save(path)
    return str(path)


class TestGen:
    def test_gen_writes_a_loadable_plan(self, tmp_path, capsys):
        out = str(tmp_path / "plan.json")
        assert main(["faults", "gen", "--seed", "3", "--steps", "10",
                     "--gpus", "4", "--out", out]) == 0
        plan = FaultPlan.load(out)
        assert plan.seed == 3 and len(plan) >= 1
        assert "fault plan written" in capsys.readouterr().out

    def test_gen_is_deterministic(self, tmp_path):
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        main(["faults", "gen", "--seed", "9", "--out", a])
        main(["faults", "gen", "--seed", "9", "--out", b])
        assert FaultPlan.load(a) == FaultPlan.load(b)


class TestReplay:
    REPLAY_BASE = ["faults", "replay", "--workload", "resnet18",
                   "--ests", "2", "--samples", "32", "--batch-size", "4",
                   "--steps", "5", "--gpus", "2xV100", "--determinism", "D1"]

    def test_replay_bitwise_match_exits_zero(self, small_plan, capsys):
        assert main(self.REPLAY_BASE + ["--plan", small_plan]) == 0
        out = capsys.readouterr().out
        assert "BITWISE-IDENTICAL" in out
        assert "no divergence" in out

    def test_replay_writes_audit_trails(self, small_plan, tmp_path, capsys):
        prefix = str(tmp_path / "aud")
        assert main(self.REPLAY_BASE + ["--plan", small_plan,
                                        "--audit", prefix]) == 0
        for leg in ("ref", "fault"):
            with open(f"{prefix}.{leg}.jsonl", encoding="utf-8") as fh:
                assert fh.read().strip()

    def test_replay_divergence_exits_four(self, small_plan, capsys):
        # plain D1 on a heterogeneous pool: the post-recovery EST->GPU
        # mapping changes dialects, so the run must diverge -- and the
        # CLI must say so with exit code 4
        argv = ["faults", "replay", "--plan", small_plan,
                "--workload", "resnet18", "--ests", "2", "--samples", "32",
                "--batch-size", "4", "--steps", "5",
                "--gpus", "1xV100+1xT4", "--determinism", "D1"]
        assert main(argv) == 4
        assert "DIVERGED" in capsys.readouterr().out

    def test_replay_missing_plan_exits_two(self, tmp_path, capsys):
        assert main(["faults", "replay", "--plan",
                     str(tmp_path / "nope.json")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_replay_malformed_plan_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"seed": 1}))
        assert main(["faults", "replay", "--plan", str(path)]) == 2
        assert "events" in capsys.readouterr().err


class TestTrainWithFaults:
    def test_train_faults_verifies_bitwise(self, small_plan, capsys):
        code = main([
            "train", "resnet18", "--ests", "2", "--samples", "32",
            "--batch-size", "4", "--steps-per-stage", "5",
            "--schedule", "2xV100", "--faults", small_plan, "--verify",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "survived the plan" in out
        assert "IDENTICAL" in out
        assert "downtime" in out

    def test_train_missing_plan_exits_two(self, tmp_path, capsys):
        code = main(["train", "resnet18", "--faults",
                     str(tmp_path / "nope.json")])
        assert code == 2
        assert "no such file" in capsys.readouterr().err


class TestTraceSimWithFaults:
    def test_trace_sim_reports_preemptions(self, tmp_path, capsys):
        path = tmp_path / "sim.json"
        random_sim_plan(7, horizon_s=3000.0, max_events=5).save(path)
        code = main(["trace-sim", "--jobs", "4", "--policy", "heter",
                     "--faults", str(path)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "preemption(s)" in out

    def test_trace_sim_missing_plan_exits_two(self, tmp_path, capsys):
        assert main(["trace-sim", "--faults",
                     str(tmp_path / "nope.json")]) == 2
        assert "no such file" in capsys.readouterr().err
