"""ResilienceController: bitwise recovery, downtime accounting, fallbacks."""

import pytest

from repro import obs
from repro.core import (
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
)
from repro.faults import (
    FaultEvent,
    FaultPlan,
    RecoveryFailedError,
    ResilienceController,
    random_plan,
)
from repro.hw import gpu_type
from repro.models import get_workload
from repro.utils.fingerprint import fingerprint_state_dict
from tests.conftest import sgd_factory


@pytest.fixture(scope="module")
def homo_env():
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(32, seed=7)
    config = EasyScaleJobConfig(num_ests=2, seed=0, batch_size=4)
    return spec, dataset, config


@pytest.fixture(scope="module")
def homo_reference(homo_env):
    """Fault-free model fingerprints after each of the first 8 steps."""
    spec, dataset, config = homo_env
    engine = EasyScaleEngine(
        spec, dataset, config, sgd_factory(),
        WorkerAssignment.balanced([gpu_type("V100")] * 2, 2),
    )
    fingerprints = {}
    for step in range(1, 9):
        engine.run_global_step()
        fingerprints[step] = fingerprint_state_dict(engine.model.state_dict())
    return fingerprints


def _controller(env, plan, **kwargs):
    spec, dataset, config = env
    kwargs.setdefault("snapshot_interval", 2)
    kwargs.setdefault("restart_delay_s", 15.0)
    kwargs.setdefault("backoff_s", 5.0)
    return ResilienceController(
        spec, dataset, config, sgd_factory(), ["V100", "V100"], plan, **kwargs
    )


def _fingerprint(controller):
    return fingerprint_state_dict(controller.engine.model.state_dict())


class TestFaultFree:
    def test_empty_plan_matches_reference_bitwise(self, homo_env, homo_reference):
        controller = _controller(homo_env, FaultPlan(events=()))
        stats = controller.run(4)
        assert _fingerprint(controller) == homo_reference[4]
        assert stats.faults_injected == 0 and stats.recoveries == 0
        assert stats.downtime_s == 0.0
        assert controller.clock == controller.compute_s

    def test_ctor_validation(self, homo_env):
        spec, dataset, config = homo_env
        plan = FaultPlan(events=())
        with pytest.raises(ValueError, match="at least one GPU"):
            ResilienceController(spec, dataset, config, sgd_factory(), [], plan)
        with pytest.raises(ValueError, match="max_retries"):
            _controller(homo_env, plan, max_retries=0)
        with pytest.raises(ValueError, match="non-negative"):
            _controller(homo_env, plan, restart_delay_s=-1.0)

    def test_active_audit_trail_must_allow_rewind(self, homo_env):
        obs.configure(enabled=True, audit=True)
        try:
            with pytest.raises(ValueError, match="audit_rewind"):
                _controller(homo_env, FaultPlan(events=()))
        finally:
            obs.reset()


class TestGracefulRecovery:
    def test_gpu_revoke_loses_zero_steps(self, homo_env, homo_reference):
        plan = FaultPlan(events=(FaultEvent(kind="gpu_revoke", at_step=2),))
        controller = _controller(homo_env, plan)
        stats = controller.run(4)
        assert len(controller.pool) == 1
        assert stats.recoveries == 1 and stats.lost_steps == 0
        assert stats.downtime_s == pytest.approx(15.0)
        [incident] = stats.incidents
        assert incident.fault_step == 2 and incident.restore_step == 2
        assert incident.mttr_s is not None and incident.mttr_s > 15.0
        assert _fingerprint(controller) == homo_reference[4]

    def test_slowdown_costs_time_but_not_bits(self, homo_env, homo_reference):
        plan = FaultPlan(events=(
            FaultEvent(kind="slowdown", at_step=1, target="worker:0",
                       magnitude=2.0),
        ))
        slow = _controller(homo_env, plan)
        slow.run(4)
        clean = _controller(homo_env, FaultPlan(events=()))
        clean.run(4)
        assert _fingerprint(slow) == homo_reference[4]
        assert slow.stats.recoveries == 0
        assert slow.compute_s > clean.compute_s

    def test_restart_delay_charges_the_next_recovery(self, homo_env):
        plan = FaultPlan(events=(
            FaultEvent(kind="restart_delay", at_step=1, magnitude=30.0),
            FaultEvent(kind="gpu_revoke", at_step=2),
        ))
        controller = _controller(homo_env, plan)
        stats = controller.run(4)
        [incident] = stats.incidents
        assert incident.downtime_s == pytest.approx(15.0 + 30.0)
        assert stats.downtime_s == pytest.approx(45.0)


class TestAbruptRecovery:
    def test_worker_crash_falls_back_to_last_snapshot(self, homo_env,
                                                      homo_reference):
        plan = FaultPlan(events=(
            FaultEvent(kind="worker_crash", at_step=3, target="worker:1"),
        ))
        controller = _controller(homo_env, plan, snapshot_interval=2)
        stats = controller.run(5)
        [incident] = stats.incidents
        assert incident.fault_step == 3 and incident.restore_step == 2
        assert incident.lost_steps == 1 and stats.lost_steps == 1
        assert stats.downtime_s == pytest.approx(15.0)
        assert incident.mttr_s is not None
        assert len(controller.losses) == 5  # rewound steps overwritten once
        assert _fingerprint(controller) == homo_reference[5]

    def test_corrupt_snapshot_retries_older_with_backoff(self, homo_env,
                                                         homo_reference):
        plan = FaultPlan(events=(
            FaultEvent(kind="checkpoint_corrupt", at_step=3),
            FaultEvent(kind="worker_crash", at_step=3),
        ))
        controller = _controller(homo_env, plan, snapshot_interval=2)
        stats = controller.run(5)
        [incident] = stats.incidents
        assert incident.retries == 1
        assert incident.restore_step == 0  # step-2 copy was the corrupted one
        # one failed decode costs backoff_s * 2**0 on top of the restart
        assert stats.downtime_s == pytest.approx(15.0 + 5.0)
        assert controller.manager.corrupted_detected == 1
        assert _fingerprint(controller) == homo_reference[5]

    def test_cold_restart_when_no_snapshot_survives(self, homo_env,
                                                    homo_reference):
        plan = FaultPlan(events=(
            FaultEvent(kind="checkpoint_corrupt", at_step=1),
            FaultEvent(kind="worker_crash", at_step=2),
        ))
        # interval 10: the step-0 snapshot is the only one, and it dies
        controller = _controller(homo_env, plan, snapshot_interval=10)
        stats = controller.run(4)
        [incident] = stats.incidents
        assert incident.restore_step == 0 and incident.lost_steps == 2
        assert incident.retries == 1
        # the cold restart re-seeds the snapshot chain
        assert controller.manager.latest() is not None
        assert _fingerprint(controller) == homo_reference[4]

    def test_retry_budget_exhaustion_raises(self, homo_env):
        plan = FaultPlan(events=(
            FaultEvent(kind="checkpoint_corrupt", at_step=2),
            FaultEvent(kind="worker_crash", at_step=2),
        ))
        controller = _controller(homo_env, plan, snapshot_interval=1,
                                 max_retries=1)
        with pytest.raises(RecoveryFailedError, match="within 1 retries"):
            controller.run(4)

    def test_node_preempt_keeps_one_survivor(self, homo_env, homo_reference):
        plan = FaultPlan(events=(
            FaultEvent(kind="node_preempt", at_step=2, magnitude=5.0),
        ))
        controller = _controller(homo_env, plan, snapshot_interval=2)
        controller.run(4)
        assert len(controller.pool) == 1  # never drops to zero
        assert _fingerprint(controller) == homo_reference[4]


class TestAccounting:
    def test_clock_decomposes_exactly(self, homo_env):
        plan = FaultPlan(events=(
            FaultEvent(kind="gpu_revoke", at_step=1),
            FaultEvent(kind="worker_crash", at_step=3),
        ))
        controller = _controller(homo_env, plan)
        stats = controller.run(5)
        assert controller.clock == pytest.approx(
            controller.compute_s + stats.downtime_s, abs=1e-12
        )
        assert stats.mean_mttr_s > 0 and stats.max_mttr_s >= stats.mean_mttr_s
        assert all(i.mttr_s is not None for i in stats.incidents)

    def test_stats_serialization(self, homo_env):
        plan = FaultPlan(events=(FaultEvent(kind="gpu_revoke", at_step=1),))
        controller = _controller(homo_env, plan)
        stats = controller.run(3)
        payload = stats.to_dict()
        assert payload["recoveries"] == 1
        assert payload["incidents"][0]["kind"] == "gpu_revoke"
        text = stats.describe()
        assert "gpu_revoke" in text and "MTTR" in text


@pytest.fixture(scope="module")
def het_env():
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(64, seed=7)
    config = EasyScaleJobConfig(
        num_ests=4, seed=0, batch_size=8,
        determinism=determinism_from_label("D1+D2"),
    )
    return spec, dataset, config


@pytest.fixture(scope="module")
def het_reference(het_env):
    spec, dataset, config = het_env
    pool = [gpu_type("V100"), gpu_type("V100"), gpu_type("T4"), gpu_type("T4")]
    engine = EasyScaleEngine(
        spec, dataset, config, sgd_factory(),
        WorkerAssignment.balanced(pool, 4),
    )
    engine.train_steps(10)
    return fingerprint_state_dict(engine.model.state_dict())


class TestRandomPlansProperty:
    """Tier-1 slice of the chaos property (the full sweep is `-m chaos`)."""

    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_random_plan_recovers_bitwise_on_heterogeneous_pool(
        self, het_env, het_reference, seed
    ):
        spec, dataset, config = het_env
        plan = random_plan(seed, horizon_steps=10, num_gpus=4)
        controller = ResilienceController(
            spec, dataset, config, sgd_factory(),
            ["V100", "V100", "T4", "T4"], plan,
            snapshot_interval=3,
        )
        stats = controller.run(10)
        assert stats.faults_injected == len(plan)
        assert _fingerprint(controller) == het_reference
        assert controller.clock == pytest.approx(
            controller.compute_s + stats.downtime_s, abs=1e-12
        )
