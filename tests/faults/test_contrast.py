"""Contrast experiment: EasyScale stays bitwise, restart baselines drift."""

import pytest

from repro.core import EasyScaleJobConfig, determinism_from_label
from repro.faults import (
    FaultEvent,
    FaultPlan,
    run_contrast,
    segments_from_plan,
)
from repro.models import get_workload
from tests.conftest import sgd_factory


class TestSegmentsFromPlan:
    def test_no_capacity_events_is_one_segment(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="slowdown", at_step=3, magnitude=2.0),
            FaultEvent(kind="checkpoint_corrupt", at_step=5),
        ))
        segments = segments_from_plan(plan, initial_world=4, total_epochs=3,
                                      horizon_steps=10)
        assert [(s.world_size, s.epochs) for s in segments] == [(4, 3)]

    def test_capacity_events_cut_and_shrink(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="gpu_revoke", at_step=5),
            FaultEvent(kind="node_preempt", at_step=8, magnitude=2.0),
        ))
        segments = segments_from_plan(plan, initial_world=4, total_epochs=4,
                                      horizon_steps=10)
        # cuts at epochs round(5/10*4)=2 and round(8/10*4)=3
        assert [(s.world_size, s.epochs) for s in segments] == [
            (4, 2), (3, 1), (1, 1),
        ]

    def test_world_never_drops_below_one(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="node_preempt", at_step=2, magnitude=9.0),
        ))
        segments = segments_from_plan(plan, initial_world=2, total_epochs=2,
                                      horizon_steps=4)
        assert segments[-1].world_size == 1

    def test_validation(self):
        plan = FaultPlan(events=())
        with pytest.raises(ValueError):
            segments_from_plan(plan, initial_world=0, total_epochs=2,
                               horizon_steps=4)
        with pytest.raises(ValueError):
            segments_from_plan(plan, initial_world=2, total_epochs=0,
                               horizon_steps=4)
        with pytest.raises(ValueError):
            segments_from_plan(plan, initial_world=2, total_epochs=2,
                               horizon_steps=0)


class TestRunContrast:
    def test_easyscale_consistent_baseline_divergent(self):
        spec = get_workload("resnet18")
        dataset = spec.build_dataset(64, seed=7)
        config = EasyScaleJobConfig(
            num_ests=4, seed=0, batch_size=8,
            determinism=determinism_from_label("D1+D2"),
        )
        plan = FaultPlan(events=(
            FaultEvent(kind="gpu_revoke", at_step=4),
        ), seed=42)
        result = run_contrast(
            spec, dataset, config, sgd_factory(),
            ["V100", "V100", "T4", "T4"], plan, total_steps=8,
        )
        assert result.easyscale_consistent
        # the restart baseline re-derives LR/sharding from the new world
        # size, so the same capacity loss changes its trajectory
        assert not result.baseline_consistent
        assert result.baseline_name == "torchelastic"
        worlds = [s.world_size for s in result.baseline_segments]
        assert worlds[0] == 4 and worlds[-1] == 3
        assert result.resilience is not None
        assert result.resilience.recoveries == 1

        payload = result.to_dict()
        assert payload["easyscale_consistent"] is True
        assert payload["baseline_consistent"] is False

        text = result.describe()
        assert "BITWISE-IDENTICAL" in text and "DIVERGED" in text
