"""FaultEvent/FaultPlan: validation, JSON round trip, seeded generation."""

import pytest

from repro.faults import (
    ABRUPT_KINDS,
    CAPACITY_KINDS,
    FAULT_KINDS,
    GRACEFUL_KINDS,
    FaultEvent,
    FaultPlan,
    random_plan,
    random_sim_plan,
)


class TestFaultEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="meteor_strike", at_step=1)

    def test_exactly_one_trigger_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultEvent(kind="worker_crash")
        with pytest.raises(ValueError, match="exactly one"):
            FaultEvent(kind="worker_crash", at_step=1, at_time=1.0)

    def test_negative_triggers_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="worker_crash", at_step=-1)
        with pytest.raises(ValueError):
            FaultEvent(kind="worker_crash", at_time=-0.5)

    def test_magnitude_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="node_preempt", at_step=1, magnitude=0.0)

    def test_slowdown_is_a_factor(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(kind="slowdown", at_step=1, magnitude=0.5)

    def test_kind_partitions(self):
        assert ABRUPT_KINDS | GRACEFUL_KINDS == set(FAULT_KINDS)
        assert not (ABRUPT_KINDS & GRACEFUL_KINDS)
        assert CAPACITY_KINDS <= set(FAULT_KINDS)


class TestTargets:
    def test_target_worker_modulo(self):
        event = FaultEvent(kind="worker_crash", at_step=1, target="worker:5")
        assert event.target_worker(4) == 1
        assert event.target_worker(2) == 1
        # None targets worker 0 deterministically
        assert FaultEvent(kind="worker_crash", at_step=1).target_worker(3) == 0

    def test_target_worker_rejects_garbage(self):
        event = FaultEvent(kind="worker_crash", at_step=1, target="worker:alpha")
        with pytest.raises(ValueError, match="not a worker index"):
            event.target_worker(4)
        with pytest.raises(ValueError, match="num_workers"):
            FaultEvent(kind="worker_crash", at_step=1).target_worker(0)

    def test_target_job_and_gtype(self):
        job = FaultEvent(kind="node_preempt", at_time=5.0, target="job:j-3")
        assert job.target_job() == "j-3"
        assert job.target_gtype() is None
        gtype = FaultEvent(kind="gpu_revoke", at_step=2, target="T4")
        assert gtype.target_gtype() == "t4"
        assert gtype.target_job() is None
        assert FaultEvent(kind="gpu_revoke", at_step=2).target_gtype() is None


class TestFaultPlan:
    def _plan(self):
        return FaultPlan(
            events=(
                FaultEvent(kind="slowdown", at_step=1, target="worker:1",
                           magnitude=2.5),
                FaultEvent(kind="gpu_revoke", at_step=3, target="t4"),
                FaultEvent(kind="node_preempt", at_time=40.0, magnitude=2.0),
            ),
            seed=11,
            note="unit",
        )

    def test_events_must_be_ordered(self):
        with pytest.raises(ValueError, match="ordered"):
            FaultPlan(events=(
                FaultEvent(kind="worker_crash", at_step=5),
                FaultEvent(kind="worker_crash", at_step=2),
            ))

    def test_step_time_split_and_capacity_cost(self):
        plan = self._plan()
        assert [e.kind for e in plan.step_events] == ["slowdown", "gpu_revoke"]
        assert [e.kind for e in plan.time_events] == ["node_preempt"]
        assert plan.capacity_cost() == 3  # one revoke + two preempted
        assert len(plan) == 3

    def test_json_round_trip(self):
        plan = self._plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_save_load_round_trip(self, tmp_path):
        plan = self._plan()
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_from_json_rejects_malformed(self):
        with pytest.raises(ValueError, match="malformed"):
            FaultPlan.from_json("{nope")
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(ValueError, match="version"):
            FaultPlan.from_json('{"version": 99, "events": []}')
        with pytest.raises(ValueError, match="missing"):
            FaultPlan.from_json('{"seed": 1}')
        with pytest.raises(ValueError, match="list"):
            FaultPlan.from_json('{"events": {"kind": "worker_crash"}}')

    def test_describe_mentions_every_event(self):
        text = self._plan().describe()
        assert "slowdown" in text and "gpu_revoke" in text
        assert "note: unit" in text


class TestRandomPlan:
    def test_deterministic_in_seed(self):
        a = random_plan(7, horizon_steps=20, num_gpus=4)
        b = random_plan(7, horizon_steps=20, num_gpus=4)
        assert a == b and a.to_json() == b.to_json()

    def test_seeds_differ(self):
        plans = {random_plan(s, horizon_steps=20, num_gpus=4).to_json()
                 for s in range(10)}
        assert len(plans) > 1

    def test_survivable_and_in_horizon(self):
        for seed in range(25):
            plan = random_plan(seed, horizon_steps=12, num_gpus=4, max_events=6)
            assert 1 <= len(plan) <= 6
            assert plan.capacity_cost() <= 3  # one GPU always survives
            for event in plan:
                assert event.at_step is not None
                assert 1 <= event.at_step <= 11  # step 0 untouched

    def test_single_gpu_pool_never_loses_capacity(self):
        for seed in range(25):
            plan = random_plan(seed, horizon_steps=10, num_gpus=1, max_events=6)
            assert plan.capacity_cost() == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            random_plan(0, horizon_steps=1, num_gpus=4)
        with pytest.raises(ValueError):
            random_plan(0, horizon_steps=10, num_gpus=0)
        with pytest.raises(ValueError):
            random_plan(0, horizon_steps=10, num_gpus=4, max_events=0)
        with pytest.raises(ValueError, match="unknown fault kinds"):
            random_plan(0, horizon_steps=10, num_gpus=4, kinds=("nope",))


class TestRandomSimPlan:
    def test_time_triggered_within_horizon(self):
        for seed in range(10):
            plan = random_sim_plan(seed, horizon_s=1000.0)
            assert plan.step_events == ()
            for event in plan:
                assert 0.0 < event.at_time < 1000.0

    def test_deterministic_in_seed(self):
        assert random_sim_plan(3, 500.0) == random_sim_plan(3, 500.0)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            random_sim_plan(0, horizon_s=0.0)
