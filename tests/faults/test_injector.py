"""FaultInjector / SimFaultInjector: exactly-once firing and reset."""

import pytest

from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    NodePreemptSignal,
    SimFaultInjector,
    WorkerCrashSignal,
)


class _StubAssignment:
    def __init__(self, num_workers):
        self.num_workers = num_workers


class _StubEngine:
    """Just enough engine surface for the boundary hook."""

    def __init__(self, global_step=0, num_workers=2):
        self.global_step = global_step
        self.assignment = _StubAssignment(num_workers)


def _plan(*events, seed=0):
    return FaultPlan(events=tuple(events), seed=seed)


class TestStepInjector:
    def test_node_preempt_fires_exactly_once(self):
        plan = _plan(FaultEvent(kind="node_preempt", at_step=3, magnitude=2.0))
        injector = FaultInjector(plan)
        engine = _StubEngine(global_step=3)
        injector.on_step_boundary(_StubEngine(global_step=2))
        with pytest.raises(NodePreemptSignal) as excinfo:
            injector.on_step_boundary(engine)
        assert excinfo.value.event.magnitude == 2.0
        # the recovered engine re-executes step 3: no second raise
        injector.on_step_boundary(engine)
        assert injector.fired_count == 1 and injector.exhausted

    def test_worker_crash_targets_one_worker_mid_step(self):
        plan = _plan(FaultEvent(kind="worker_crash", at_step=1, target="worker:1"))
        injector = FaultInjector(plan)
        injector.on_step_boundary(_StubEngine(global_step=1, num_workers=2))
        injector.on_local_step(worker_id=0, vrank=0)  # survivor: no raise
        with pytest.raises(WorkerCrashSignal) as excinfo:
            injector.on_local_step(worker_id=1, vrank=2)
        assert excinfo.value.worker_id == 1 and excinfo.value.vrank == 2
        injector.on_local_step(worker_id=1, vrank=3)  # fired stays fired
        assert injector.exhausted

    def test_local_hook_inert_before_first_boundary(self):
        injector = FaultInjector(
            _plan(FaultEvent(kind="worker_crash", at_step=0))
        )
        injector.on_local_step(worker_id=0, vrank=0)  # no boundary seen yet
        assert injector.fired_count == 0

    def test_boundary_events_consume_graceful_kinds(self):
        plan = _plan(
            FaultEvent(kind="slowdown", at_step=2, target="worker:0", magnitude=2.0),
            FaultEvent(kind="checkpoint_corrupt", at_step=2),
            FaultEvent(kind="worker_crash", at_step=2),
        )
        injector = FaultInjector(plan)
        due = injector.boundary_events(2)
        assert sorted(e.kind for e in due) == ["checkpoint_corrupt", "slowdown"]
        assert injector.boundary_events(2) == []  # consumed
        # the abrupt event is untouched by the graceful path
        assert [e.kind for e in injector.pending_events()] == ["worker_crash"]

    def test_reset_restores_the_full_plan(self):
        plan = _plan(FaultEvent(kind="gpu_revoke", at_step=1))
        injector = FaultInjector(plan)
        assert len(injector.boundary_events(1)) == 1
        injector.reset()
        assert not injector.exhausted
        assert len(injector.boundary_events(1)) == 1

    def test_time_events_are_ignored(self):
        injector = FaultInjector(
            _plan(FaultEvent(kind="node_preempt", at_time=10.0))
        )
        injector.on_step_boundary(_StubEngine(global_step=10))
        assert injector.exhausted  # no step events at all


class TestSimInjector:
    def _injector(self):
        return SimFaultInjector(_plan(
            FaultEvent(kind="slowdown", at_time=10.0, magnitude=2.0),
            FaultEvent(kind="node_preempt", at_time=25.0),
            FaultEvent(kind="node_preempt", at_time=40.0),
        ))

    def test_next_time_is_strictly_after(self):
        injector = self._injector()
        assert injector.next_time(0.0) == 10.0
        assert injector.next_time(10.0) == 25.0
        assert injector.next_time(40.0) is None

    def test_due_pops_in_order_exactly_once(self):
        injector = self._injector()
        assert [e.at_time for e in injector.due(25.0)] == [10.0, 25.0]
        assert injector.due(25.0) == []
        assert [e.at_time for e in injector.due(100.0)] == [40.0]
        assert injector.exhausted

    def test_reset(self):
        injector = self._injector()
        injector.due(100.0)
        injector.reset()
        assert not injector.exhausted
        assert len(injector.due(100.0)) == 3
