"""Retention vs corruption: the last CRC-valid snapshot must survive.

Age-only eviction had a fatal interplay with the ``checkpoint_corrupt``
fault: when the newest blobs are damaged, the oldest snapshot can be the
last valid restore point, and evicting it turns the next crash into a cold
restart.  The property pinned here: the manager never evicts a CRC-valid
snapshot while an invalid one is retained, so as long as any retained
snapshot was never corrupted, recovery has a decodable candidate.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
from repro.faults import CheckpointManager
from repro.hw import gpu_type
from repro.models import get_workload
from repro.utils.serialization import verify_bytes
from tests.conftest import sgd_factory


@pytest.fixture(scope="module")
def engine():
    """A tiny real engine; tests drive ``global_step`` directly so each
    ``take`` captures a distinct, honestly-labeled checkpoint without
    paying for training."""
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(32, seed=7)
    config = EasyScaleJobConfig(num_ests=2, seed=0, batch_size=4)
    return EasyScaleEngine(
        spec, dataset, config, sgd_factory(),
        WorkerAssignment.balanced([gpu_type("V100")] * 2, 2),
    )


def test_regression_last_valid_survives_corrupt_newer(engine):
    """The exact failure mode: two newer snapshots corrupted in turn must
    not push the only valid one out of a retention-2 window."""
    manager = CheckpointManager(interval=1, retention=2)
    engine.global_step = 4
    manager.take(engine)  # step 4: stays valid throughout
    engine.global_step = 8
    manager.take(engine)
    manager.corrupt_latest()  # step 8 now CRC-invalid
    engine.global_step = 12
    manager.take(engine)  # over retention: must evict corrupt 8, not valid 4
    assert [s.step for s in manager.snapshots] == [4, 12]
    manager.corrupt_latest()  # step 12 invalid too
    # recovery still has a decodable candidate: the preserved step-4 blob
    survivors = [s for s in manager.snapshots if verify_bytes(s.data)]
    assert [s.step for s in survivors] == [4]
    assert manager.decode(survivors[0]).extra["global_step"] == 4


def test_all_valid_degrades_to_drop_oldest(engine):
    manager = CheckpointManager(interval=1, retention=2)
    for step in (1, 2, 3, 4):
        engine.global_step = step
        manager.take(engine)
    assert [s.step for s in manager.snapshots] == [3, 4]


@given(
    ops=st.lists(st.sampled_from(["take", "corrupt"]), min_size=1, max_size=14),
    retention=st.integers(1, 3),
)
@settings(max_examples=40, deadline=None)
def test_never_evicts_valid_while_invalid_retained(engine, ops, retention):
    """Property over arbitrary take/corrupt interleavings.

    A model tracks per-snapshot corruption parity (``corrupt_latest`` is a
    bit flip, so corrupting the same blob twice restores it) and checks,
    after every operation:

    - retention bound holds;
    - CRC validity of every retained snapshot matches the model;
    - an eviction only removes a valid snapshot when no invalid snapshot
      remains retained (the fixed policy), so the last valid checkpoint
      can never be displaced by corrupt newer ones.
    """
    manager = CheckpointManager(interval=1, retention=retention)
    flips = {}  # step -> number of times corrupt_latest hit it
    step = 0
    for op in ops:
        retained_before = {s.step for s in manager.snapshots}
        if op == "take":
            step += 4
            engine.global_step = step
            manager.take(engine)
            flips[step] = 0
            retained_now = {s.step for s in manager.snapshots}
            evicted = (retained_before | {step}) - retained_now
            if any(flips[s] % 2 == 0 for s in evicted):
                # a valid snapshot was dropped: legal only when every
                # retained snapshot is itself valid
                assert all(flips[s] % 2 == 0 for s in retained_now), (
                    f"evicted valid {sorted(evicted)} while invalid "
                    f"snapshots remained: {sorted(retained_now)}"
                )
            flips = {s: flips[s] for s in retained_now}
        else:
            # mirror corrupt_latest's target choice: newest not yet
            # *marked* corrupt (CRC state is invisible to it)
            unmarked = [s.step for s in manager.snapshots if not s.corrupt]
            manager.corrupt_latest()
            if unmarked:
                flips[max(unmarked)] += 1
        assert len(manager.snapshots) <= retention
        for snapshot in manager.snapshots:
            assert verify_bytes(snapshot.data) == (flips[snapshot.step] % 2 == 0)
