"""Lightweight lint gate: every source file must compile, and (when
pyflakes is installed) carry no unused imports or undefined names.

This rides in the regular suite so a syntax error or a dead import in a
rarely-exercised module fails CI immediately, without requiring any
linter to be present in minimal environments.
"""

import compileall
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src", "repro")


def _python_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in ("__pycache__", ".git")]
        for name in filenames:
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def test_source_tree_compiles():
    assert compileall.compile_dir(SRC, quiet=2, force=False), (
        "a module under src/repro failed to byte-compile"
    )


def test_lint_walk_covers_faults_package():
    # the walk is recursive, so new packages are covered automatically;
    # this pins the repro.faults subsystem explicitly so a future
    # restructuring cannot silently drop it from the gate
    files = {os.path.relpath(p, SRC) for p in _python_files(SRC)}
    for expected in (
        "faults/__init__.py",
        "faults/schedule.py",
        "faults/injector.py",
        "faults/manager.py",
        "faults/controller.py",
        "faults/contrast.py",
    ):
        assert expected in files, f"lint gate does not see {expected}"


def test_lint_walk_covers_exec_package():
    # same pinning for the execution-backend subsystem
    files = {os.path.relpath(p, SRC) for p in _python_files(SRC)}
    for expected in (
        "exec/__init__.py",
        "exec/base.py",
        "exec/serial.py",
        "exec/pool.py",
        "exec/shm.py",
    ):
        assert expected in files, f"lint gate does not see {expected}"


def test_lint_walk_covers_bench_observatory_modules():
    # pin the performance-regression observatory and the modules the
    # cross-process trace collection touches, so a restructuring cannot
    # silently drop them from the gate
    files = {os.path.relpath(p, SRC) for p in _python_files(SRC)}
    for expected in (
        "obs/bench.py",
        "obs/trace.py",
        "obs/metrics.py",
        "exec/base.py",
        "exec/pool.py",
    ):
        assert expected in files, f"lint gate does not see {expected}"


def test_lint_walk_covers_sched_fastpath_modules():
    # pin the scheduler fast-path surface (plan cache, companion search,
    # dual-core simulator) so a restructuring cannot drop it from the gate
    files = {os.path.relpath(p, SRC) for p in _python_files(SRC)}
    for expected in (
        "sched/plancache.py",
        "sched/companion.py",
        "sched/intra.py",
        "sched/inter.py",
        "sched/simulator.py",
    ):
        assert expected in files, f"lint gate does not see {expected}"


def test_lint_walk_covers_batched_core_modules():
    # pin the batched-event DES surface (vectorized core, trace shapes,
    # incremental arbitration, policies carrying the fixpoint flag) so a
    # restructuring cannot silently drop it from the gate
    files = {os.path.relpath(p, SRC) for p in _python_files(SRC)}
    for expected in (
        "sched/simulator.py",
        "sched/trace.py",
        "sched/inter.py",
        "sched/easyscale_policy.py",
        "sched/colocation_policy.py",
        "sched/yarn_cs.py",
        "hw/cluster.py",
        "obs/bench.py",
    ):
        assert expected in files, f"lint gate does not see {expected}"


def test_lint_walk_covers_flight_recorder_modules():
    # pin the always-on flight recorder and the divergence forensics so a
    # restructuring cannot silently drop them from the gate
    files = {os.path.relpath(p, SRC) for p in _python_files(SRC)}
    for expected in (
        "obs/flightrec.py",
        "obs/forensics.py",
    ):
        assert expected in files, f"lint gate does not see {expected}"


def test_lint_walk_covers_membership_package():
    # same pinning for the cluster-membership subsystem
    files = {os.path.relpath(p, SRC) for p in _python_files(SRC)}
    for expected in (
        "membership/__init__.py",
        "membership/plan.py",
        "membership/lifecycle.py",
        "membership/discovery.py",
        "membership/controller.py",
    ):
        assert expected in files, f"lint gate does not see {expected}"


def test_no_pyflakes_errors():
    pyflakes_api = pytest.importorskip(
        "pyflakes.api", reason="pyflakes not installed; compile check still ran"
    )
    from pyflakes.reporter import Reporter

    class _Collector:
        def __init__(self):
            self.messages = []

        def write(self, text):
            if text.strip():
                self.messages.append(text.strip())

    out, err = _Collector(), _Collector()
    reporter = Reporter(out, err)
    total = 0
    for path in sorted(_python_files(SRC)):
        total += pyflakes_api.checkPath(path, reporter=reporter)
    problems = out.messages + err.messages
    assert total == 0, "pyflakes findings:\n" + "\n".join(problems)


def test_lint_gate_runs_under_expected_interpreter():
    # guards against the suite silently running a different tree than src/
    import repro

    module_root = os.path.dirname(os.path.abspath(repro.__file__))
    assert os.path.samefile(module_root, SRC), (
        f"tests import repro from {module_root}, lint checks {SRC}"
    )
    assert sys.version_info >= (3, 8)
