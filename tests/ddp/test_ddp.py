"""DDP baseline: determinism contracts and non-determinism sources."""

import numpy as np
import pytest

from repro.ddp import DDPConfig, DDPTrainer, ddp_heter_config, ddp_homo_config, rank_rng
from repro.models import get_workload
from repro.utils.fingerprint import fingerprint_state_dict

from tests.conftest import sgd_factory


@pytest.fixture(scope="module")
def spec():
    return get_workload("resnet18")


@pytest.fixture(scope="module")
def dataset(spec):
    return spec.build_dataset(256, seed=9)


def train(spec, dataset, config, steps=4):
    trainer = DDPTrainer(spec, dataset, config, sgd_factory())
    trainer.train_steps(steps)
    return trainer


class TestStaticDeterminism:
    def test_same_world_same_bits(self, spec, dataset):
        a = train(spec, dataset, ddp_homo_config(2, seed=5, batch_size=8))
        b = train(spec, dataset, ddp_homo_config(2, seed=5, batch_size=8))
        assert fingerprint_state_dict(a.model.state_dict()) == fingerprint_state_dict(
            b.model.state_dict()
        )

    def test_seed_changes_bits(self, spec, dataset):
        a = train(spec, dataset, ddp_homo_config(2, seed=5, batch_size=8))
        b = train(spec, dataset, ddp_homo_config(2, seed=6, batch_size=8))
        assert fingerprint_state_dict(a.model.state_dict()) != fingerprint_state_dict(
            b.model.state_dict()
        )

    def test_losses_deterministic(self, spec, dataset):
        a = train(spec, dataset, ddp_homo_config(2, seed=5, batch_size=8))
        b = train(spec, dataset, ddp_homo_config(2, seed=5, batch_size=8))
        assert a.loss_history == b.loss_history


class TestElasticNonDeterminism:
    def test_world_size_changes_bits(self, spec, dataset):
        """Fixed DDP with different GPU counts — the motivation problem."""
        a = train(spec, dataset, ddp_homo_config(2, seed=5, batch_size=8), steps=4)
        b = train(spec, dataset, ddp_homo_config(4, seed=5, batch_size=8), steps=2)
        assert fingerprint_state_dict(a.model.state_dict()) != fingerprint_state_dict(
            b.model.state_dict()
        )

    def test_bucket_rebuild_happens_after_first_step(self, spec, dataset):
        trainer = DDPTrainer(
            spec, dataset, ddp_homo_config(2, seed=5, batch_size=8), sgd_factory()
        )
        initial = [list(b) for b in trainer.buckets.buckets]
        trainer.train_steps(1)
        rebuilt = [list(b) for b in trainer.buckets.buckets]
        assert initial != rebuilt  # arrival order != reverse registration
        trainer.train_steps(1)
        assert [list(b) for b in trainer.buckets.buckets] == rebuilt  # only once

    def test_rebuild_disabled(self, spec, dataset):
        config = ddp_homo_config(2, seed=5, batch_size=8, rebuild_buckets=False)
        trainer = DDPTrainer(spec, dataset, config, sgd_factory())
        initial = [list(b) for b in trainer.buckets.buckets]
        trainer.train_steps(2)
        assert [list(b) for b in trainer.buckets.buckets] == initial

    def test_bucket_layout_affects_bits(self, spec, dataset):
        # world >= 3 needed: with 2 ranks every reduction is a single
        # commutative a+b regardless of chunking, so layout cannot matter
        a = train(spec, dataset, ddp_homo_config(3, seed=5, batch_size=8))
        b = train(
            spec, dataset, ddp_homo_config(3, seed=5, batch_size=8, rebuild_buckets=False)
        )
        assert fingerprint_state_dict(a.model.state_dict()) != fingerprint_state_dict(
            b.model.state_dict()
        )


class TestHeterogeneousNonDeterminism:
    def test_dialect_mix_changes_bits_without_d2(self, spec, dataset):
        homo = train(spec, dataset, ddp_homo_config(2, seed=5, batch_size=8))
        mixed = train(
            spec,
            dataset,
            DDPConfig(world_size=2, seed=5, batch_size=8, dialects=("v100", "p100")),
        )
        assert fingerprint_state_dict(homo.model.state_dict()) != fingerprint_state_dict(
            mixed.model.state_dict()
        )

    def test_d2_kernels_make_dialect_mix_irrelevant(self, spec, dataset):
        a = train(spec, dataset, ddp_heter_config(2, ("v100", "v100"), seed=5, batch_size=8))
        b = train(spec, dataset, ddp_heter_config(2, ("v100", "p100"), seed=5, batch_size=8))
        assert fingerprint_state_dict(a.model.state_dict()) == fingerprint_state_dict(
            b.model.state_dict()
        )


class TestConfig:
    def test_dialect_broadcast(self):
        config = DDPConfig(world_size=3, dialects=("t4",))
        assert config.dialects == ("t4", "t4", "t4")

    def test_dialect_count_mismatch(self):
        with pytest.raises(ValueError):
            DDPConfig(world_size=3, dialects=("v100", "p100"))

    def test_world_size_positive(self):
        with pytest.raises(ValueError):
            DDPConfig(world_size=0)

    def test_rank_rng_matches_est_rng(self):
        from repro.core.est import est_rng

        a = rank_rng(42, 3)
        b = est_rng(42, 3)
        assert np.array_equal(a.normal((5,)), b.normal((5,)))
