"""DDP trainer progress cursor: split calls must equal one long call."""

import pytest

from repro.ddp import DDPTrainer, ddp_homo_config
from repro.models import get_workload
from repro.utils.fingerprint import fingerprint_state_dict

from tests.conftest import sgd_factory


@pytest.fixture(scope="module")
def spec():
    return get_workload("resnet18")


@pytest.fixture(scope="module")
def dataset(spec):
    return spec.build_dataset(128, seed=3)


def make(spec, dataset):
    return DDPTrainer(
        spec, dataset, ddp_homo_config(2, seed=5, batch_size=8), sgd_factory()
    )


class TestCursor:
    def test_split_calls_equal_one_call(self, spec, dataset):
        whole = make(spec, dataset)
        whole.train_steps(6)

        split = make(spec, dataset)
        split.train_steps(2)
        split.train_steps(3)
        split.train_steps(1)
        assert fingerprint_state_dict(split.model.state_dict()) == fingerprint_state_dict(
            whole.model.state_dict()
        )

    def test_epoch_property_tracks_steps(self, spec, dataset):
        trainer = make(spec, dataset)
        steps = trainer.steps_per_epoch
        trainer.train_steps(steps)
        assert trainer.epoch == 1

    def test_epoch_crossing_inside_train_steps(self, spec, dataset):
        trainer = make(spec, dataset)
        steps = trainer.steps_per_epoch
        losses = trainer.train_steps(steps + 2)
        assert len(losses) == steps + 2
        assert trainer.epoch == 1

    def test_train_epoch_drift_detected(self, spec, dataset):
        trainer = make(spec, dataset)
        with pytest.raises(ValueError):
            trainer.train_epoch(3)  # trainer is at epoch 0

    def test_train_epoch_requires_boundary(self, spec, dataset):
        trainer = make(spec, dataset)
        trainer.train_steps(1)
        with pytest.raises(ValueError):
            trainer.train_epoch()
