"""Evaluation metrics: accuracy computation, per-class vectors."""

import numpy as np
import pytest

from repro.data.datasets import SyntheticImageDataset
from repro.ddp.metrics import evaluate_classification, evaluate_workload
from repro.models import get_workload
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor
from repro.utils.rng import RNGBundle


class Oracle(Module):
    """Classifier that reads the label back out of the prototype pattern."""

    def __init__(self, dataset):
        super().__init__()
        self.weight = Parameter(np.zeros(1, np.float32))  # modules need a param
        self.prototypes = dataset.prototypes

    def forward(self, x: Tensor) -> Tensor:
        flat = x.data.reshape(x.shape[0], -1)
        protos = self.prototypes.reshape(len(self.prototypes), -1)
        dists = ((flat[:, None, :] - protos[None, :, :]) ** 2).sum(axis=2)
        return Tensor(-dists)


class Constant(Module):
    def __init__(self, num_classes, pick=0):
        super().__init__()
        self.weight = Parameter(np.zeros(1, np.float32))
        self.num_classes = num_classes
        self.pick = pick

    def forward(self, x: Tensor) -> Tensor:
        logits = np.zeros((x.shape[0], self.num_classes), np.float32)
        logits[:, self.pick] = 1.0
        return Tensor(logits)


class TestEvaluateClassification:
    def test_oracle_high_accuracy(self):
        ds = SyntheticImageDataset(100, num_classes=4, noise_scale=0.3, seed=1)
        acc, per_class = evaluate_classification(Oracle(ds), ds, num_classes=4)
        assert acc > 0.8
        assert per_class.shape == (4,)
        assert per_class.mean() > 0.7

    def test_constant_predictor_per_class(self):
        ds = SyntheticImageDataset(40, num_classes=4, seed=1)
        acc, per_class = evaluate_classification(Constant(4, pick=2), ds, num_classes=4)
        assert acc == pytest.approx(0.25)
        assert per_class[2] == 1.0
        assert per_class[0] == per_class[1] == per_class[3] == 0.0

    def test_restores_training_mode(self):
        ds = SyntheticImageDataset(16, num_classes=4)
        model = Constant(4)
        model.train()
        evaluate_classification(model, ds)
        assert model.training

    def test_num_samples_cap(self):
        ds = SyntheticImageDataset(100, num_classes=4)
        acc, _ = evaluate_classification(Constant(4), ds, num_samples=8)
        assert acc in (0.0, 0.25, 1.0) or 0 <= acc <= 1


class TestEvaluateWorkload:
    @pytest.mark.parametrize("name", ["resnet18", "neumf", "yolov3", "bert"])
    def test_untrained_models_in_unit_range(self, name):
        spec = get_workload(name)
        model = spec.build_model(RNGBundle(0))
        ds = spec.build_dataset(64, seed=1)
        score = evaluate_workload(spec, model, ds, num_samples=32)
        assert 0.0 <= score <= 1.0
