"""Kernel registry: dialect divergence, D2 agreement, autotune churn."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import kernels
from repro.tensor.kernels import (
    AGNOSTIC_DIALECT,
    BASELINE_POLICY,
    D0_POLICY,
    D2_POLICY,
    Autotuner,
    KernelPolicy,
    VENDOR_DIALECTS,
)


def _ab(seed=0, m=17, k=33, n=9):
    rng = np.random.default_rng(seed)
    return (
        rng.normal(size=(m, k)).astype(np.float32),
        rng.normal(size=(k, n)).astype(np.float32),
    )


class TestMatmulDialects:
    def test_all_variants_numerically_close(self):
        a, b = _ab()
        ref = (a.astype(np.float64) @ b.astype(np.float64)).astype(np.float32)
        for dialect, fn in kernels.MATMUL_VARIANTS.items():
            np.testing.assert_allclose(fn(a, b), ref, rtol=1e-4, atol=1e-4)

    def test_vendor_dialects_bitwise_differ(self):
        a, b = _ab(1, 31, 67, 13)
        results = {
            d: kernels.matmul(a, b, dialect=d, policy=D0_POLICY).tobytes()
            for d in VENDOR_DIALECTS
        }
        assert len(set(results.values())) >= 2, "dialects unexpectedly agree bitwise"

    def test_d2_pins_one_implementation(self):
        a, b = _ab(2)
        outs = {
            kernels.matmul(a, b, dialect=d, policy=D2_POLICY).tobytes()
            for d in VENDOR_DIALECTS
        }
        assert len(outs) == 1

    def test_d0_deterministic_per_dialect(self):
        a, b = _ab(3)
        x = kernels.matmul(a, b, dialect="t4", policy=D0_POLICY)
        y = kernels.matmul(a, b, dialect="t4", policy=D0_POLICY)
        assert x.tobytes() == y.tobytes()

    def test_unknown_dialect_rejected(self):
        a, b = _ab()
        with pytest.raises(ValueError):
            kernels.matmul(a, b, dialect="a100", policy=D0_POLICY)

    @given(st.integers(1, 8), st.integers(1, 40), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_splitk_matches_reference_shapes(self, m, k, n):
        rng = np.random.default_rng(m * 100 + k * 10 + n)
        a = rng.normal(size=(m, k)).astype(np.float32)
        b = rng.normal(size=(k, n)).astype(np.float32)
        out = kernels.matmul(a, b, dialect="v100", policy=D2_POLICY)
        ref = a.astype(np.float64) @ b.astype(np.float64)
        assert out.shape == (m, n)
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-3)


class TestReduceDialects:
    def test_reduce_variants_close(self):
        x = np.random.default_rng(0).normal(size=(7, 513)).astype(np.float32)
        ref = x.astype(np.float64).sum(axis=1)
        for dialect in list(VENDOR_DIALECTS) + [AGNOSTIC_DIALECT]:
            out = kernels.REDUCE_VARIANTS[dialect](x, 1, False)
            np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-4)

    def test_sequential_reduce_keepdims(self):
        x = np.random.default_rng(1).normal(size=(4, 9)).astype(np.float32)
        out = kernels.reduce_sum(x, axis=0, keepdims=True, dialect="v100", policy=D2_POLICY)
        assert out.shape == (1, 9)

    def test_full_reduce_scalar(self):
        x = np.random.default_rng(2).normal(size=(100,)).astype(np.float32)
        out = kernels.reduce_sum(x, dialect="p100", policy=D0_POLICY)
        assert np.asarray(out).shape == ()
        assert float(out) == pytest.approx(float(x.sum()), rel=1e-4)

    def test_atomic_reduce_nondeterministic_across_calls(self):
        x = np.random.default_rng(3).normal(size=(2048,)).astype(np.float32)
        outs = {
            np.float32(
                kernels.reduce_sum(x, dialect="v100", policy=BASELINE_POLICY)
            ).tobytes()
            for _ in range(8)
        }
        assert len(outs) >= 2, "atomic reduction did not vary with scheduling"


class TestScatterAdd:
    def test_deterministic_scatter_is_stable(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 10, size=500)
        vals = rng.normal(size=(500, 3)).astype(np.float32)
        outs = set()
        for _ in range(4):
            target = np.zeros((10, 3), dtype=np.float32)
            kernels.scatter_add(target, idx, vals, policy=D0_POLICY)
            outs.add(target.tobytes())
        assert len(outs) == 1

    def test_atomic_scatter_varies(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 5, size=2000)
        vals = rng.normal(size=(2000, 2)).astype(np.float32)
        outs = set()
        for _ in range(8):
            target = np.zeros((5, 2), dtype=np.float32)
            kernels.scatter_add(target, idx, vals, policy=BASELINE_POLICY)
            outs.add(target.tobytes())
        assert len(outs) >= 2

    def test_scatter_values_correct(self):
        target = np.zeros(4, dtype=np.float32)
        kernels.scatter_add_deterministic(
            target, np.array([0, 0, 3]), np.float32([1.0, 2.0, 5.0])
        )
        np.testing.assert_allclose(target, [3.0, 0.0, 0.0, 5.0])

    def test_empty_scatter_noop(self):
        target = np.ones(3, dtype=np.float32)
        kernels.scatter_add_atomic(target, np.array([], dtype=np.int64), np.float32([]))
        np.testing.assert_array_equal(target, np.ones(3, np.float32))


class TestAutotuner:
    def test_warmup_cycles_candidates(self):
        tuner = Autotuner(warmup=3)
        picks = [tuner.choose("matmul", (4, 4), ["a", "b", "c"]) for _ in range(3)]
        assert picks == ["a", "b", "c"]

    def test_locks_after_warmup(self):
        tuner = Autotuner(warmup=2)
        for _ in range(2):
            tuner.choose("matmul", (8, 8), ["a", "b"])
        locked = {tuner.choose("matmul", (8, 8), ["a", "b"]) for _ in range(5)}
        assert len(locked) == 1

    def test_reset_restarts_profiling(self):
        tuner = Autotuner(warmup=2)
        first = [tuner.choose("op", (1,), ["a", "b"]) for _ in range(4)]
        tuner.reset()
        second = [tuner.choose("op", (1,), ["a", "b"]) for _ in range(4)]
        assert first == second  # deterministic within a process lifetime

    def test_per_shape_state(self):
        tuner = Autotuner(warmup=1)
        tuner.choose("op", (1,), ["a", "b"])
        # a different shape is still in warmup
        assert tuner.choose("op", (2,), ["a", "b"]) == "a"


class TestKernelPolicy:
    def test_effective_dialect(self):
        assert D0_POLICY.effective_dialect("p100") == "p100"
        assert D2_POLICY.effective_dialect("p100") == AGNOSTIC_DIALECT

    def test_bad_dialect_raises(self):
        with pytest.raises(ValueError):
            D0_POLICY.effective_dialect("unknown")

    def test_presets(self):
        assert BASELINE_POLICY.disable_autotune is False
        assert D0_POLICY.deterministic_algorithms is True
        assert D2_POLICY.hardware_agnostic is True
