"""User-registered D2 kernels (the paper's Cutlass future-work hook)."""

import numpy as np
import pytest

from repro.tensor import kernels
from repro.tensor.kernels import (
    KernelPolicy,
    register_matmul_variant,
    unregister_matmul_variant,
)


def f64_kernel(a, b):
    return (a.astype(np.float64) @ b.astype(np.float64)).astype(np.float32)


@pytest.fixture
def registered():
    register_matmul_variant("test-kernel", f64_kernel)
    yield "test-kernel"
    unregister_matmul_variant("test-kernel")


class TestRegistration:
    def test_register_and_dispatch(self, registered):
        policy = KernelPolicy(hardware_agnostic=True, custom_kernel=registered)
        a = np.random.default_rng(1).normal(size=(5, 9)).astype(np.float32)
        b = np.random.default_rng(2).normal(size=(9, 3)).astype(np.float32)
        out = kernels.matmul(a, b, dialect="p100", policy=policy)
        np.testing.assert_array_equal(out, f64_kernel(a, b))

    def test_cross_device_bitwise(self, registered):
        policy = KernelPolicy(hardware_agnostic=True, custom_kernel=registered)
        a = np.random.default_rng(1).normal(size=(7, 21)).astype(np.float32)
        b = np.random.default_rng(2).normal(size=(21, 4)).astype(np.float32)
        outs = {
            kernels.matmul(a, b, dialect=d, policy=policy).tobytes()
            for d in ("v100", "p100", "t4")
        }
        assert len(outs) == 1

    def test_reductions_fall_back_to_agnostic(self, registered):
        policy = KernelPolicy(hardware_agnostic=True, custom_kernel=registered)
        x = np.random.default_rng(0).normal(size=(4, 100)).astype(np.float32)
        out = kernels.reduce_sum(x, axis=1, dialect="v100", policy=policy)
        ref = kernels.reduce_sum(
            x, axis=1, dialect="v100",
            policy=KernelPolicy(hardware_agnostic=True),
        )
        assert np.asarray(out).tobytes() == np.asarray(ref).tobytes()

    def test_unregistered_name_rejected_at_dispatch(self):
        policy = KernelPolicy(hardware_agnostic=True, custom_kernel="ghost")
        with pytest.raises(KeyError):
            kernels.matmul(
                np.zeros((2, 2), np.float32), np.zeros((2, 2), np.float32),
                dialect="v100", policy=policy,
            )

    def test_builtin_names_protected(self):
        with pytest.raises(ValueError):
            register_matmul_variant("v100", f64_kernel)
        with pytest.raises(ValueError):
            unregister_matmul_variant("agnostic")

    def test_validation_rejects_wrong_math(self):
        with pytest.raises(ValueError):
            register_matmul_variant("broken", lambda a, b: np.zeros((13, 11), np.float32))

    def test_validation_rejects_nondeterministic_kernel(self):
        state = {"n": 0}

        def flaky(a, b):
            state["n"] += 1
            out = f64_kernel(a, b)
            if state["n"] % 2 == 0:
                out = out + np.float32(1e-7)
            return out

        with pytest.raises(ValueError):
            register_matmul_variant("flaky", flaky)

    def test_unregister_idempotent(self):
        unregister_matmul_variant("never-registered")  # no error


class TestEndToEndWithCustomKernel:
    def test_training_bitwise_across_devices(self, registered):
        """A whole training step under the custom D2 kernel is device-
        independent — the guarantee the registration API promises."""
        from repro.models import get_workload
        from repro.nn import use_rng
        from repro.tensor.context import execution_context
        from repro.utils.rng import RNGBundle

        spec = get_workload("resnet18")
        policy = KernelPolicy(hardware_agnostic=True, custom_kernel=registered)
        ds = spec.build_dataset(16, seed=1)
        xs, ys = zip(*[ds[i] for i in range(4)])
        x, y = np.stack(xs), np.asarray(ys)

        grads = {}
        for dialect in ("v100", "t4"):
            model = spec.build_model(RNGBundle(3))
            with execution_context(dialect, policy), use_rng(RNGBundle(4)):
                loss = spec.forward_loss(model, x, y)
                loss.backward()
            grads[dialect] = np.concatenate(
                [p.grad.reshape(-1) for p in model.parameters()]
            )
        assert grads["v100"].tobytes() == grads["t4"].tobytes()
