"""Execution context stack semantics."""

import pytest

from repro.tensor import D0_POLICY, D2_POLICY, current_context, execution_context
from repro.tensor.context import ExecContext


class TestExecutionContext:
    def test_default_context(self):
        ctx = current_context()
        assert ctx.dialect == "v100"
        assert ctx.policy == D0_POLICY

    def test_scoped_override(self):
        with execution_context("p100", D2_POLICY):
            assert current_context().dialect == "p100"
            assert current_context().policy == D2_POLICY
        assert current_context().dialect == "v100"

    def test_nesting(self):
        with execution_context("p100"):
            with execution_context("t4"):
                assert current_context().dialect == "t4"
            assert current_context().dialect == "p100"

    def test_invalid_dialect_rejected(self):
        with pytest.raises(ValueError):
            ExecContext(dialect="h100")

    def test_exception_unwinds_stack(self):
        try:
            with execution_context("t4"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_context().dialect == "v100"
