"""Remaining Tensor surface: constructors, misc ops, repr, edge cases."""

import numpy as np
import pytest

from repro.tensor import Tensor, grad_enabled, no_grad

from tests.tensor.test_autograd import check_grad, _rand


class TestConstructors:
    def test_zeros_ones(self):
        z = Tensor.zeros(2, 3, requires_grad=True)
        o = Tensor.ones(4)
        assert z.shape == (2, 3) and z.requires_grad
        np.testing.assert_array_equal(o.data, np.ones(4, np.float32))

    def test_from_list(self):
        t = Tensor([[1, 2], [3, 4]])
        assert t.shape == (2, 2) and t.data.dtype == np.float32

    def test_item_scalar(self):
        assert Tensor(np.float32([3.5])).item() == pytest.approx(3.5)

    def test_numpy_view(self):
        t = Tensor(np.arange(3, dtype=np.float32))
        assert np.shares_memory(t.numpy(), t.data)

    def test_repr(self):
        assert "requires_grad=True" in repr(Tensor(np.zeros(2), requires_grad=True))
        assert "requires_grad" not in repr(Tensor(np.zeros(2)))

    def test_size_and_ndim(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.size == 24 and t.ndim == 3


class TestMiscOps:
    def test_sqrt(self):
        t = Tensor(np.float32([4.0, 9.0]), requires_grad=True)
        out = t.sqrt()
        np.testing.assert_allclose(out.data, [2.0, 3.0], rtol=1e-6)
        check_grad(lambda: t.sqrt().sum(), [t])

    def test_global_max(self):
        t = Tensor(_rand((3, 4), 1), requires_grad=True)
        out = t.max()
        assert out.item() == pytest.approx(float(t.data.max()))
        out2 = t.max()
        out2.backward()
        assert t.grad.sum() == pytest.approx(1.0)

    def test_max_ties_split_gradient(self):
        t = Tensor(np.float32([2.0, 2.0, 1.0]), requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.5, 0.5, 0.0])

    def test_T_property(self):
        t = Tensor(_rand((2, 5), 1))
        assert t.T.shape == (5, 2)

    def test_rsub_rdiv(self):
        t = Tensor(np.float32([2.0]), requires_grad=True)
        check_grad(lambda: (3.0 - t).sum(), [t])
        check_grad(lambda: (6.0 / t).sum(), [t])

    def test_pow_nonscalar_rejected(self):
        t = Tensor(np.ones(2))
        with pytest.raises(TypeError):
            t ** Tensor(np.ones(2))


class TestGradMode:
    def test_grad_enabled_flag(self):
        assert grad_enabled()
        with no_grad():
            assert not grad_enabled()
        assert grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                pass
            assert not grad_enabled()

    def test_no_grad_output_has_no_parents(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = (a * 2 + 1).sum()
        assert out._prev == ()
        assert out._backward is None
