"""Autograd engine: gradients checked against central differences."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad
from repro.tensor.tensor import leaf_grad_hook

from tests.conftest import numeric_grad


def _rand(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape).astype(np.float32)


def check_grad(build_loss, tensors, rtol=3e-2, atol=3e-3, probes=4):
    """Compare autograd grads against numeric derivatives on a few entries."""
    for t in tensors:
        t.grad = None
    loss = build_loss()
    loss.backward()
    rng = np.random.default_rng(123)
    for t in tensors:
        assert t.grad is not None, "missing gradient"
        flat = t.data.reshape(-1)
        grad_flat = t.grad.reshape(-1)
        for _ in range(min(probes, flat.size)):
            i = int(rng.integers(0, flat.size))
            num = numeric_grad(lambda: build_loss().item(), flat, i)
            assert grad_flat[i] == pytest.approx(num, rel=rtol, abs=atol), (
                f"grad mismatch at {i}: autograd={grad_flat[i]}, numeric={num}"
            )


class TestElementwiseGrads:
    def test_add_mul(self):
        a = Tensor(_rand((3, 4), 1), requires_grad=True)
        b = Tensor(_rand((3, 4), 2), requires_grad=True)
        check_grad(lambda: ((a + b) * a).sum(), [a, b])

    def test_broadcast_add(self):
        a = Tensor(_rand((3, 4), 1), requires_grad=True)
        b = Tensor(_rand((4,), 2), requires_grad=True)
        check_grad(lambda: (a + b).sum(), [a, b])

    def test_div(self):
        a = Tensor(_rand((5,), 1), requires_grad=True)
        b = Tensor(np.abs(_rand((5,), 2)) + 1.0, requires_grad=True)
        check_grad(lambda: (a / b).sum(), [a, b])

    def test_pow(self):
        a = Tensor(np.abs(_rand((6,), 1)) + 0.5, requires_grad=True)
        check_grad(lambda: (a**3.0).sum(), [a])

    def test_scalar_ops(self):
        a = Tensor(_rand((4,), 1), requires_grad=True)
        check_grad(lambda: (2.0 * a - 1.0).sum(), [a])
        check_grad(lambda: (1.0 / (a + 10.0)).sum(), [a])

    @pytest.mark.parametrize("op", ["relu", "exp", "tanh", "sigmoid"])
    def test_unary(self, op):
        base = _rand((8,), 3)
        base[np.abs(base) < 0.05] = 0.3  # keep away from relu kink
        a = Tensor(base, requires_grad=True)
        check_grad(lambda: getattr(a, op)().sum(), [a])

    def test_log(self):
        a = Tensor(np.abs(_rand((6,), 4)) + 0.5, requires_grad=True)
        check_grad(lambda: a.log().sum(), [a])


class TestMatmulGrads:
    def test_matmul_2d(self):
        a = Tensor(_rand((3, 4), 1), requires_grad=True)
        b = Tensor(_rand((4, 2), 2), requires_grad=True)
        check_grad(lambda: a.matmul(b).sum(), [a, b])

    def test_matmul_batched(self):
        a = Tensor(_rand((2, 3, 4), 1), requires_grad=True)
        b = Tensor(_rand((2, 4, 5), 2), requires_grad=True)
        check_grad(lambda: (a @ b).sum(), [a, b])

    def test_matmul_broadcast(self):
        a = Tensor(_rand((3, 4), 1), requires_grad=True)
        b = Tensor(_rand((2, 4, 5), 2), requires_grad=True)
        check_grad(lambda: (a @ b).sum(), [a, b])


class TestReductionGrads:
    def test_sum_axis(self):
        a = Tensor(_rand((3, 5), 1), requires_grad=True)
        check_grad(lambda: (a.sum(axis=1) ** 2.0).sum(), [a])

    def test_mean(self):
        a = Tensor(_rand((4, 4), 1), requires_grad=True)
        check_grad(lambda: (a.mean(axis=0) ** 2.0).sum(), [a])

    def test_max(self):
        a = Tensor(_rand((4, 5), 1), requires_grad=True)
        check_grad(lambda: a.max(axis=1).sum(), [a])

    def test_sum_keepdims(self):
        a = Tensor(_rand((3, 4), 2), requires_grad=True)
        check_grad(lambda: (a.sum(axis=0, keepdims=True) * a).sum(), [a])


class TestShapeGrads:
    def test_reshape(self):
        a = Tensor(_rand((2, 6), 1), requires_grad=True)
        check_grad(lambda: (a.reshape(3, 4) ** 2.0).sum(), [a])

    def test_transpose(self):
        a = Tensor(_rand((2, 3, 4), 1), requires_grad=True)
        check_grad(lambda: (a.transpose(2, 0, 1) ** 2.0).sum(), [a])

    def test_getitem(self):
        a = Tensor(_rand((5, 4), 1), requires_grad=True)
        check_grad(lambda: (a[1:4] ** 2.0).sum(), [a])


class TestEngineBehavior:
    def test_grad_accumulates_over_multiple_uses(self):
        a = Tensor(np.float32([2.0]), requires_grad=True)
        loss = (a * a + a).sum()  # d/da = 2a + 1 = 5
        loss.backward()
        assert a.grad[0] == pytest.approx(5.0)

    def test_backward_requires_scalar(self):
        a = Tensor(_rand((3,)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_no_grad_tensor_raises(self):
        a = Tensor(_rand((3,)))
        with pytest.raises(RuntimeError):
            a.sum().backward()

    def test_no_grad_blocks_graph(self):
        a = Tensor(_rand((3,)), requires_grad=True)
        with no_grad():
            out = (a * 2).sum()
        assert not out.requires_grad
        assert out._backward is None

    def test_detach(self):
        a = Tensor(_rand((3,)), requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        assert np.shares_memory(d.data, a.data)

    def test_diamond_graph_single_visit(self):
        a = Tensor(np.float32([3.0]), requires_grad=True)
        b = a * 2
        loss = (b + b).sum()  # d/da = 4
        loss.backward()
        assert a.grad[0] == pytest.approx(4.0)

    def test_leaf_grad_hook_order(self):
        a = Tensor(np.float32([1.0]), requires_grad=True, name="a")
        b = Tensor(np.float32([1.0]), requires_grad=True, name="b")
        seen = []
        with leaf_grad_hook(lambda t: seen.append(t.name)):
            ((a * 2) + (b * 3)).sum().backward()
        assert set(seen) == {"a", "b"}

    def test_hook_not_called_outside_scope(self):
        a = Tensor(np.float32([1.0]), requires_grad=True)
        seen = []
        with leaf_grad_hook(lambda t: seen.append(1)):
            pass
        (a * 2).sum().backward()
        assert seen == []

    def test_float32_everywhere(self):
        a = Tensor(np.arange(4, dtype=np.float64), requires_grad=True)
        assert a.data.dtype == np.float32
        loss = (a * 2).sum()
        loss.backward()
        assert a.grad.dtype == np.float32
