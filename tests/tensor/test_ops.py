"""Higher-level ops: conv/pool/softmax/embedding gradients and semantics."""

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.tensor import ops
from repro.utils.rng import RNGBundle

from tests.tensor.test_autograd import check_grad, _rand


class TestSoftmax:
    def test_log_softmax_matches_reference(self):
        x = Tensor(_rand((4, 7), 1))
        out = ops.log_softmax(x).data
        ref = x.data - x.data.max(axis=1, keepdims=True)
        ref = ref - np.log(np.exp(ref).sum(axis=1, keepdims=True))
        np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-6)

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(_rand((5, 9), 2) * 10)
        out = ops.softmax(x).data
        np.testing.assert_allclose(out.sum(axis=1), np.ones(5), rtol=1e-4)

    def test_log_softmax_stable_for_large_logits(self):
        x = Tensor(np.float32([[1000.0, 0.0], [0.0, -1000.0]]))
        out = ops.log_softmax(x).data
        assert np.isfinite(out).all()

    def test_log_softmax_grad(self):
        x = Tensor(_rand((3, 5), 3), requires_grad=True)
        check_grad(lambda: (ops.log_softmax(x) ** 2.0).sum(), [x])

    def test_gather_rows(self):
        x = Tensor(_rand((4, 6), 1), requires_grad=True)
        idx = np.array([0, 2, 5, 1])
        out = ops.gather_rows(x, idx)
        np.testing.assert_array_equal(out.data, x.data[np.arange(4), idx])
        check_grad(lambda: (ops.gather_rows(x, idx) ** 2.0).sum(), [x])


class TestShapeOps:
    def test_concat_values_and_grads(self):
        a = Tensor(_rand((2, 3), 1), requires_grad=True)
        b = Tensor(_rand((2, 5), 2), requires_grad=True)
        out = ops.concat([a, b], axis=1)
        assert out.shape == (2, 8)
        check_grad(lambda: (ops.concat([a, b], axis=1) ** 2.0).sum(), [a, b])

    def test_stack(self):
        a = Tensor(_rand((3,), 1), requires_grad=True)
        b = Tensor(_rand((3,), 2), requires_grad=True)
        out = ops.stack([a, b], axis=0)
        assert out.shape == (2, 3)

    def test_chunk_round_trip(self):
        x = Tensor(_rand((2, 6, 3), 1), requires_grad=True)
        parts = ops.chunk(x, 3, axis=1)
        assert all(p.shape == (2, 2, 3) for p in parts)
        rebuilt = ops.concat(list(parts), axis=1)
        np.testing.assert_array_equal(rebuilt.data, x.data)

    def test_chunk_indivisible_raises(self):
        with pytest.raises(ValueError):
            ops.chunk(Tensor(_rand((2, 5))), 2, axis=1)

    def test_pad2d(self):
        x = Tensor(_rand((1, 2, 3, 3), 1), requires_grad=True)
        out = ops.pad2d(x, 2)
        assert out.shape == (1, 2, 7, 7)
        check_grad(lambda: (ops.pad2d(x, 2) ** 2.0).sum(), [x])

    def test_flatten(self):
        x = Tensor(_rand((2, 3, 4), 1))
        assert ops.flatten(x).shape == (2, 12)

    def test_sum_over_multiple_axes(self):
        x = Tensor(_rand((2, 3, 4), 1), requires_grad=True)
        out = ops.sum_over(x, (0, 2))
        np.testing.assert_allclose(out.data, x.data.sum(axis=(0, 2)), rtol=1e-5)
        check_grad(lambda: (ops.sum_over(x, (0, 2)) ** 2.0).sum(), [x])

    def test_mean_over(self):
        x = Tensor(_rand((2, 3, 4, 5), 1))
        out = ops.mean_over(x, (2, 3))
        np.testing.assert_allclose(out.data, x.data.mean(axis=(2, 3)), rtol=1e-5)


class TestConv2d:
    def test_matches_direct_convolution(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        out = ops.conv2d(Tensor(x), Tensor(w), stride=1, padding=1).data
        # reference: naive loops
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref = np.zeros((2, 4, 6, 6), dtype=np.float64)
        for n in range(2):
            for o in range(4):
                for i in range(6):
                    for j in range(6):
                        ref[n, o, i, j] = np.sum(
                            xp[n, :, i : i + 3, j : j + 3].astype(np.float64) * w[o].astype(np.float64)
                        )
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-4)

    def test_stride_and_geometry(self):
        x = Tensor(_rand((1, 2, 8, 8), 1))
        w = Tensor(_rand((3, 2, 3, 3), 2))
        out = ops.conv2d(x, w, stride=2, padding=1)
        assert out.shape == (1, 3, 4, 4)

    def test_empty_output_raises(self):
        x = Tensor(_rand((1, 1, 2, 2), 1))
        w = Tensor(_rand((1, 1, 5, 5), 2))
        with pytest.raises(ValueError):
            ops.conv2d(x, w)

    def test_grads(self):
        x = Tensor(_rand((1, 2, 5, 5), 1), requires_grad=True)
        w = Tensor(_rand((3, 2, 3, 3), 2), requires_grad=True)
        b = Tensor(_rand((3,), 3), requires_grad=True)
        check_grad(
            lambda: (ops.conv2d(x, w, b, stride=1, padding=1) ** 2.0).sum(), [x, w, b]
        )

    def test_grouped_matches_manual_split(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 4, 5, 5)).astype(np.float32)
        w = rng.normal(size=(6, 2, 3, 3)).astype(np.float32)
        grouped = ops.conv2d(Tensor(x), Tensor(w), groups=2, padding=1).data
        top = ops.conv2d(Tensor(x[:, :2]), Tensor(w[:3]), padding=1).data
        bottom = ops.conv2d(Tensor(x[:, 2:]), Tensor(w[3:]), padding=1).data
        np.testing.assert_allclose(grouped, np.concatenate([top, bottom], axis=1), rtol=1e-5)

    def test_depthwise_grads(self):
        x = Tensor(_rand((1, 4, 5, 5), 1), requires_grad=True)
        w = Tensor(_rand((4, 1, 3, 3), 2), requires_grad=True)
        check_grad(lambda: (ops.conv2d(x, w, groups=4, padding=1) ** 2.0).sum(), [x, w])

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            ops.conv2d(Tensor(_rand((1, 3, 5, 5))), Tensor(_rand((2, 4, 3, 3))))


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = ops.max_pool2d(Tensor(x), 2).data
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_overlapping(self):
        x = Tensor(_rand((1, 2, 6, 6), 1))
        out = ops.max_pool2d(x, 3, stride=2, padding=1)
        assert out.shape == (1, 2, 3, 3)

    def test_max_pool_grad_routes_to_argmax(self):
        x = np.zeros((1, 1, 2, 2), dtype=np.float32)
        x[0, 0, 1, 1] = 5.0
        t = Tensor(x, requires_grad=True)
        ops.max_pool2d(t, 2).sum().backward()
        expected = np.zeros_like(x)
        expected[0, 0, 1, 1] = 1.0
        np.testing.assert_array_equal(t.grad, expected)

    def test_max_pool_grad_numeric(self):
        base = _rand((1, 2, 4, 4), 5)
        t = Tensor(base, requires_grad=True)
        check_grad(lambda: (ops.max_pool2d(t, 2) ** 2.0).sum(), [t])

    def test_avg_pool(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = ops.avg_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_global_avg_pool(self):
        x = Tensor(_rand((2, 3, 4, 4), 1))
        out = ops.global_avg_pool(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, x.data.mean(axis=(2, 3)), rtol=1e-5)


class TestEmbeddingDropout:
    def test_embedding_lookup(self):
        w = Tensor(_rand((10, 4), 1), requires_grad=True)
        idx = np.array([[1, 2], [2, 9]])
        out = ops.embedding(w, idx)
        assert out.shape == (2, 2, 4)
        np.testing.assert_array_equal(out.data, w.data[idx])

    def test_embedding_grad_accumulates_repeats(self):
        w = Tensor(np.zeros((5, 2), np.float32), requires_grad=True)
        idx = np.array([1, 1, 3])
        ops.embedding(w, idx).sum().backward()
        assert w.grad[1, 0] == pytest.approx(2.0)
        assert w.grad[3, 0] == pytest.approx(1.0)
        assert w.grad[0, 0] == 0.0

    def test_dropout_deterministic_given_rng_state(self):
        x = Tensor(np.ones((4, 8), np.float32))
        r1 = RNGBundle(3)
        r2 = RNGBundle(3)
        np.testing.assert_array_equal(
            ops.dropout(x, 0.5, r1).data, ops.dropout(x, 0.5, r2).data
        )

    def test_dropout_eval_is_identity(self):
        x = Tensor(np.ones((4,), np.float32))
        out = ops.dropout(x, 0.5, RNGBundle(0), training=False)
        assert out is x

    def test_dropout_inverted_scaling(self):
        x = Tensor(np.ones((20000,), np.float32))
        out = ops.dropout(x, 0.25, RNGBundle(1)).data
        assert out.mean() == pytest.approx(1.0, rel=0.05)
        assert set(np.unique(out)) <= {np.float32(0.0), np.float32(1.0 / 0.75)}

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            ops.dropout(Tensor(np.ones(3)), 1.0, RNGBundle(0))
