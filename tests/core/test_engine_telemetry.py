"""Engine telemetry: step records, scale events, file mirroring."""

import pytest

from repro.core import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
from repro.hw import V100
from repro.models import get_workload
from repro.utils.telemetry import RunLog

from tests.conftest import sgd_factory


@pytest.fixture(scope="module")
def spec():
    return get_workload("resnet18")


@pytest.fixture(scope="module")
def dataset(spec):
    return spec.build_dataset(64, seed=1)


def make_engine(spec, dataset, log):
    config = EasyScaleJobConfig(num_ests=2, seed=1, batch_size=4)
    return EasyScaleEngine(
        spec,
        dataset,
        config,
        sgd_factory(),
        WorkerAssignment.balanced([V100] * 2, 2),
        telemetry=log,
    )


class TestEngineTelemetry:
    def test_step_records(self, spec, dataset):
        log = RunLog()
        engine = make_engine(spec, dataset, log)
        engine.train_steps(3)
        steps = log.of_kind("step")
        assert [r.step for r in steps] == [0, 1, 2]
        assert all(len(r.data["losses"]) == 2 for r in steps)
        assert all("sim_time" in r.data for r in steps)

    def test_scale_events_logged_across_reconfigure(self, spec, dataset):
        log = RunLog()
        engine = make_engine(spec, dataset, log)
        engine.train_steps(2)
        engine = engine.reconfigure(WorkerAssignment.balanced([V100], 2))
        engine.train_steps(1)
        events = log.of_kind("scale_event")
        assert len(events) == 2  # initial build + reconfigure
        assert events[0].data["gpus"] == ["V100", "V100"]
        assert events[1].data["gpus"] == ["V100"]
        assert events[1].step == 2

    def test_telemetry_survives_reconfigure(self, spec, dataset):
        log = RunLog()
        engine = make_engine(spec, dataset, log)
        engine.train_steps(1)
        resumed = engine.reconfigure(WorkerAssignment.balanced([V100], 2))
        assert resumed.telemetry is log

    def test_file_mirroring(self, spec, dataset, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path) as log:
            engine = make_engine(spec, dataset, log)
            engine.train_steps(2)
        loaded = RunLog.load(path)
        assert len(loaded.of_kind("step")) == 2
        assert len(loaded.loss_series()) == 2

    def test_no_telemetry_is_fine(self, spec, dataset):
        config = EasyScaleJobConfig(num_ests=2, seed=1, batch_size=4)
        engine = EasyScaleEngine(
            spec, dataset, config, sgd_factory(), WorkerAssignment.balanced([V100] * 2, 2)
        )
        engine.train_steps(1)  # no error without a sink
