"""EasyScaleWorker: time-sliced execution, staging, memory validation."""

import numpy as np
import pytest

from repro.core.est import EasyScaleThread
from repro.core.worker import EasyScaleWorker
from repro.data.dataloader import SharedDataLoader
from repro.hw import P100, V100
from repro.hw.memory import OutOfMemoryError
from repro.models import get_workload
from repro.tensor.kernels import D0_POLICY
from repro.utils.rng import RNGBundle, derive_seed


@pytest.fixture(scope="module")
def spec():
    return get_workload("resnet18")


@pytest.fixture()
def setup(spec):
    model = spec.build_model(RNGBundle(derive_seed(5, "model")))
    dataset = spec.build_dataset(128, seed=3)
    loader = SharedDataLoader(dataset, num_replicas=4, batch_size=8, seed=5)
    ests = [EasyScaleThread(5, v) for v in range(4)]
    return model, loader, ests


class TestRunGlobalStep:
    def test_one_result_per_local_est(self, spec, setup):
        model, loader, ests = setup
        worker = EasyScaleWorker(0, V100, ests[:3], spec, D0_POLICY, validate_memory=False)
        results = worker.run_global_step(
            model,
            load_batch=lambda v: loader.load(v, 0, 0),
            named_params=dict(model.named_parameters()),
        )
        assert [r.vrank for r in results] == [0, 1, 2]
        assert all(np.isfinite(r.loss) for r in results)

    def test_gradients_staged_per_est(self, spec, setup):
        model, loader, ests = setup
        worker = EasyScaleWorker(0, V100, ests[:2], spec, D0_POLICY, validate_memory=False)
        results = worker.run_global_step(
            model,
            load_batch=lambda v: loader.load(v, 0, 0),
            named_params=dict(model.named_parameters()),
        )
        # staged on the EST objects, cleared from the model
        assert ests[0].staged_grads is not None
        assert all(p.grad is None for p in model.parameters())
        # different data -> different gradients
        name = next(iter(results[0].grads))
        assert results[0].grads[name].tobytes() != results[1].grads[name].tobytes()

    def test_copy_overlap_accounting(self, spec, setup):
        model, loader, ests = setup
        worker = EasyScaleWorker(0, V100, ests, spec, D0_POLICY, validate_memory=False)
        results = worker.run_global_step(
            model,
            load_batch=lambda v: loader.load(v, 0, 0),
            named_params=dict(model.named_parameters()),
        )
        # ESTs 0..n-2 expose their staging cost; the last one hides under sync
        assert all(r.exposed_copy_time > 0 for r in results[:-1])
        assert results[-1].exposed_copy_time == 0.0

    def test_arrival_capture_only_for_vrank0(self, spec, setup):
        model, loader, ests = setup
        worker = EasyScaleWorker(0, V100, ests[:2], spec, D0_POLICY, validate_memory=False)
        named = dict(model.named_parameters())
        arrival = []
        worker.run_global_step(
            model,
            load_batch=lambda v: loader.load(v, 0, 0),
            named_params=named,
            arrival_sink=arrival,
            param_names_by_id={id(p): n for n, p in named.items()},
        )
        assert sorted(arrival) == sorted(named)


class TestConstruction:
    def test_requires_ests(self, spec):
        with pytest.raises(ValueError):
            EasyScaleWorker(0, V100, [], spec, D0_POLICY)

    def test_memory_validation(self):
        spec = get_workload("shufflenetv2")  # bs 512 -> ~15 GB/worker
        ests = [EasyScaleThread(0, v) for v in range(60)]
        with pytest.raises(OutOfMemoryError):
            EasyScaleWorker(0, P100, ests, spec, D0_POLICY, validate_memory=True)

    def test_step_time_grows_with_ests(self, spec):
        few = EasyScaleWorker(
            0, V100, [EasyScaleThread(0, 0)], spec, D0_POLICY, validate_memory=False
        )
        many = EasyScaleWorker(
            0,
            V100,
            [EasyScaleThread(0, v) for v in range(4)],
            spec,
            D0_POLICY,
            validate_memory=False,
        )
        assert many.step_time() > 3 * few.step_time()
