"""Determinism levels and the D2-eligibility model scan."""

import pytest

from repro.core.determinism import (
    DeterminismConfig,
    allowed_gpu_heterogeneity,
    determinism_from_label,
    scan_model,
)
from repro.models import get_workload
from repro.tensor.kernels import BASELINE_POLICY, D0_POLICY, D2_POLICY
from repro.utils.rng import RNGBundle


class TestLabels:
    @pytest.mark.parametrize(
        "label,static,elastic,heter",
        [
            ("D0", True, False, False),
            ("D1", True, True, False),
            ("D0+D2", True, False, True),
            ("D1+D2", True, True, True),
            ("baseline", False, False, False),
        ],
    )
    def test_parse(self, label, static, elastic, heter):
        config = determinism_from_label(label)
        assert (config.static, config.elastic, config.heterogeneous) == (
            static,
            elastic,
            heter,
        )
        assert config.label.lower() == label.lower()

    def test_unknown_label(self):
        with pytest.raises(KeyError):
            determinism_from_label("D3")

    def test_d1_requires_d0(self):
        with pytest.raises(ValueError):
            DeterminismConfig(static=False, elastic=True)


class TestPolicies:
    def test_kernel_policy_mapping(self):
        assert determinism_from_label("D0").kernel_policy == D0_POLICY
        assert determinism_from_label("D1").kernel_policy == D0_POLICY
        assert determinism_from_label("D1+D2").kernel_policy == D2_POLICY
        assert determinism_from_label("baseline").kernel_policy == BASELINE_POLICY

    def test_bucket_recording_is_d1(self):
        assert determinism_from_label("D1").record_bucket_mapping
        assert not determinism_from_label("D0").record_bucket_mapping
        assert not determinism_from_label("D0+D2").record_bucket_mapping


class TestScan:
    def test_conv_models_flagged(self):
        for name in ("resnet50", "vgg19", "shufflenetv2", "yolov3"):
            model = get_workload(name).build_model(RNGBundle(0))
            report = scan_model(model)
            assert report.relies_on_vendor_kernels
            assert not report.d2_recommended
            assert len(report.vendor_kernel_modules) > 0

    def test_gemm_models_pass(self):
        for name in ("neumf", "bert", "electra"):
            model = get_workload(name).build_model(RNGBundle(0))
            assert scan_model(model).d2_recommended

    def test_swin_has_patch_conv(self):
        # Swin's patch embedding is a conv: the scan is structural, so it
        # flags it even though the paper groups Swin with the cheap models
        model = get_workload("swintransformer").build_model(RNGBundle(0))
        report = scan_model(model)
        assert report.vendor_kernel_modules == ["patch_embed"]

    def test_heterogeneity_gate(self):
        model = get_workload("bert").build_model(RNGBundle(0))
        assert allowed_gpu_heterogeneity(model, determinism_from_label("D1+D2"))
        assert not allowed_gpu_heterogeneity(model, determinism_from_label("D1"))
