"""EasyScaleThread: context capture, restore, relocation."""

import numpy as np
import pytest

from repro.core.est import EasyScaleThread, ESTContext, est_rng


class TestESTRng:
    def test_stream_depends_only_on_seed_and_vrank(self):
        a = EasyScaleThread(7, 2)
        b = EasyScaleThread(7, 2)
        assert np.array_equal(a.rng.normal((5,)), b.rng.normal((5,)))

    def test_vranks_decorrelated(self):
        a = EasyScaleThread(7, 0)
        b = EasyScaleThread(7, 1)
        assert not np.array_equal(a.rng.normal((5,)), b.rng.normal((5,)))

    def test_negative_vrank_rejected(self):
        with pytest.raises(ValueError):
            EasyScaleThread(7, -1)


class TestContextSwitching:
    def test_save_restore_resumes_stream(self):
        est = EasyScaleThread(7, 1)
        est.rng.normal((3,))  # advance
        ctx = est.save_context()
        expected = est.rng.normal((4,))
        est.load_context(ctx)
        np.testing.assert_array_equal(est.rng.normal((4,)), expected)

    def test_relocation_to_new_worker(self):
        """An EST checkpointed on one worker resumes identically elsewhere."""
        original = EasyScaleThread(7, 3)
        original.rng.normal((10,))
        ctx = original.save_context()
        expected = original.rng.normal((6,))

        relocated = EasyScaleThread.from_context(7, ctx)
        np.testing.assert_array_equal(relocated.rng.normal((6,)), expected)

    def test_vrank_mismatch_rejected(self):
        est = EasyScaleThread(7, 1)
        ctx = EasyScaleThread(7, 2).save_context()
        with pytest.raises(ValueError):
            est.load_context(ctx)

    def test_context_state_roundtrip(self):
        ctx = EasyScaleThread(7, 4).save_context()
        restored = ESTContext.from_state(ctx.to_state())
        assert restored.vrank == 4
        assert restored.rng_state == ctx.rng_state

    def test_context_is_small(self):
        """The whole point: EST contexts are bytes, not model replicas."""
        from repro.utils.serialization import sizeof_state

        ctx = EasyScaleThread(7, 0).save_context()
        assert sizeof_state(ctx.to_state()) < 10_000
