"""Installation self-test: all checks pass in a healthy environment."""

from repro.core.selftest import SelfTestReport, run_selftest


class TestSelfTest:
    def test_all_checks_pass(self):
        report = run_selftest()
        assert report.passed, f"failed checks: {[k for k, v in report.checks.items() if not v]}"
        assert len(report.checks) == 5

    def test_lines_format(self):
        report = run_selftest()
        lines = report.lines()
        assert len(lines) == 5
        assert all(line.endswith("PASS") for line in lines)

    def test_empty_report_not_passed(self):
        assert not SelfTestReport().passed

    def test_failed_check_fails_report(self):
        report = SelfTestReport(checks={"a": True, "b": False})
        assert not report.passed
        assert any(line.endswith("FAIL") for line in report.lines())
