"""Disk persistence of on-demand checkpoints."""

import os

import pytest

from repro.core import Checkpoint, EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
from repro.hw import V100
from repro.models import get_workload
from repro.utils.fingerprint import fingerprint_state_dict

from tests.conftest import sgd_factory


@pytest.fixture(scope="module")
def spec():
    return get_workload("resnet18")


@pytest.fixture(scope="module")
def dataset(spec):
    return spec.build_dataset(128, seed=3)


def make_engine(spec, dataset):
    config = EasyScaleJobConfig(num_ests=2, seed=8, batch_size=8)
    return EasyScaleEngine(
        spec, dataset, config, sgd_factory(), WorkerAssignment.balanced([V100] * 2, 2)
    )


class TestDiskRoundTrip:
    def test_save_load_bitwise(self, spec, dataset, tmp_path):
        from repro.utils.serialization import deep_equal

        engine = make_engine(spec, dataset)
        engine.train_steps(3)
        path = tmp_path / "job.ckpt"
        ckpt = engine.checkpoint()
        ckpt.save(path)
        restored = Checkpoint.load(path)
        # the pickle byte stream is not canonical, but every tensor and
        # state entry must round-trip bitwise
        assert deep_equal(restored.params, ckpt.params)
        assert deep_equal(restored.est_contexts, ckpt.est_contexts)
        assert deep_equal(restored.extra, ckpt.extra)
        assert restored.meta == ckpt.meta

    def test_resume_from_disk_continues_bitwise(self, spec, dataset, tmp_path):
        continuous = make_engine(spec, dataset)
        continuous.train_steps(6)

        engine = make_engine(spec, dataset)
        engine.train_steps(3)
        path = tmp_path / "job.ckpt"
        engine.checkpoint().save(path)
        resumed = EasyScaleEngine.from_checkpoint(
            spec,
            dataset,
            Checkpoint.load(path),
            sgd_factory(),
            WorkerAssignment.balanced([V100], 2),
        )
        resumed.train_steps(3)
        assert fingerprint_state_dict(resumed.model.state_dict()) == fingerprint_state_dict(
            continuous.model.state_dict()
        )

    def test_atomic_write_leaves_no_tmp(self, spec, dataset, tmp_path):
        engine = make_engine(spec, dataset)
        path = tmp_path / "job.ckpt"
        engine.checkpoint().save(path)
        assert path.exists()
        assert not (tmp_path / "job.ckpt.tmp").exists()

    def test_overwrite_is_safe(self, spec, dataset, tmp_path):
        engine = make_engine(spec, dataset)
        path = tmp_path / "job.ckpt"
        engine.checkpoint().save(path)
        engine.train_steps(1)
        engine.checkpoint().save(path)  # second save replaces the first
        restored = Checkpoint.load(path)
        assert restored.extra["global_step"] == 1

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(Exception):
            Checkpoint.load(path)
