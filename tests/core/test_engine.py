"""EasyScaleEngine: assignments, stepping, epochs, checkpoints."""

import numpy as np
import pytest

from repro.core import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
from repro.hw import P100, V100
from repro.models import get_workload
from repro.optim import StepLR

from tests.conftest import sgd_factory


@pytest.fixture(scope="module")
def spec():
    return get_workload("resnet18")


@pytest.fixture(scope="module")
def dataset(spec):
    return spec.build_dataset(128, seed=3)


def make_engine(spec, dataset, num_ests=4, gpus=None, **cfg_kwargs):
    config = EasyScaleJobConfig(num_ests=num_ests, seed=5, batch_size=8, **cfg_kwargs)
    assignment = WorkerAssignment.balanced(gpus or [V100] * 2, num_ests)
    return EasyScaleEngine(spec, dataset, config, sgd_factory(), assignment)


class TestWorkerAssignment:
    def test_balanced_split(self):
        a = WorkerAssignment.balanced([V100] * 3, 7)
        assert [len(s) for s in a.est_map] == [3, 2, 2]
        assert a.num_ests == 7 and a.num_workers == 3

    def test_named_builder(self):
        a = WorkerAssignment.named(["V100", "P100"], 4)
        assert a.gpus[1].name == "P100"

    def test_coverage_validation(self):
        with pytest.raises(ValueError):
            WorkerAssignment(gpus=[V100], est_map=[[0, 2]])  # gap
        with pytest.raises(ValueError):
            WorkerAssignment(gpus=[V100, V100], est_map=[[0, 1]])  # len mismatch
        with pytest.raises(ValueError):
            WorkerAssignment(gpus=[V100, V100], est_map=[[0, 1], []])  # empty worker

    def test_more_workers_than_ests_rejected(self):
        with pytest.raises(ValueError):
            WorkerAssignment.balanced([V100] * 5, 4)


class TestStepping:
    def test_losses_ordered_by_vrank(self, spec, dataset):
        engine = make_engine(spec, dataset)
        losses = engine.run_global_step()
        assert len(losses) == 4
        assert all(np.isfinite(l) for l in losses)

    def test_epoch_advances(self, spec, dataset):
        engine = make_engine(spec, dataset)
        steps = engine.steps_per_epoch
        engine.train_steps(steps)
        assert engine.epoch == 1 and engine.step_in_epoch == 0

    def test_scheduler_steps_at_epoch_boundary(self, spec, dataset):
        config = EasyScaleJobConfig(num_ests=4, seed=5, batch_size=8)
        engine = EasyScaleEngine(
            spec,
            dataset,
            config,
            sgd_factory(),
            WorkerAssignment.balanced([V100] * 2, 4),
            scheduler_factory=lambda opt: StepLR(opt, step_size=1, gamma=0.5),
        )
        lr0 = engine.optimizer.lr
        engine.train_steps(engine.steps_per_epoch)
        assert engine.optimizer.lr == pytest.approx(lr0 * 0.5)

    def test_sim_time_accumulates(self, spec, dataset):
        engine = make_engine(spec, dataset)
        engine.train_steps(2)
        assert engine.sim_time > 0

    def test_train_epochs(self, spec, dataset):
        engine = make_engine(spec, dataset)
        engine.train_epochs(1)
        assert engine.epoch == 1

    def test_assignment_must_match_config(self, spec, dataset):
        config = EasyScaleJobConfig(num_ests=4, seed=5)
        with pytest.raises(ValueError):
            EasyScaleEngine(
                spec, dataset, config, sgd_factory(), WorkerAssignment.balanced([V100], 3)
            )


class TestCheckpointing:
    def test_checkpoint_contents(self, spec, dataset):
        engine = make_engine(spec, dataset)
        engine.train_steps(2)
        ckpt = engine.checkpoint()
        assert ckpt.num_ests == 4
        assert ckpt.extra["global_step"] == 2
        assert ckpt.meta["workload"] == "resnet18"
        assert ckpt.extra["bucket_mapping"] is not None  # D1 default

    def test_d0_checkpoint_has_no_mapping(self, spec, dataset):
        from repro.core import determinism_from_label

        engine = make_engine(spec, dataset, determinism=determinism_from_label("D0"))
        engine.train_steps(1)
        assert engine.checkpoint().extra["bucket_mapping"] is None

    def test_resume_rejects_wrong_workload(self, spec, dataset):
        engine = make_engine(spec, dataset)
        ckpt = engine.checkpoint()
        other = get_workload("vgg19")
        with pytest.raises((ValueError, KeyError)):
            EasyScaleEngine.from_checkpoint(
                other,
                other.build_dataset(64, seed=1),
                ckpt,
                sgd_factory(),
                WorkerAssignment.balanced([V100], 4),
            )

    def test_resume_restores_progress(self, spec, dataset):
        engine = make_engine(spec, dataset)
        engine.train_steps(3)
        resumed = engine.reconfigure(WorkerAssignment.balanced([V100], 4))
        assert resumed.global_step == 3
        assert resumed.epoch == engine.epoch
        assert resumed.config.batch_size == engine.config.batch_size

    def test_heterogeneous_assignment_builds(self, spec, dataset):
        engine = make_engine(spec, dataset, gpus=[V100, P100])
        engine.train_steps(1)
        assert engine.workers[1].gpu.name == "P100"


class TestEvaluate:
    def test_evaluate_returns_metric_and_logs(self, spec, dataset):
        from repro.data.datasets import train_eval_split
        from repro.utils.telemetry import RunLog

        full = spec.build_dataset(160, seed=2)
        train, evalset = train_eval_split(full, 96)
        log = RunLog()
        config = EasyScaleJobConfig(num_ests=2, seed=5, batch_size=8)
        engine = EasyScaleEngine(
            spec, train, config, sgd_factory(), WorkerAssignment.balanced([V100] * 2, 2),
            telemetry=log,
        )
        engine.train_steps(2)
        score = engine.evaluate(evalset, num_samples=64)
        assert 0.0 <= score <= 1.0
        records = log.of_kind("eval")
        assert len(records) == 1
        assert records[0].data["value"] == score

    def test_evaluate_does_not_perturb_training(self, spec, dataset):
        from repro.utils.fingerprint import fingerprint_state_dict

        a = make_engine(spec, dataset)
        a.train_steps(2)
        a.evaluate(dataset, num_samples=32)
        a.train_steps(2)

        b = make_engine(spec, dataset)
        b.train_steps(4)
        assert fingerprint_state_dict(a.model.state_dict()) == fingerprint_state_dict(
            b.model.state_dict()
        )
