"""Reconfiguration at *every* step of an epoch preserves all training state.

The elastic claim is position-independent: scaling at an epoch boundary is
the easy case, so this suite reconfigures at each interior step of a small
epoch and checks that the dataloader cursor, the per-EST RNG streams, and
the BatchNorm statistics all survive bitwise — and that continuing to a
common horizon lands on a model identical to the never-reconfigured run.
"""

import numpy as np
import pytest

from repro.core import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
from repro.hw import gpu_type
from repro.models import get_workload
from repro.obs import fingerprint_rng_states
from repro.utils.fingerprint import fingerprint_state_dict
from tests.conftest import sgd_factory

TOTAL_STEPS = 8  # two epochs of four global steps each


@pytest.fixture(scope="module")
def env():
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(32, seed=7)
    # 32 samples / (batch 4 x 2 ESTs) = 4 global steps per epoch
    config = EasyScaleJobConfig(num_ests=2, seed=0, batch_size=4)
    return spec, dataset, config


def _engine(env, num_gpus):
    spec, dataset, config = env
    return EasyScaleEngine(
        spec, dataset, config, sgd_factory(),
        WorkerAssignment.balanced([gpu_type("V100")] * num_gpus, 2),
    )


def _rng_fingerprint(engine):
    return fingerprint_rng_states([est.rng.get_state() for est in engine.ests])


def _bn_buffers(engine):
    state = engine.model.state_dict()
    buffers = {k: v for k, v in state.items() if "running" in k}
    assert buffers, "model exposes no BatchNorm running statistics"
    return buffers


@pytest.fixture(scope="module")
def reference(env):
    engine = _engine(env, num_gpus=2)
    losses = engine.train_steps(TOTAL_STEPS)
    return {
        "losses": losses,
        "params": fingerprint_state_dict(engine.model.state_dict()),
        "rng": _rng_fingerprint(engine),
        "bn": _bn_buffers(engine),
        "cursor": (engine.epoch, engine.step_in_epoch),
    }


@pytest.mark.parametrize("step", range(4))
def test_reconfigure_at_every_epoch_position(env, reference, step):
    engine = _engine(env, num_gpus=2)
    assert engine.steps_per_epoch == 4
    losses = engine.train_steps(step)

    before = {
        "cursor": (engine.epoch, engine.step_in_epoch),
        "rng": _rng_fingerprint(engine),
        "params": fingerprint_state_dict(engine.model.state_dict()),
    }
    engine = engine.reconfigure(
        WorkerAssignment.balanced([gpu_type("V100")], 2)
    )

    # the handoff itself moves nothing: cursor, RNG streams, and weights
    # are bitwise what they were on the old allocation
    assert (engine.epoch, engine.step_in_epoch) == before["cursor"]
    assert _rng_fingerprint(engine) == before["rng"]
    assert fingerprint_state_dict(engine.model.state_dict()) == before["params"]

    losses += engine.train_steps(TOTAL_STEPS - step)

    assert losses == reference["losses"]
    assert fingerprint_state_dict(engine.model.state_dict()) == reference["params"]
    assert _rng_fingerprint(engine) == reference["rng"]
    assert (engine.epoch, engine.step_in_epoch) == reference["cursor"]
    for name, expected in reference["bn"].items():
        np.testing.assert_array_equal(
            _bn_buffers(engine)[name], expected,
            err_msg=f"BN statistic {name} diverged after step-{step} rescale",
        )
