"""PortedTrainingSession: custom-loop elasticity with the full guarantee."""

import numpy as np
import pytest

from repro import nn
from repro.core import WorkerAssignment, determinism_from_label
from repro.core.porting import PortedTrainingSession
from repro.data import SharedDataLoader, SyntheticImageDataset
from repro.hw import P100, V100
from repro.nn.loss import cross_entropy
from repro.optim import SGD
from repro.tensor import Tensor
from repro.tensor.ops import flatten
from repro.utils.fingerprint import fingerprint_state_dict
from repro.utils.rng import RNGBundle

SEED = 3
NUM_ESTS = 4


class TinyNet(nn.Module):
    def __init__(self, rng):
        super().__init__()
        self.conv = nn.Conv2d(3, 4, 3, rng.spawn("c"), padding=1)
        self.bn = nn.BatchNorm2d(4)
        self.drop = nn.Dropout(0.3)
        self.head = nn.Linear(4 * 8 * 8, 10, rng.spawn("h"))

    def forward(self, x):
        h = self.drop(self.bn(self.conv(x)).relu())
        return self.head(flatten(h))


def build_session(assignment, determinism="D1"):
    model = TinyNet(RNGBundle(SEED))
    opt = SGD(model.named_parameters(), lr=0.05, momentum=0.9)
    return PortedTrainingSession(
        model=model,
        optimizer=opt,
        num_ests=NUM_ESTS,
        seed=SEED,
        assignment=assignment,
        determinism=determinism_from_label(determinism),
    )


@pytest.fixture(scope="module")
def loader():
    dataset = SyntheticImageDataset(192, seed=SEED)
    return SharedDataLoader(dataset, num_replicas=NUM_ESTS, batch_size=8, seed=SEED)


def drive(session, loader, steps):
    def step_fn(batch):
        x, y = batch
        loss = cross_entropy(session.model(Tensor(x)), y.astype(np.int64))
        loss.backward()
        return loss

    out = []
    for _ in range(steps):
        out.append(session.global_step_with(step_fn, lambda v, s: loader.load(v, 0, s)))
    return out


class TestPortedSession:
    def test_reassignment_preserves_bits(self, loader):
        fixed = build_session(WorkerAssignment.balanced([V100] * 2, NUM_ESTS))
        drive(fixed, loader, 6)

        elastic = build_session(WorkerAssignment.balanced([V100] * 2, NUM_ESTS))
        drive(elastic, loader, 3)
        elastic.reassign(WorkerAssignment.balanced([V100], NUM_ESTS))
        drive(elastic, loader, 3)
        assert fingerprint_state_dict(elastic.model.state_dict()) == fingerprint_state_dict(
            fixed.model.state_dict()
        )

    def test_heterogeneous_needs_d2(self, loader):
        homo = build_session(WorkerAssignment.balanced([V100] * 2, NUM_ESTS), "D1")
        drive(homo, loader, 4)
        mixed = build_session(WorkerAssignment.balanced([V100, P100], NUM_ESTS), "D1")
        drive(mixed, loader, 4)
        assert fingerprint_state_dict(homo.model.state_dict()) != fingerprint_state_dict(
            mixed.model.state_dict()
        )

        homo_d2 = build_session(WorkerAssignment.balanced([V100] * 2, NUM_ESTS), "D1+D2")
        drive(homo_d2, loader, 4)
        mixed_d2 = build_session(WorkerAssignment.balanced([V100, P100], NUM_ESTS), "D1+D2")
        drive(mixed_d2, loader, 4)
        assert fingerprint_state_dict(homo_d2.model.state_dict()) == fingerprint_state_dict(
            mixed_d2.model.state_dict()
        )

    def test_checkpoint_restore_roundtrip(self, loader):
        reference = build_session(WorkerAssignment.balanced([V100] * 2, NUM_ESTS))
        drive(reference, loader, 5)

        session = build_session(WorkerAssignment.balanced([V100] * 2, NUM_ESTS))
        drive(session, loader, 2)
        ckpt = session.checkpoint()

        fresh = build_session(WorkerAssignment.balanced([V100], NUM_ESTS))
        fresh.restore(ckpt)
        assert fresh.global_step == 2
        drive(fresh, loader, 3)
        assert fingerprint_state_dict(fresh.model.state_dict()) == fingerprint_state_dict(
            reference.model.state_dict()
        )

    def test_losses_per_vrank(self, loader):
        session = build_session(WorkerAssignment.balanced([V100] * 2, NUM_ESTS))
        losses = drive(session, loader, 1)[0]
        assert len(losses) == NUM_ESTS
        assert all(np.isfinite(l) for l in losses)

    def test_validation(self, loader):
        session = build_session(WorkerAssignment.balanced([V100] * 2, NUM_ESTS))
        with pytest.raises(ValueError):
            session.reassign(WorkerAssignment.balanced([V100], 2))
        with pytest.raises(ValueError):
            PortedTrainingSession(
                model=TinyNet(RNGBundle(0)),
                optimizer=SGD([("w", nn.Parameter(np.zeros(1, np.float32)))], lr=0.1),
                num_ests=4,
                seed=0,
                assignment=WorkerAssignment.balanced([V100], 2),
            )
