"""ElasticDDP: virtual-rank aggregation and the D1 bucket mapping."""

import numpy as np
import pytest

from repro.comm.allreduce import allreduce_mean
from repro.comm.bucketing import BucketAssignment
from repro.core.elastic_ddp import ElasticDDP


def make_eddp(num_ests=4, record=True, capacity=6):
    names = ["w1", "w2", "w3"]
    sizes = {"w1": 4, "w2": 2, "w3": 3}
    shapes = {"w1": (2, 2), "w2": (2,), "w3": (3,)}
    return ElasticDDP(
        param_order=names,
        param_sizes=sizes,
        param_shapes=shapes,
        num_ests=num_ests,
        bucket_capacity_elems=capacity,
        record_mapping=record,
    ), shapes


def grads_for(vrank, shapes, seed=0):
    rng = np.random.default_rng(seed * 100 + vrank)
    return {n: rng.normal(size=s).astype(np.float32) for n, s in shapes.items()}


class TestSynchronize:
    def test_matches_manual_bucket_allreduce(self):
        eddp, shapes = make_eddp(3)
        all_grads = [grads_for(v, shapes) for v in range(3)]
        out = eddp.synchronize(all_grads)
        # manual: same buckets, same ring mean
        for bucket_idx, bucket in enumerate(eddp.buckets.buckets):
            sub = BucketAssignment([bucket])
            flats = [sub.flatten_bucket(0, g) for g in all_grads]
            expected = sub.unflatten_bucket(0, allreduce_mean(flats), shapes)
            for name in bucket:
                np.testing.assert_array_equal(out[name], expected[name])

    def test_requires_all_ests(self):
        eddp, shapes = make_eddp(4)
        with pytest.raises(ValueError):
            eddp.synchronize([grads_for(0, shapes)])

    def test_result_independent_of_grad_sources(self):
        """Aggregation depends on vrank order, not who computed what where."""
        eddp_a, shapes = make_eddp(4)
        eddp_b, _ = make_eddp(4)
        grads = [grads_for(v, shapes) for v in range(4)]
        out_a = eddp_a.synchronize(grads)
        out_b = eddp_b.synchronize([dict(g) for g in grads])  # fresh dicts
        for name in out_a:
            assert out_a[name].tobytes() == out_b[name].tobytes()

    def test_missing_param_bucket_skipped(self):
        eddp, shapes = make_eddp(2)
        partial = [{"w1": g["w1"]} for g in (grads_for(0, shapes), grads_for(1, shapes))]
        out = eddp.synchronize(partial)
        assert set(out) == {"w1"}


class TestReconstruction:
    def test_happens_once(self):
        eddp, _ = make_eddp()
        assert eddp.maybe_reconstruct(["w2", "w1", "w3"])
        first = eddp.buckets.to_state()
        assert not eddp.maybe_reconstruct(["w3", "w2", "w1"])
        assert eddp.buckets.to_state() == first

    def test_changes_layout(self):
        eddp, _ = make_eddp()
        initial = eddp.buckets.to_state()
        eddp.maybe_reconstruct(["w1", "w2", "w3"])
        assert eddp.buckets.to_state() != initial

    def test_partial_arrival_padded(self):
        eddp, _ = make_eddp()
        eddp.maybe_reconstruct(["w2"])  # w1/w3 appended deterministically
        assert sorted(eddp.buckets.all_names) == ["w1", "w2", "w3"]


class TestMappingCheckpoint:
    def test_export_none_when_not_recording(self):
        eddp, _ = make_eddp(record=False)
        assert eddp.export_mapping() is None

    def test_export_import_roundtrip(self):
        eddp, _ = make_eddp(record=True)
        eddp.maybe_reconstruct(["w3", "w1", "w2"])
        state = eddp.export_mapping()

        fresh, _ = make_eddp(record=True)
        fresh.import_mapping(state)
        assert fresh.buckets.to_state() == eddp.buckets.to_state()
        assert fresh.reconstructed  # rebuild disabled after restore

    def test_import_none_reenables_reconstruction(self):
        """The D0 failure mode: restore without mapping -> initial layout
        is back and reconstruction will fire again."""
        fresh, _ = make_eddp(record=False)
        fresh.import_mapping(None)
        assert not fresh.reconstructed
        initial, _ = make_eddp()
        assert fresh.buckets.to_state() == initial.buckets.to_state()
