"""On-demand checkpoints: structure validation and byte round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import Checkpoint
from repro.core.est import EasyScaleThread
from repro.utils.serialization import deep_equal


def make_checkpoint(num_ests=3, seed=5):
    ests = [EasyScaleThread(seed, v) for v in range(num_ests)]
    return Checkpoint(
        est_contexts=[e.save_context().to_state() for e in ests],
        extra={"epoch": 1, "step_in_epoch": 2, "global_step": 10, "bucket_mapping": None,
               "loader": {"pending": {}}, "determinism": "D1"},
        params={"model": {"w": np.float32([1.0, np.nan])}, "optimizer": {"lr": 0.1, "state": {}, "extra": {}},
                "scheduler": None},
        meta={"workload": "resnet18", "num_ests": num_ests, "seed": seed},
    )


class TestValidation:
    def test_requires_contexts(self):
        with pytest.raises(ValueError):
            Checkpoint(est_contexts=[], extra={}, params={})

    def test_vrank_coverage_checked(self):
        ests = [EasyScaleThread(0, v) for v in (0, 2)]  # gap at 1
        with pytest.raises(ValueError):
            Checkpoint(
                est_contexts=[e.save_context().to_state() for e in ests],
                extra={},
                params={},
            )

    def test_duplicate_vranks_rejected(self):
        ctx = EasyScaleThread(0, 0).save_context().to_state()
        with pytest.raises(ValueError):
            Checkpoint(est_contexts=[ctx, dict(ctx)], extra={}, params={})

    def test_context_lookup(self):
        ckpt = make_checkpoint(4)
        assert ckpt.context_for(2).vrank == 2
        with pytest.raises(KeyError):
            ckpt.context_for(7)

    def test_num_ests(self):
        assert make_checkpoint(5).num_ests == 5


class TestSerialization:
    def test_roundtrip_bitwise(self):
        ckpt = make_checkpoint()
        restored = Checkpoint.from_bytes(ckpt.to_bytes())
        assert deep_equal(restored.params, ckpt.params)
        assert deep_equal(restored.extra, ckpt.extra)
        assert restored.meta == ckpt.meta
        assert restored.num_ests == ckpt.num_ests

    def test_version_check(self):
        import pickle

        payload = {"version": 99, "est_contexts": [], "extra": {}, "params": {}}
        with pytest.raises(ValueError):
            Checkpoint.from_bytes(pickle.dumps(payload))

    @given(num_ests=st.integers(1, 8), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_rng_states_survive_roundtrip(self, num_ests, seed):
        ests = [EasyScaleThread(seed, v) for v in range(num_ests)]
        for e in ests:
            e.rng.normal((e.vrank + 1,))  # advance unevenly
        expected = {e.vrank: e.rng.clone().normal((3,)) for e in ests}

        ckpt = Checkpoint(
            est_contexts=[e.save_context().to_state() for e in ests],
            extra={}, params={},
        )
        restored = Checkpoint.from_bytes(ckpt.to_bytes())
        for v in range(num_ests):
            est = EasyScaleThread.from_context(seed, restored.context_for(v))
            np.testing.assert_array_equal(est.rng.normal((3,)), expected[v])
