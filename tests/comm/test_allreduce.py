"""All-reduce: association faithfulness, world-size sensitivity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.allreduce import (
    allreduce_mean,
    ring_allreduce_sum,
    sequential_allreduce_sum,
    tree_allreduce_sum,
)


def _grads(world, n=4097, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=n).astype(np.float32) for _ in range(world)]


class TestCorrectness:
    @pytest.mark.parametrize("fn", [ring_allreduce_sum, tree_allreduce_sum, sequential_allreduce_sum])
    @pytest.mark.parametrize("world", [1, 2, 3, 5, 8])
    def test_close_to_true_sum(self, fn, world):
        grads = _grads(world)
        ref = np.sum([g.astype(np.float64) for g in grads], axis=0)
        np.testing.assert_allclose(fn(grads), ref, rtol=1e-4, atol=1e-4)

    def test_mean_divides(self):
        grads = _grads(4)
        total = ring_allreduce_sum(grads)
        np.testing.assert_array_equal(
            allreduce_mean(grads, "ring"), total / np.float32(4)
        )

    def test_single_rank_identity(self):
        g = _grads(1)
        np.testing.assert_array_equal(ring_allreduce_sum(g), g[0])

    def test_empty_world_rejected(self):
        with pytest.raises(ValueError):
            ring_allreduce_sum([])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ring_allreduce_sum([np.zeros(3, np.float32), np.zeros(4, np.float32)])

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            allreduce_mean(_grads(2), "butterfly")


class TestAssociationSensitivity:
    def test_deterministic_for_fixed_world(self):
        a = ring_allreduce_sum(_grads(4, seed=3))
        b = ring_allreduce_sum(_grads(4, seed=3))
        assert a.tobytes() == b.tobytes()

    def test_world_size_changes_bits(self):
        """The same 8 gradient shards reduced as 8 ranks vs pre-combined
        into 4 ranks give different float32 bits (the elastic hazard)."""
        grads8 = _grads(8, n=8192, seed=1)
        # combine pairs: what "the same data on 4 GPUs" would contribute
        grads4 = [grads8[2 * i] + grads8[2 * i + 1] for i in range(4)]
        out8 = ring_allreduce_sum(grads8)
        out4 = ring_allreduce_sum(grads4)
        assert out8.tobytes() != out4.tobytes()
        np.testing.assert_allclose(out8, out4, rtol=1e-4, atol=1e-4)

    def test_layout_changes_bits(self):
        """Permuting the flat buffer (bucket rebuild) permutes chunk
        boundaries and flips bits after undoing the permutation."""
        grads = _grads(4, n=8192, seed=2)
        perm = np.random.default_rng(0).permutation(8192)
        inv = np.argsort(perm)
        direct = ring_allreduce_sum(grads)
        permuted = ring_allreduce_sum([g[perm] for g in grads])[inv]
        assert direct.tobytes() != permuted.tobytes()
        np.testing.assert_allclose(direct, permuted, rtol=1e-4, atol=1e-4)

    def test_algorithms_disagree_bitwise(self):
        grads = _grads(5, n=4096, seed=4)
        outs = {
            ring_allreduce_sum(grads).tobytes(),
            tree_allreduce_sum(grads).tobytes(),
            sequential_allreduce_sum(grads).tobytes(),
        }
        assert len(outs) >= 2

    @given(world=st.integers(1, 7), seed=st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_ring_reduction_property(self, world, seed):
        grads = _grads(world, n=257, seed=seed)
        out = ring_allreduce_sum(grads)
        ref = np.sum([g.astype(np.float64) for g in grads], axis=0)
        assert out.shape == (257,)
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-3)

    def test_small_buffer_with_large_world(self):
        # more ranks than elements: some chunks are empty
        grads = [np.float32([1.0, 2.0]) for _ in range(5)]
        np.testing.assert_allclose(ring_allreduce_sum(grads), [5.0, 10.0])


class TestAliasing:
    """The reduction result must own its memory: ElasticDDP reuses the
    flat input buffers across steps (FlatBufferCache), so a result that
    aliased any input would be silently rewritten on the next flatten."""

    @pytest.mark.parametrize("fn", [ring_allreduce_sum, tree_allreduce_sum, sequential_allreduce_sum])
    @pytest.mark.parametrize("world", [1, 2, 5])
    def test_sum_never_aliases_inputs(self, fn, world):
        # already-float32, already-flat inputs: np.asarray makes no
        # defensive copy, so any lazy implementation would alias here
        grads = _grads(world, n=64)
        out = fn(grads)
        for g in grads:
            assert not np.shares_memory(out, g)

    @pytest.mark.parametrize("algorithm", ["ring", "tree", "sequential"])
    def test_mean_never_aliases_inputs(self, algorithm):
        grads = _grads(3, n=64)
        out = allreduce_mean(grads, algorithm)
        for g in grads:
            assert not np.shares_memory(out, g)

    def test_mutating_result_leaves_inputs_intact(self):
        grads = _grads(2, n=16)
        before = [g.copy() for g in grads]
        out = ring_allreduce_sum(grads)
        out[...] = -1.0
        for g, ref in zip(grads, before):
            np.testing.assert_array_equal(g, ref)


class TestInputValidation:
    @pytest.mark.parametrize("fn", [ring_allreduce_sum, tree_allreduce_sum, sequential_allreduce_sum])
    def test_ragged_rejected_with_rank_message(self, fn):
        ragged = [np.zeros(4, np.float32), np.zeros(5, np.float32)]
        with pytest.raises(ValueError, match=r"ragged.*rank 1.*5 elements.*rank 0.*4"):
            fn(ragged)

    def test_non_rectangular_rejected(self):
        jagged = [np.float32([1.0, 2.0]), [[1.0], [2.0, 3.0]]]
        with pytest.raises(ValueError, match="rectangular"):
            ring_allreduce_sum(jagged)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_rejected(self, bad):
        grads = _grads(3, n=8)
        grads[1][4] = bad
        with pytest.raises(ValueError, match="rank 1.*non-finite"):
            ring_allreduce_sum(grads)

    def test_non_finite_rejected_in_mean(self):
        grads = _grads(2, n=8)
        grads[0][0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            allreduce_mean(grads, "sequential")
