"""Gradient bucketing: initial order, rebuild, flatten round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.bucketing import (
    BucketAssignment,
    build_initial_buckets,
    rebuild_from_arrival,
)


def _sizes(names, size=10):
    return {n: size for n in names}


class TestInitialBuckets:
    def test_reverse_registration_order(self):
        names = ["a", "b", "c", "d"]
        buckets = build_initial_buckets(names, _sizes(names), capacity_elems=100)
        assert buckets.buckets == [["d", "c", "b", "a"]]

    def test_capacity_splits(self):
        names = ["a", "b", "c", "d"]
        buckets = build_initial_buckets(names, _sizes(names, 10), capacity_elems=20)
        assert buckets.buckets == [["d", "c"], ["b", "a"]]

    def test_oversized_param_gets_own_bucket(self):
        sizes = {"big": 100, "small": 5}
        buckets = build_initial_buckets(["small", "big"], sizes, capacity_elems=20)
        assert buckets.buckets == [["big"], ["small"]]

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            build_initial_buckets(["a"], {"a": 1}, capacity_elems=0)


class TestRebuild:
    def test_arrival_order_respected(self):
        names = ["a", "b", "c"]
        rebuilt = rebuild_from_arrival(["b", "c", "a"], _sizes(names), capacity_elems=100)
        assert rebuilt.buckets == [["b", "c", "a"]]

    def test_missing_param_rejected(self):
        with pytest.raises(ValueError):
            rebuild_from_arrival(["a"], {"a": 1, "b": 1})

    def test_rebuild_differs_from_initial(self):
        names = ["a", "b", "c"]
        initial = build_initial_buckets(names, _sizes(names), 100)
        rebuilt = rebuild_from_arrival(["a", "c", "b"], _sizes(names), 100)
        assert initial.buckets != rebuilt.buckets


class TestAssignment:
    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            BucketAssignment([["a"], ["a"]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BucketAssignment([[]])

    def test_flatten_unflatten_roundtrip(self):
        rng = np.random.default_rng(0)
        grads = {
            "w": rng.normal(size=(3, 4)).astype(np.float32),
            "b": rng.normal(size=(4,)).astype(np.float32),
        }
        assignment = BucketAssignment([["b", "w"]])
        flat = assignment.flatten_bucket(0, grads)
        assert flat.shape == (16,)
        out = assignment.unflatten_bucket(0, flat, {"w": (3, 4), "b": (4,)})
        np.testing.assert_array_equal(out["w"], grads["w"])
        np.testing.assert_array_equal(out["b"], grads["b"])

    def test_unflatten_size_mismatch(self):
        assignment = BucketAssignment([["w"]])
        with pytest.raises(ValueError):
            assignment.unflatten_bucket(0, np.zeros(5, np.float32), {"w": (2, 2)})

    def test_state_roundtrip(self):
        assignment = BucketAssignment([["b", "w"], ["c"]])
        restored = BucketAssignment.from_state(assignment.to_state())
        assert restored.buckets == assignment.buckets

    @given(
        n_params=st.integers(1, 12),
        capacity=st.integers(1, 50),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_param_in_exactly_one_bucket(self, n_params, capacity, seed):
        rng = np.random.default_rng(seed)
        names = [f"p{i}" for i in range(n_params)]
        sizes = {n: int(rng.integers(1, 30)) for n in names}
        buckets = build_initial_buckets(names, sizes, capacity)
        flat = buckets.all_names
        assert sorted(flat) == sorted(names)
        # capacity respected except for single oversized params
        for bucket in buckets.buckets:
            total = sum(sizes[n] for n in bucket)
            assert total <= capacity or len(bucket) == 1
