"""Gradient bucketing: initial order, rebuild, flatten round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.bucketing import (
    BucketAssignment,
    FlatBufferCache,
    build_initial_buckets,
    rebuild_from_arrival,
)


def _sizes(names, size=10):
    return {n: size for n in names}


class TestInitialBuckets:
    def test_reverse_registration_order(self):
        names = ["a", "b", "c", "d"]
        buckets = build_initial_buckets(names, _sizes(names), capacity_elems=100)
        assert buckets.buckets == [["d", "c", "b", "a"]]

    def test_capacity_splits(self):
        names = ["a", "b", "c", "d"]
        buckets = build_initial_buckets(names, _sizes(names, 10), capacity_elems=20)
        assert buckets.buckets == [["d", "c"], ["b", "a"]]

    def test_oversized_param_gets_own_bucket(self):
        sizes = {"big": 100, "small": 5}
        buckets = build_initial_buckets(["small", "big"], sizes, capacity_elems=20)
        assert buckets.buckets == [["big"], ["small"]]

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            build_initial_buckets(["a"], {"a": 1}, capacity_elems=0)


class TestRebuild:
    def test_arrival_order_respected(self):
        names = ["a", "b", "c"]
        rebuilt = rebuild_from_arrival(["b", "c", "a"], _sizes(names), capacity_elems=100)
        assert rebuilt.buckets == [["b", "c", "a"]]

    def test_missing_param_rejected(self):
        with pytest.raises(ValueError):
            rebuild_from_arrival(["a"], {"a": 1, "b": 1})

    def test_duplicate_arrival_rejected_with_offender(self):
        """Regression: a doubly-recorded arrival used to slip through the
        set comparison and surface later as BucketAssignment's confusing
        "appears in multiple buckets" error, far from the cause."""
        with pytest.raises(ValueError, match="'b' more than once"):
            rebuild_from_arrival(["a", "b", "b", "c"], _sizes(["a", "b", "c"]))

    def test_duplicate_covering_all_params_still_rejected(self):
        # the old `set(got) != expected` check passed this case outright
        with pytest.raises(ValueError, match="'a' more than once"):
            rebuild_from_arrival(["a", "b", "a"], _sizes(["a", "b"]))

    def test_unknown_param_named(self):
        with pytest.raises(ValueError, match="unknown"):
            rebuild_from_arrival(["a", "ghost"], {"a": 1})

    def test_rebuild_differs_from_initial(self):
        names = ["a", "b", "c"]
        initial = build_initial_buckets(names, _sizes(names), 100)
        rebuilt = rebuild_from_arrival(["a", "c", "b"], _sizes(names), 100)
        assert initial.buckets != rebuilt.buckets


class TestAssignment:
    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            BucketAssignment([["a"], ["a"]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BucketAssignment([[]])

    def test_flatten_unflatten_roundtrip(self):
        rng = np.random.default_rng(0)
        grads = {
            "w": rng.normal(size=(3, 4)).astype(np.float32),
            "b": rng.normal(size=(4,)).astype(np.float32),
        }
        assignment = BucketAssignment([["b", "w"]])
        flat = assignment.flatten_bucket(0, grads)
        assert flat.shape == (16,)
        out = assignment.unflatten_bucket(0, flat, {"w": (3, 4), "b": (4,)})
        np.testing.assert_array_equal(out["w"], grads["w"])
        np.testing.assert_array_equal(out["b"], grads["b"])

    def test_unflatten_size_mismatch(self):
        assignment = BucketAssignment([["w"]])
        with pytest.raises(ValueError):
            assignment.unflatten_bucket(0, np.zeros(5, np.float32), {"w": (2, 2)})

    def test_state_roundtrip(self):
        assignment = BucketAssignment([["b", "w"], ["c"]])
        restored = BucketAssignment.from_state(assignment.to_state())
        assert restored.buckets == assignment.buckets

    def test_unflatten_owns_memory(self):
        """Regression: unflattened gradients must never be views of the
        flat buffer — mutating one parameter's gradient used to silently
        rewrite its bucket-mates through the shared backing array."""
        assignment = BucketAssignment([["b", "w"]])
        flat = np.arange(16, dtype=np.float32)
        out = assignment.unflatten_bucket(0, flat, {"w": (3, 4), "b": (4,)})
        b_before = out["b"].copy()
        w_before = out["w"].copy()
        assert not np.shares_memory(out["w"], flat)
        assert not np.shares_memory(out["b"], flat)
        assert not np.shares_memory(out["w"], out["b"])
        # mutate one unflattened gradient in place: bucket-mates and the
        # flat source must be untouched
        out["w"][...] = -1.0
        np.testing.assert_array_equal(out["b"], b_before)
        np.testing.assert_array_equal(flat, np.arange(16, dtype=np.float32))
        out["b"][...] = -2.0
        np.testing.assert_array_equal(out["w"], np.full((3, 4), -1.0, np.float32))
        assert not np.array_equal(w_before, out["w"])

    def test_flatten_into_matches_flatten(self):
        rng = np.random.default_rng(3)
        grads = {
            "w": rng.normal(size=(5, 3)).astype(np.float32),
            "b": rng.normal(size=(7,)).astype(np.float32),
        }
        assignment = BucketAssignment([["b", "w"]])
        expected = assignment.flatten_bucket(0, grads)
        out = np.empty(22, dtype=np.float32)
        result = assignment.flatten_bucket_into(0, grads, out)
        assert result is out
        assert out.tobytes() == expected.tobytes()

    def test_flatten_into_size_mismatch(self):
        assignment = BucketAssignment([["w"]])
        grads = {"w": np.zeros((2, 2), np.float32)}
        with pytest.raises(ValueError):
            assignment.flatten_bucket_into(0, grads, np.empty(3, np.float32))
        with pytest.raises(ValueError):
            assignment.flatten_bucket_into(0, grads, np.empty(5, np.float32))

    @given(
        n_params=st.integers(1, 12),
        capacity=st.integers(1, 50),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_param_in_exactly_one_bucket(self, n_params, capacity, seed):
        rng = np.random.default_rng(seed)
        names = [f"p{i}" for i in range(n_params)]
        sizes = {n: int(rng.integers(1, 30)) for n in names}
        buckets = build_initial_buckets(names, sizes, capacity)
        flat = buckets.all_names
        assert sorted(flat) == sorted(names)
        # capacity respected except for single oversized params
        for bucket in buckets.buckets:
            total = sum(sizes[n] for n in bucket)
            assert total <= capacity or len(bucket) == 1


class TestFlatBufferCache:
    def _layout(self, *buckets):
        return BucketAssignment([list(b) for b in buckets]).layout_key()

    def test_hit_returns_same_buffer(self):
        cache = FlatBufferCache()
        layout = self._layout(["a", "b"])
        first = cache.buffer(layout, 0, 0, 16)
        second = cache.buffer(layout, 0, 0, 16)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)

    def test_slots_are_distinct(self):
        cache = FlatBufferCache()
        layout = self._layout(["a"])
        assert cache.buffer(layout, 0, 0, 8) is not cache.buffer(layout, 0, 1, 8)
        assert len(cache) == 2

    def test_layout_change_invalidates_everything(self):
        cache = FlatBufferCache()
        old = self._layout(["a", "b"])
        buf = cache.buffer(old, 0, 0, 16)
        new = self._layout(["b", "a"])
        replacement = cache.buffer(new, 0, 0, 16)
        assert replacement is not buf
        assert cache.misses == 2 and cache.hits == 0
        assert len(cache) == 1  # the old layout's entries are gone

    def test_size_change_reallocates(self):
        cache = FlatBufferCache()
        layout = self._layout(["a"])
        small = cache.buffer(layout, 0, 0, 8)
        grown = cache.buffer(layout, 0, 0, 12)
        assert grown is not small and grown.size == 12

    def test_slot_reuse_across_mid_job_layout_change(self):
        """Multi-slot buffers must all be dropped when the layout re-keys
        mid-job (the one-time DDP arrival rebuild), then rebuilt per slot
        under the new layout without cross-slot mixups."""
        cache = FlatBufferCache()
        old = self._layout(["a", "b"], ["c"])
        old_buffers = {
            (bucket, slot): cache.buffer(old, bucket, slot, 8 + bucket)
            for bucket in (0, 1)
            for slot in (0, 1, 2)
        }
        assert len(cache) == 6 and cache.misses == 6
        new = self._layout(["b", "a"], ["c"])
        fresh = {
            (bucket, slot): cache.buffer(new, bucket, slot, 8 + bucket)
            for bucket in (0, 1)
            for slot in (0, 1, 2)
        }
        # every old buffer was invalidated — none may be handed back
        for key, buf in fresh.items():
            assert buf is not old_buffers[key]
        assert cache.misses == 12 and cache.hits == 0
        assert len(cache) == 6
        # steady state under the new layout hits per (bucket, slot)
        for (bucket, slot), buf in fresh.items():
            assert cache.buffer(new, bucket, slot, 8 + bucket) is buf
        assert cache.hits == 6

    def test_clear_and_validation(self):
        cache = FlatBufferCache()
        layout = self._layout(["a"])
        cache.buffer(layout, 0, 0, 4)
        cache.clear()
        assert len(cache) == 0
        with pytest.raises(ValueError):
            cache.buffer(layout, 0, 0, 0)
