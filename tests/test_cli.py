"""CLI: argument parsing and command smoke tests."""

import pytest

from repro.cli import _parse_stage, build_parser, main


class TestParseStage:
    def test_count_and_type(self):
        gpus = _parse_stage("2xV100")
        assert [g.name for g in gpus] == ["V100", "V100"]

    def test_bare_type(self):
        assert [g.name for g in _parse_stage("P100")] == ["P100"]

    def test_mixed(self):
        gpus = _parse_stage("1xV100+2xP100")
        assert [g.name for g in gpus] == ["V100", "P100", "P100"]

    def test_case_insensitive(self):
        assert [g.name for g in _parse_stage("2xt4")] == ["T4", "T4"]

    def test_unknown_type(self):
        with pytest.raises(KeyError):
            _parse_stage("2xH100")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "resnet18"])
        assert args.ests == 4
        assert args.determinism == "D1"
        assert not args.verify

    def test_bad_determinism_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "resnet18", "--determinism", "D9"])


class TestCommands:
    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out and "bert" in out

    def test_scan(self, capsys):
        assert main(["scan", "neumf"]) == 0
        assert "D2 is cheap" in capsys.readouterr().out
        assert main(["scan", "resnet50"]) == 0
        assert "vendor conv kernels" in capsys.readouterr().out

    def test_train_verifies_bitwise(self, capsys):
        code = main(
            [
                "train",
                "resnet18",
                "--schedule", "2xV100", "1xV100",
                "--steps-per-stage", "2",
                "--samples", "128",
                "--ests", "2",
                "--verify",
            ]
        )
        assert code == 0
        assert "IDENTICAL" in capsys.readouterr().out

    def test_colocation(self, capsys):
        assert main(["colocation", "--gpus", "300", "--training-demand", "50"]) == 0
        out = capsys.readouterr().out
        assert "alloc ratio" in out and "failures: 0" in out

    def test_trace_sim_single_policy(self, capsys):
        assert main(["trace-sim", "--policy", "homo", "--jobs", "6"]) == 0
        assert "easyscale-homo" in capsys.readouterr().out


class TestSelfTestCommand:
    def test_self_test_passes_on_healthy_install(self, capsys):
        from repro.cli import main

        assert main(["self-test"]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out
        assert out.count("PASS") >= 5
