"""CLI: argument parsing and command smoke tests."""

import json

import pytest

from repro.cli import _parse_stage, build_parser, main


class TestParseStage:
    def test_count_and_type(self):
        gpus = _parse_stage("2xV100")
        assert [g.name for g in gpus] == ["V100", "V100"]

    def test_bare_type(self):
        assert [g.name for g in _parse_stage("P100")] == ["P100"]

    def test_mixed(self):
        gpus = _parse_stage("1xV100+2xP100")
        assert [g.name for g in gpus] == ["V100", "P100", "P100"]

    def test_case_insensitive(self):
        assert [g.name for g in _parse_stage("2xt4")] == ["T4", "T4"]

    def test_unknown_type(self):
        with pytest.raises(KeyError):
            _parse_stage("2xH100")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "resnet18"])
        assert args.ests == 4
        assert args.determinism == "D1"
        assert not args.verify

    def test_bad_determinism_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "resnet18", "--determinism", "D9"])


class TestCommands:
    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out and "bert" in out

    def test_scan(self, capsys):
        assert main(["scan", "neumf"]) == 0
        assert "D2 is cheap" in capsys.readouterr().out
        assert main(["scan", "resnet50"]) == 0
        assert "vendor conv kernels" in capsys.readouterr().out

    def test_train_verifies_bitwise(self, capsys):
        code = main(
            [
                "train",
                "resnet18",
                "--schedule", "2xV100", "1xV100",
                "--steps-per-stage", "2",
                "--samples", "128",
                "--ests", "2",
                "--verify",
            ]
        )
        assert code == 0
        assert "IDENTICAL" in capsys.readouterr().out

    def test_colocation(self, capsys):
        assert main(["colocation", "--gpus", "300", "--training-demand", "50"]) == 0
        out = capsys.readouterr().out
        assert "alloc ratio" in out and "failures: 0" in out

    def test_trace_sim_single_policy(self, capsys):
        assert main(["trace-sim", "--policy", "homo", "--jobs", "6"]) == 0
        out = capsys.readouterr().out
        assert "easyscale-homo" in out
        assert "plan cache" in out  # companion fast-path stats surface

    def test_trace_sim_cores_agree(self, capsys):
        assert main(["trace-sim", "--policy", "heter", "--jobs", "5",
                     "--core", "heap"]) == 0
        heap_out = capsys.readouterr().out
        assert main(["trace-sim", "--policy", "heter", "--jobs", "5",
                     "--core", "reference"]) == 0
        assert capsys.readouterr().out == heap_out

    def test_trace_sim_yarn_has_no_cache_stats(self, capsys):
        assert main(["trace-sim", "--policy", "yarn", "--jobs", "4"]) == 0
        assert "plan cache" not in capsys.readouterr().out


class TestObsCommands:
    @pytest.fixture
    def trace_file(self, tmp_path):
        from repro.obs.trace import SpanTracer

        tracer = SpanTracer(clock="sim")
        with tracer.span("engine.global_step", est=2.0, step=0):
            with tracer.span("worker.local_step", est=1.0, vrank=0):
                pass
        tracer.instant("engine.scale_event", ts=0.5, gpus=["V100"])
        path = tmp_path / "run.jsonl"
        tracer.save(str(path))
        return str(path)

    @pytest.fixture
    def audit_pair(self, tmp_path):
        from repro.obs.audit import AuditRecord, AuditTrail

        paths = []
        for name, fp in (("a", "same"), ("b", "flipped")):
            path = tmp_path / f"{name}.jsonl"
            with AuditTrail(str(path)) as trail:
                trail.record(
                    AuditRecord(step=0, params="x", buckets={"0": "y"}, policy="D1")
                )
                trail.record(
                    AuditRecord(step=1, params=fp, buckets={"0": fp}, policy="D1")
                )
            paths.append(str(path))
        return paths

    def test_summarize(self, trace_file, capsys):
        assert main(["obs", "summarize", trace_file]) == 0
        out = capsys.readouterr().out
        assert "2 spans, 1 instants" in out
        assert "engine.global_step" in out and "worker.local_step" in out

    def test_export_trace(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "chrome.json"
        assert main(["obs", "export-trace", trace_file, "-o", str(out_path)]) == 0
        chrome = json.loads(out_path.read_text())
        names = {e["name"] for e in chrome["traceEvents"]}
        assert {"engine.global_step", "worker.local_step", "engine.scale_event"} <= names

    def test_export_trace_default_output(self, trace_file, capsys):
        assert main(["obs", "export-trace", trace_file]) == 0
        assert "chrome.json" in capsys.readouterr().out

    def test_diff_audit_divergent(self, audit_pair, capsys):
        assert main(["obs", "diff-audit", *audit_pair]) == 4
        out = capsys.readouterr().out
        assert "first divergence at step 1" in out

    def test_diff_audit_identical(self, audit_pair, capsys):
        assert main(["obs", "diff-audit", audit_pair[0], audit_pair[0]]) == 0
        assert "no divergence" in capsys.readouterr().out

    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])

    @pytest.fixture
    def bundle_file(self, tmp_path):
        from repro.obs import flightrec

        rec = flightrec.FlightRecorder(directory=str(tmp_path))
        rec.set_context(determinism="D1+D2", dialects=["v100", "t4"])
        rec.record("engine.step", step=0)
        rec.record("fault.detect", fault="worker_crash", step=1, worker=1)
        rec.note_audit({"step": 0, "params": "p", "buckets": {"0": "b"},
                        "rng": "r", "loader": {}, "policy": "D1+D2",
                        "dialects": ["v100", "t4"]})
        return rec.dump("test", crash={"step": 1, "worker": 1,
                                       "kind": "worker_crash", "dialect": "t4"})

    def test_postmortem_renders_bundle(self, bundle_file, capsys):
        assert main(["obs", "postmortem", bundle_file]) == 0
        out = capsys.readouterr().out
        assert "worker_crash" in out and "dialect=t4" in out
        assert "D1+D2" in out

    def test_postmortem_tail_accepted(self, bundle_file, capsys):
        assert main(["obs", "postmortem", bundle_file, "--tail", "1"]) == 0
        out = capsys.readouterr().out
        assert "fault.detect" in out
        assert "engine.step" not in out  # trimmed by --tail 1

    def test_postmortem_missing_file_exit_2(self, capsys):
        assert main(["obs", "postmortem", "no-such-bundle.json"]) == 2
        assert capsys.readouterr().err

    def test_postmortem_garbage_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["obs", "postmortem", str(bad)]) == 2
        notjson = tmp_path / "audit.jsonl"
        notjson.write_text('{"step": 0, "params": "x"}\n')
        assert main(["obs", "postmortem", str(notjson)]) == 2

    def test_why_identical_exit_0(self, audit_pair, capsys):
        assert main(["obs", "why", audit_pair[0], audit_pair[0]]) == 0
        assert "identical" in capsys.readouterr().out

    def test_why_divergent_exit_4_with_attribution_text(self, audit_pair, capsys):
        assert main(["obs", "why", *audit_pair]) == 4
        out = capsys.readouterr().out
        assert "diverged at step 1" in out

    def test_why_attributes_dialect_swap(self, tmp_path, capsys):
        from repro.obs.audit import AuditRecord, AuditTrail

        paths = []
        for name, dialects in (("a", ("v100", "v100")), ("b", ("v100", "t4"))):
            path = tmp_path / f"{name}.jsonl"
            with AuditTrail(str(path)) as trail:
                for s in range(4):
                    swapped = s >= 2 and dialects[1] == "t4"
                    trail.record(AuditRecord(
                        step=s,
                        params="swap" if swapped else "x",
                        buckets={"0": "swap" if swapped else "y"},
                        policy="D1",
                        dialects=dialects if swapped else ("v100", "v100"),
                    ))
            paths.append(str(path))
        assert main(["obs", "why", *paths, "--window", "4"]) == 4
        out = capsys.readouterr().out
        assert "step 2" in out and "dialect" in out

    def test_why_accepts_bundles(self, bundle_file, capsys):
        assert main(["obs", "why", bundle_file, bundle_file]) == 0
        assert "identical" in capsys.readouterr().out

    def test_why_missing_input_exit_2(self, audit_pair, capsys):
        assert main(["obs", "why", audit_pair[0], "no-such.jsonl"]) == 2
        assert capsys.readouterr().err

    def test_missing_file_is_a_clean_error(self, capsys):
        assert main(["obs", "summarize", "no-such-trace.jsonl"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_malformed_trace_reports_location(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "meta", "version": 1, "clock": "wall"}\njunk\n{}\n')
        assert main(["obs", "summarize", str(bad)]) == 2
        assert "bad.jsonl:2" in capsys.readouterr().err

    def test_train_writes_trace_and_audit(self, tmp_path, capsys):
        from repro import obs

        trace = tmp_path / "train.jsonl"
        audit = tmp_path / "audit.jsonl"
        code = main(
            [
                "train",
                "resnet18",
                "--schedule", "2xV100", "1xV100",
                "--steps-per-stage", "2",
                "--samples", "64",
                "--ests", "2",
                "--batch-size", "4",
                "--trace", str(trace),
                "--audit", str(audit),
            ]
        )
        assert code == 0
        assert not obs.is_enabled()  # CLI resets the global switch
        loaded = obs.SpanTracer.load(str(trace))
        cats = {r["cat"] for r in loaded.records}
        assert {"engine", "worker", "comm"} <= cats
        trail = obs.AuditTrail.load(str(audit))
        assert [r.step for r in trail.records] == [0, 1, 2, 3]

    def test_trace_sim_writes_merged_timeline(self, tmp_path, capsys):
        from repro import obs

        trace = tmp_path / "sim.jsonl"
        assert main(
            ["trace-sim", "--policy", "homo", "--jobs", "4", "--trace", str(trace)]
        ) == 0
        loaded = obs.SpanTracer.load(str(trace))
        kinds = {r["name"] for r in loaded.records}
        assert "job_submit" in kinds and "job_done" in kinds
        assert any(r["name"].startswith("job:") for r in loaded.records)


class TestProfilerCli:
    def test_train_profile_prints_summary(self, capsys):
        code = main(
            [
                "train",
                "shufflenetv2",
                "--schedule", "1xV100+1xT4",
                "--steps-per-stage", "4",
                "--samples", "64",
                "--ests", "2",
                "--batch-size", "4",
                "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "profile over" in out
        assert "calibrated capability (mini-batches/s)" in out
        assert "v100" in out and "t4" in out

    def test_train_telemetry_records_profile(self, tmp_path, capsys):
        telemetry = tmp_path / "run.jsonl"
        code = main(
            [
                "train",
                "shufflenetv2",
                "--schedule", "1xV100",
                "--steps-per-stage", "3",
                "--samples", "64",
                "--ests", "2",
                "--batch-size", "4",
                "--profile",
                "--telemetry", str(telemetry),
            ]
        )
        assert code == 0
        kinds = [json.loads(line)["kind"] for line in telemetry.read_text().splitlines()]
        assert "profile" in kinds and "step" in kinds
        capsys.readouterr()
        assert main(["obs", "summarize", str(telemetry)]) == 0
        out = capsys.readouterr().out
        assert "profile over" in out
        assert "calibrated capability" in out

    def test_obs_profile_replays_a_train_trace(self, tmp_path, capsys):
        trace = tmp_path / "train.jsonl"
        main(
            [
                "train",
                "shufflenetv2",
                "--schedule", "1xV100+1xT4",
                "--steps-per-stage", "4",
                "--samples", "64",
                "--ests", "2",
                "--batch-size", "4",
                "--trace", str(trace),
            ]
        )
        capsys.readouterr()
        summary = tmp_path / "profile.json"
        code = main(
            [
                "obs", "profile", str(trace),
                "--workload", "shufflenetv2",
                "--window", "2",
                "--json", str(summary),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "profile over" in out
        payload = json.loads(summary.read_text())
        assert payload["workers"] and payload["calibration"]["observed"]

    def test_obs_profile_without_worker_spans_is_exit_2(self, tmp_path, capsys):
        from repro.obs.trace import SpanTracer

        tracer = SpanTracer(clock="sim")
        tracer.instant("engine.scale_event", ts=0.5, gpus=["V100"])
        path = tmp_path / "empty.jsonl"
        tracer.save(str(path))
        assert main(["obs", "profile", str(path)]) == 2
        assert "no worker.local_step spans" in capsys.readouterr().err

    def test_obs_profile_missing_file_is_exit_2(self, capsys):
        assert main(["obs", "profile", "no-such.jsonl"]) == 2

    def test_obs_report_from_trace_sim_events(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        assert main(
            ["trace-sim", "--policy", "heter", "--jobs", "4", "--events", str(events)]
        ) == 0
        capsys.readouterr()
        html = tmp_path / "report.html"
        summary = tmp_path / "report.json"
        code = main(
            ["obs", "report", str(events), "--html", str(html), "--json", str(summary)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "idle GPU-seconds" in out
        assert "allocation timeline" in out
        text = html.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "idle GPU-seconds" in text
        assert json.loads(summary.read_text())["jobs"] == 4

    def test_obs_report_on_span_trace_uses_sched_instants(self, tmp_path, capsys):
        trace = tmp_path / "sim.jsonl"
        assert main(
            ["trace-sim", "--policy", "homo", "--jobs", "4", "--trace", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(["obs", "report", str(trace)]) == 0
        assert "allocation timeline" in capsys.readouterr().out

    def test_obs_report_without_events_is_exit_2(self, tmp_path, capsys):
        path = tmp_path / "nothing.jsonl"
        path.write_text("")
        assert main(["obs", "report", str(path)]) == 2
        assert "no simulator events" in capsys.readouterr().err

    def test_trace_sim_calibrate_missing_file_is_exit_2(self, capsys):
        assert main(
            ["trace-sim", "--policy", "homo", "--jobs", "2", "--calibrate", "nope.json"]
        ) == 2

    def test_trace_sim_calibrate_malformed_is_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "cal.json"
        bad.write_text('{"scale": {"t4": -1.0}}')
        assert main(
            ["trace-sim", "--policy", "homo", "--jobs", "2", "--calibrate", str(bad)]
        ) == 2

    def test_trace_sim_calibrate_applies_scales(self, tmp_path, capsys):
        cal = tmp_path / "cal.json"
        cal.write_text('{"scale": {"t4": 0.5}}')
        assert main(
            ["trace-sim", "--policy", "all", "--jobs", "4", "--calibrate", str(cal)]
        ) == 0
        out = capsys.readouterr().out
        assert "calibrated capability scales" in out
        assert "easyscale-homo" in out and "easyscale-heter" in out

    def test_profile_flag_defaults_off(self):
        args = build_parser().parse_args(["train", "resnet18"])
        assert not args.profile
        assert args.telemetry is None


class TestSelfTestCommand:
    def test_self_test_passes_on_healthy_install(self, capsys):
        from repro.cli import main

        assert main(["self-test"]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out
        assert out.count("PASS") >= 5
