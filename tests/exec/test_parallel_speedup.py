"""Throughput benchmark for the process pool (tier-2, ``-m parallel``).

The pool only earns its keep when the per-step numpy compute dominates the
state-shipping overhead and real cores exist to run workers concurrently.
This benchmark pins the acceptance bar: with 4 pool workers on a machine
with at least 4 CPUs, a 4-worker ResNet job steps at least 2x faster
than the serial loop — the shared-memory transport removes the pickled
state broadcast and gradient return that capped the old bar at 1.5x.
Skipped (not failed) on smaller machines — the bitwise contract is
covered by the functional suites regardless.
"""

import os
import time

import pytest

from repro.core import (
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
)
from repro.exec import ProcessPoolBackend, SerialBackend
from repro.hw import gpu_type
from repro.models import get_workload
from repro.utils.fingerprint import fingerprint_state_dict
from tests.conftest import sgd_factory

pytestmark = pytest.mark.parallel

MEASURED_STEPS = 8
REQUIRED_SPEEDUP = 2.0


def _run(backend, steps):
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(256, seed=7)
    config = EasyScaleJobConfig(
        num_ests=4, seed=0, batch_size=32,
        determinism=determinism_from_label("D1+D2"),
    )
    engine = EasyScaleEngine(
        spec, dataset, config, sgd_factory(),
        WorkerAssignment.balanced([gpu_type("V100")] * 4, 4),
        backend=backend,
    )
    engine.train_steps(1)  # warm-up: pool creation, replica builds
    t0 = time.perf_counter()
    engine.train_steps(steps)
    elapsed = time.perf_counter() - t0
    return elapsed, fingerprint_state_dict(engine.model.state_dict())


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="pool speedup needs at least 4 CPU cores",
)
def test_pool_speedup_on_resnet():
    serial_s, serial_fp = _run(SerialBackend(), MEASURED_STEPS)
    with ProcessPoolBackend(max_workers=4, transport="shm") as backend:
        pool_s, pool_fp = _run(backend, MEASURED_STEPS)
    assert pool_fp == serial_fp  # faster, and still bitwise-identical
    speedup = serial_s / pool_s
    assert speedup >= REQUIRED_SPEEDUP, (
        f"pool speedup {speedup:.2f}x below the {REQUIRED_SPEEDUP}x bar "
        f"(serial {serial_s:.3f}s, pool {pool_s:.3f}s over {MEASURED_STEPS} steps)"
    )
