"""Chaos sweep under the process pool (tier-2, ``-m parallel``).

The fault-tolerance acceptance property re-run with real parallelism: for
seeded random fault plans, a D1+D2 job on a V100+T4 pool supervised by the
:class:`~repro.faults.controller.ResilienceController` and executed by a
:class:`~repro.exec.ProcessPoolBackend` finishes with an audit trail
identical to the *serial fault-free* reference and a bitwise-identical
model.  Also exercises the ``spawn`` start method, which forces the
kernel-registry rehydration path (nothing is inherited from the parent).
"""

import pytest

from repro import obs
from repro.core import (
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
)
from repro.exec import ProcessPoolBackend
from repro.faults import ResilienceController, random_plan
from repro.hw import gpu_type
from repro.models import get_workload
from repro.tensor.kernels import (
    _matmul_splitk,
    register_matmul_variant,
    unregister_matmul_variant,
)
from repro.utils.fingerprint import fingerprint_state_dict
from tests.conftest import sgd_factory
from tests.exec.test_backends import _CustomKernelConfig

pytestmark = pytest.mark.parallel

TOTAL_STEPS = 12
NUM_SEEDS = 8
POOL = ["V100", "V100", "T4", "T4"]


@pytest.fixture(scope="module")
def env():
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(64, seed=7)
    config = EasyScaleJobConfig(
        num_ests=4, seed=0, batch_size=8,
        determinism=determinism_from_label("D1+D2"),
    )
    return spec, dataset, config


@pytest.fixture(scope="module")
def backend():
    with ProcessPoolBackend(max_workers=2) as pool:
        yield pool


@pytest.fixture(scope="module")
def reference(env):
    """The serial fault-free run: audit trail + final fingerprint."""
    spec, dataset, config = env
    obs.configure(enabled=True, audit=True)
    try:
        engine = EasyScaleEngine(
            spec, dataset, config, sgd_factory(),
            WorkerAssignment.balanced([gpu_type(g) for g in POOL], 4),
        )
        engine.train_steps(TOTAL_STEPS)
        trail = obs.audit_trail()
        fingerprint = fingerprint_state_dict(engine.model.state_dict())
    finally:
        obs.reset()
    return trail, fingerprint


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_fault_plans_recover_bitwise_under_pool(env, backend, reference, seed):
    spec, dataset, config = env
    ref_trail, ref_fingerprint = reference
    plan = random_plan(seed, horizon_steps=TOTAL_STEPS, num_gpus=len(POOL))

    obs.configure(enabled=True, audit=True, audit_rewind=True)
    try:
        controller = ResilienceController(
            spec, dataset, config, sgd_factory(), list(POOL), plan,
            snapshot_interval=4, backend=backend,
        )
        stats = controller.run(TOTAL_STEPS)
        trail = obs.audit_trail()
    finally:
        obs.reset()

    diff = obs.diff_audits(ref_trail, trail)
    assert diff.identical, (
        f"plan seed {seed} diverged under the pool:\n"
        f"{plan.describe()}\n{diff.describe()}"
    )
    assert fingerprint_state_dict(
        controller.engine.model.state_dict()
    ) == ref_fingerprint
    assert stats.faults_injected == len(plan)


def _spawn_gemm(a, b):
    """Module-level so spawn children can import it by reference."""
    return _matmul_splitk(a, b, block=8)


def test_spawn_rehydrates_custom_kernels(env):
    """Under ``spawn`` nothing is inherited: the shipped-variant path must
    install the custom GEMM in every fresh child."""
    spec, dataset, _ = env
    config = EasyScaleJobConfig(
        num_ests=2, seed=0, batch_size=8,
        determinism=_CustomKernelConfig(
            static=True, elastic=True, heterogeneous=True
        ),
    )
    register_matmul_variant("test_splitk8", _spawn_gemm)
    try:
        serial = EasyScaleEngine(
            spec, dataset, config, sgd_factory(),
            WorkerAssignment.balanced(
                [gpu_type("V100"), gpu_type("T4")], 2
            ),
        )
        serial.train_steps(2)
        with ProcessPoolBackend(max_workers=2, start_method="spawn") as backend:
            assert backend.start_method == "spawn"
            pooled = EasyScaleEngine(
                spec, dataset, config, sgd_factory(),
                WorkerAssignment.balanced(
                    [gpu_type("V100"), gpu_type("T4")], 2
                ),
                backend=backend,
            )
            pooled.train_steps(2)
        assert fingerprint_state_dict(
            pooled.model.state_dict()
        ) == fingerprint_state_dict(serial.model.state_dict())
    finally:
        unregister_matmul_variant("test_splitk8")
