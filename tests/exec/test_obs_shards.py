"""Cross-process observability: ObsConfig bootstrap, shards, merged traces.

The pool backend's children are separate processes, so the parent's
module-level ``repro.obs`` switch does not reach them for free.  The
contract under test: the parent ships an :class:`~repro.obs.ObsConfig`
snapshot with every task, children bootstrap from it and write per-pid
span/metric shards, and the parent folds those shards back so one saved
trace covers every process that did work — with each child on its own
Chrome process lane and its metrics keyed apart by a ``pid`` label.
"""

import json
import os

import pytest

from repro import obs
from repro.core import (
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
)
from repro.exec import ProcessPoolBackend
from repro.hw import gpu_type
from repro.models import get_workload
from repro.obs.trace import append_shard_records, shard_span_path
from tests.conftest import sgd_factory

POOL = ["V100", "V100", "T4", "T4"]


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture(scope="module")
def env():
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(64, seed=7)
    config = EasyScaleJobConfig(
        num_ests=4, seed=0, batch_size=8,
        determinism=determinism_from_label("D1+D2"),
    )
    return spec, dataset, config


# ---------------------------------------------------------------------------
# ObsConfig snapshot / bootstrap
# ---------------------------------------------------------------------------


class TestConfigSnapshot:
    def test_snapshot_carries_the_switch_and_shard_dir(self, tmp_path):
        obs.configure(enabled=True)
        snap = obs.config_snapshot(shard_dir=str(tmp_path))
        assert snap.enabled and snap.shard_dir == str(tmp_path)
        assert snap.clock == "wall"

    def test_configure_from_is_idempotent_per_generation(self, tmp_path):
        obs.configure(enabled=True)
        snap = obs.config_snapshot(shard_dir=str(tmp_path))
        obs.configure_from(snap)
        tracer = obs.tracer()
        with obs.span("first"):
            pass
        obs.configure_from(snap)  # same generation: must NOT reinstall
        assert obs.tracer() is tracer
        assert len(obs.tracer()) == 1

    def test_configure_from_none_disables_a_bootstrapped_child(self, tmp_path):
        obs.configure(enabled=True)
        obs.configure_from(obs.config_snapshot(shard_dir=str(tmp_path)))
        assert obs.is_enabled()
        obs.configure_from(None)  # parent turned obs off
        assert not obs.is_enabled()

    def test_snapshot_is_picklable(self, tmp_path):
        import pickle

        obs.configure(enabled=True)
        snap = obs.config_snapshot(shard_dir=str(tmp_path))
        assert pickle.loads(pickle.dumps(snap)) == snap


# ---------------------------------------------------------------------------
# flush / collect round trip (single process, synthetic shards)
# ---------------------------------------------------------------------------


class TestFlushAndCollect:
    def test_flush_writes_pid_stamped_spans_and_metrics(self, tmp_path):
        obs.configure(enabled=True, shard_dir=str(tmp_path))
        with obs.span("child_work"):
            pass
        obs.metrics().counter("work_total").inc(3)
        path = obs.flush_shard()
        pid = os.getpid()
        assert path == shard_span_path(str(tmp_path), pid)
        rows = [json.loads(l) for l in open(path, encoding="utf-8")]
        assert [r["name"] for r in rows] == ["child_work"]
        assert rows[0]["pid"] == pid
        metrics_payload = json.load(
            open(tmp_path / f"shard-{pid}.metrics.json", encoding="utf-8")
        )
        assert metrics_payload["pid"] == pid
        assert any(row["name"] == "work_total" for row in metrics_payload["state"])

    def test_reflush_does_not_duplicate_spans(self, tmp_path):
        obs.configure(enabled=True, shard_dir=str(tmp_path))
        with obs.span("once"):
            pass
        path = obs.flush_shard()
        obs.flush_shard()  # nothing new emitted: watermark holds
        rows = [json.loads(l) for l in open(path, encoding="utf-8")]
        assert len(rows) == 1

    def test_flush_without_shard_dir_is_noop(self):
        obs.configure(enabled=True)
        assert obs.flush_shard() is None

    def test_collect_merges_and_consumes(self, tmp_path):
        obs.configure(enabled=True)
        # forge two children's shards
        for fake_pid in (111, 222):
            append_shard_records(
                shard_span_path(str(tmp_path), fake_pid),
                [{"kind": "span", "name": "child_step", "path": "child_step",
                  "t0": 0.0, "t1": 1.0}],
                pid=fake_pid,
            )
            with open(tmp_path / f"shard-{fake_pid}.metrics.json", "w",
                      encoding="utf-8") as fh:
                json.dump({"pid": fake_pid, "state": [
                    {"kind": "counter", "name": "child_steps_total",
                     "labels": {}, "value": 2},
                ]}, fh)
        merged = obs.collect_shards(str(tmp_path))
        assert merged == 2
        pids = {r.get("pid") for r in obs.tracer().records}
        assert pids == {111, 222}
        counters = obs.metrics().snapshot()["counters"]
        assert counters['child_steps_total{pid="111"}'] == 2
        assert counters['child_steps_total{pid="222"}'] == 2
        # consumed: a second collect finds nothing to merge
        assert obs.collect_shards(str(tmp_path)) == 0
        assert len(obs.tracer()) == 2


# ---------------------------------------------------------------------------
# the real thing: a pool run whose merged trace spans >= 2 child pids
# ---------------------------------------------------------------------------


def test_pool_run_merges_spans_from_multiple_children(env):
    spec, dataset, config = env
    obs.configure(enabled=True)
    with ProcessPoolBackend(max_workers=2) as backend:
        engine = EasyScaleEngine(
            spec, dataset, config, sgd_factory(),
            WorkerAssignment.balanced([gpu_type(n) for n in POOL], 4),
            backend=backend,
        )
        engine.train_steps(2)
        shard_dir = backend._shard_dir
        assert shard_dir is not None and os.path.isdir(shard_dir)
    # close() collected the shards and removed the scratch dir
    assert backend._shard_dir is None
    assert not os.path.isdir(shard_dir)

    records = obs.tracer().records
    child_spans = [r for r in records if r["name"] == "exec.child_local_step"]
    child_pids = {r["pid"] for r in child_spans}
    assert len(child_pids) >= 2  # sticky slots: one process lane per worker
    # every EST's local step of every global step appears exactly once
    assert len(child_spans) == 4 * 2
    # child metrics arrive keyed by pid, summing to the dispatched steps
    counters = obs.metrics().snapshot()["counters"]
    child_counts = {
        key: value for key, value in counters.items()
        if key.startswith("exec_child_local_steps_total")
    }
    assert all('pid="' in key for key in child_counts)
    assert sum(child_counts.values()) == 4 * 2

    # the merged record set exports as one Chrome trace with a lane per pid
    chrome = obs.tracer().to_chrome_trace()
    lanes = {e["args"]["name"] for e in chrome["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert "parent" in lanes
    assert sum(1 for lane in lanes if lane.startswith("pool worker pid ")) >= 2


def test_pool_with_obs_disabled_leaves_no_shards(env):
    spec, dataset, config = env
    with ProcessPoolBackend(max_workers=2) as backend:
        engine = EasyScaleEngine(
            spec, dataset, config, sgd_factory(),
            WorkerAssignment.balanced([gpu_type(n) for n in POOL], 4),
            backend=backend,
        )
        engine.train_steps(1)
        assert backend._shard_dir is None  # never created
        assert backend.collect_observability() == 0
