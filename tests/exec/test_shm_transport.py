"""Shared-memory transport: slab plans, lifecycle, and pool integration.

The transport's contract is carried by three layers, each pinned here:

- :class:`SlabPlan` is pure arithmetic — aligned offsets, full-bucket
  sizing, a one-writer ownership map, and a key that changes whenever
  any offset could.
- :class:`ShmTransport` owns the slabs — rebuild on key change, unlink
  exactly once, loud failure when the model's state plan goes stale.
- ``ProcessPoolBackend(transport="shm")`` must be bitwise-identical to
  both the pickle transport and the serial loop, under commit cadences
  too, with the deferred write-back flushed (or discarded) at exactly
  the boundaries the engine promises.
"""

import pickle
import subprocess
import sys
import textwrap

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.comm.bucketing import BucketAssignment
from repro.core import (
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
)
from repro.exec import ProcessPoolBackend, SerialBackend
from repro.exec import shm as shm_mod
from repro.exec.shm import ShmTransport, SlabPlan, state_specs_of
from repro.hw import gpu_type
from repro.models import get_workload
from repro.utils.fingerprint import fingerprint_state_dict
from tests.conftest import sgd_factory


def _plan(buckets, sizes, state, vranks=(0,)):
    return SlabPlan(
        BucketAssignment([list(b) for b in buckets]).layout_key(),
        sizes,
        state_specs_of(state),
        list(vranks),
    )


def _detach_all():
    """Drop this process's child-side attachment cache."""
    shm_mod._evict_stale([])


# ---------------------------------------------------------------------------
# SlabPlan arithmetic
# ---------------------------------------------------------------------------


class TestSlabPlan:
    def test_offsets_are_aligned_and_disjoint(self):
        state = {
            "a": np.zeros(3, np.float32),       # 12 bytes -> padded to 16
            "b": np.zeros((), np.int64),        # 8 bytes
            "c": np.zeros((2, 2), np.float32),  # 16 bytes
        }
        plan = _plan([["a", "c"]], {"a": 3, "c": 4}, state)
        offsets = plan.state_offsets
        assert offsets["a"] == 0
        assert offsets["b"] == 16  # 12 rounded up to the 8-byte grid
        assert offsets["c"] == 24
        assert plan.state_nbytes == 40
        assert all(off % 8 == 0 for off in offsets.values())

    def test_grad_regions_sized_for_full_buckets(self):
        state = {"w": np.zeros(5, np.float32)}
        plan = _plan([["w", "v"], ["u"]], {"w": 5, "v": 2, "u": 3}, state)
        assert plan.bucket_elems == [7, 3]
        assert plan.grad_offsets == [0, 32]  # 7*4=28 -> 32
        assert plan.num_buckets == 2

    def test_ownership_is_one_writer_per_region(self):
        state = {"w": np.zeros(1, np.float32)}
        plan = _plan([["w"]], {"w": 1}, state, vranks=(0, 2))
        assert plan.ownership() == {
            "state": "parent",
            "grad[0]": "child(vrank=0)",
            "grad[2]": "child(vrank=2)",
        }

    def test_key_tracks_layout_state_and_vranks(self):
        state = {"w": np.zeros(2, np.float32)}
        base = _plan([["w"]], {"w": 2}, state)
        assert base.key() == _plan([["w"]], {"w": 2}, state).key()
        relaid = _plan([["w"]], {"w": 2}, state, vranks=(0, 1))
        assert base.key() != relaid.key()
        retyped = _plan([["w"]], {"w": 2}, {"w": np.zeros(2, np.float64)})
        assert base.key() != retyped.key()

    def test_grad_view_bounds(self):
        state = {"w": np.zeros(4, np.float32)}
        plan = _plan([["w"]], {"w": 4}, state)
        buf = bytearray(plan.grad_nbytes)
        with pytest.raises(IndexError):
            plan.grad_view(memoryview(buf), 1, 4, writable=True)
        with pytest.raises(ValueError):
            plan.grad_view(memoryview(buf), 0, 5, writable=True)

    def test_empty_vranks_rejected(self):
        with pytest.raises(ValueError, match="virtual rank"):
            _plan([["w"]], {"w": 1}, {"w": np.zeros(1, np.float32)}, vranks=())


# ---------------------------------------------------------------------------
# ShmTransport lifecycle
# ---------------------------------------------------------------------------


class TestShmTransport:
    def test_ensure_is_idempotent_until_key_changes(self):
        state = {"w": np.arange(4, dtype=np.float32)}
        transport = ShmTransport()
        try:
            plan = _plan([["w"]], {"w": 4}, state)
            assert transport.ensure(plan) is True
            assert transport.ensure(_plan([["w"]], {"w": 4}, state)) is False
            assert transport.rebuilds == 1
            # a layout change re-keys and rebuilds, old slabs are unlinked
            old_name = transport.descriptor()["state_name"]
            relaid = _plan([["w"], []], {"w": 4}, state)
            assert transport.ensure(relaid) is True
            assert transport.rebuilds == 2
            assert transport.descriptor()["state_name"] != old_name
            from multiprocessing import shared_memory

            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=old_name)
        finally:
            transport.close()

    def test_close_unlinks_exactly_once(self):
        state = {"w": np.zeros(2, np.float32)}
        transport = ShmTransport()
        transport.ensure(_plan([["w"]], {"w": 2}, state))
        names = [transport.descriptor()["state_name"]] + list(
            transport.descriptor()["grad_names"].values()
        )
        transport.close()
        transport.close()  # idempotent, no double-unlink error
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        with pytest.raises(RuntimeError, match="closed"):
            transport.ensure(_plan([["w"]], {"w": 2}, state))

    def test_write_state_rejects_stale_plan(self):
        state = {"w": np.arange(4, dtype=np.float32)}
        transport = ShmTransport()
        try:
            transport.ensure(_plan([["w"]], {"w": 4}, state))
            with pytest.raises(ValueError, match="stale"):
                transport.write_state({"w": np.zeros(5, np.float32)})
            with pytest.raises(ValueError, match="stale"):
                transport.write_state({"w": np.zeros(4, np.float64)})
        finally:
            transport.close()

    def test_state_roundtrip_is_byte_identical(self):
        state = {
            "w": np.arange(6, dtype=np.float32).reshape(2, 3),
            "n": np.array(7, dtype=np.int64),
        }
        transport = ShmTransport()
        try:
            transport.ensure(_plan([["w"]], {"w": 6}, state))
            assert transport.write_state(state) == 32  # 24 + 8 payload bytes
            views = shm_mod.child_read_state(transport.descriptor())
            for name, value in state.items():
                assert views[name].tobytes() == value.tobytes()
                assert not views[name].flags.writeable
        finally:
            _detach_all()
            transport.close()


# ---------------------------------------------------------------------------
# slab round trip == flatten_bucket + pickle (hypothesis)
# ---------------------------------------------------------------------------


@given(
    sizes=st.lists(st.integers(1, 32), min_size=1, max_size=6),
    present_mask=st.lists(st.booleans(), min_size=6, max_size=6),
    seed=st.integers(0, 1000),
)
@settings(max_examples=30, deadline=None)
def test_slab_roundtrip_matches_flatten_pickle(sizes, present_mask, seed):
    """The slab carries the exact bytes the pickle transport would.

    A random bucket of random-size gradients (some absent, as under
    gradient accumulation edge cases) flattened into the slab and read
    back must be byte-identical to ``flatten_bucket`` + a pickle round
    trip of the same subset.
    """
    rng = np.random.default_rng(seed)
    names = [f"p{i}" for i in range(len(sizes))]
    grads = {
        n: rng.normal(size=s).astype(np.float32) for n, s in zip(names, sizes)
    }
    present = [n for n, keep in zip(names, present_mask) if keep] or names[:1]
    state = {"w": np.zeros(1, np.float32)}
    plan = _plan([names], dict(zip(names, sizes)), state)
    transport = ShmTransport()
    try:
        transport.ensure(plan)
        sub = BucketAssignment([present])
        elems = sum(grads[n].size for n in present)
        view = shm_mod.child_grad_view(transport.descriptor(), 0, 0, elems)
        sub.flatten_bucket_into(0, {n: grads[n] for n in present}, view)
        via_slab = transport.read_bucket(0, 0, elems).tobytes()
        via_pickle = pickle.loads(
            pickle.dumps(sub.flatten_bucket(0, {n: grads[n] for n in present}))
        ).tobytes()
        assert via_slab == via_pickle
    finally:
        _detach_all()
        transport.close()


# ---------------------------------------------------------------------------
# pool integration
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def env():
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(64, seed=7)
    return spec, dataset


def _engine(env, backend, cadence=1, num_ests=2):
    spec, dataset = env
    config = EasyScaleJobConfig(
        num_ests=num_ests, seed=0, batch_size=8,
        determinism=determinism_from_label("D1+D2"),
        batches_per_commit=cadence,
    )
    return EasyScaleEngine(
        spec, dataset, config, sgd_factory(),
        WorkerAssignment.balanced(
            [gpu_type("V100"), gpu_type("T4")], num_ests
        ),
        backend=backend,
    )


class TestPoolIntegration:
    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            ProcessPoolBackend(transport="carrier-pigeon")

    def test_shm_and_pickle_and_serial_are_bitwise_equal(self, env):
        serial = _engine(env, SerialBackend())
        serial.train_steps(3)
        reference = fingerprint_state_dict(serial.model.state_dict())
        for transport in ("shm", "pickle"):
            with ProcessPoolBackend(max_workers=2, transport=transport) as backend:
                engine = _engine(env, backend)
                engine.train_steps(3)
                assert backend.transport == transport
                fp = fingerprint_state_dict(engine.model.state_dict())
            assert fp == reference, f"{transport} diverged from serial"

    def test_commit_cadence_is_bitwise_equal_and_defers(self, env):
        serial = _engine(env, SerialBackend())
        serial.train_steps(4)
        with ProcessPoolBackend(max_workers=2) as backend:
            engine = _engine(env, backend, cadence=3)
            # steps 0 and 1 are mid-cadence: write-back must be pending
            engine.run_global_step()
            engine.run_global_step()
            assert backend._pending_rng
            assert backend._pending_journal
            # step 2 is the cadence boundary, step 3 re-opens deferral;
            # train_steps-equivalent exit flushes the tail
            engine.run_global_step()
            engine.run_global_step()
            backend.commit()
            assert not backend._pending_rng and not backend._pending_journal
            assert fingerprint_state_dict(
                engine.model.state_dict()
            ) == fingerprint_state_dict(serial.model.state_dict())
            # EST RNG streams caught up too, not just parameters
            assert [e.rng.get_state() for e in engine.ests] == [
                e.rng.get_state() for e in serial.ests
            ]

    def test_checkpoint_mid_cadence_flushes(self, env):
        # same cadence config as the pool run: the checkpoint meta records
        # batches_per_commit, and the byte comparison must isolate state
        serial = _engine(env, SerialBackend(), cadence=5)
        serial.train_steps(2)
        serial_ckpt = serial.checkpoint().to_bytes()
        with ProcessPoolBackend(max_workers=2) as backend:
            engine = _engine(env, backend, cadence=5)
            engine.run_global_step()
            engine.run_global_step()
            assert backend._pending_rng
            assert engine.checkpoint().to_bytes() == serial_ckpt
            assert not backend._pending_rng

    def test_restore_discards_pending_writeback(self, env):
        with ProcessPoolBackend(max_workers=2) as backend:
            engine = _engine(env, backend, cadence=5)
            ckpt = engine.checkpoint()
            engine.run_global_step()
            engine.run_global_step()
            assert backend._pending_rng
            spec, dataset = env
            restored = EasyScaleEngine.from_checkpoint(
                spec, dataset, ckpt, sgd_factory(),
                engine.assignment, config=engine.config, backend=backend,
            )
            # the rewind dropped the banked write-back instead of letting
            # a later commit corrupt the restored state
            assert not backend._pending_rng and not backend._pending_journal
            assert restored.global_step == 0

    def test_slabs_survive_reconfigure_and_rekey_on_layout_change(self, env):
        with ProcessPoolBackend(max_workers=2) as backend:
            engine = _engine(env, backend)
            engine.run_global_step()  # arrival-order rebuild happens after
            assert backend._shm is not None
            assert backend._shm.rebuilds == 1
            engine.run_global_step()  # new layout: exactly one re-key
            assert backend._shm.rebuilds == 2
            engine.run_global_step()  # steady state: no churn
            assert backend._shm.rebuilds == 2
            engine = engine.reconfigure(engine.assignment)
            engine.run_global_step()
            # the D1 checkpoint carried the layout: still no slab churn
            assert backend._shm.rebuilds == 2
        assert backend._shm is None  # close() released the slabs

    def test_transport_metrics_and_overlap_spans(self, env):
        obs.configure(enabled=True)
        try:
            with ProcessPoolBackend(max_workers=2) as backend:
                engine = _engine(env, backend)
                engine.train_steps(1)
                registry = obs.metrics()
                assert registry.counter(
                    "exec_shm_bytes_total", direction="broadcast"
                ).value > 0
                assert registry.counter(
                    "exec_shm_bytes_total", direction="gradients"
                ).value > 0
                assert registry.counter(
                    "exec_pickle_bytes_total", payload="state"
                ).value == 0
            records = obs.tracer().records
            assert [r for r in records if r["name"] == "exec.state_broadcast"]
            assert [r for r in records if r["name"] == "exec.overlap_collect"]
            assert [r for r in records if r["name"] == "exec.collect_bucket"]
        finally:
            obs.reset()

    def test_pickle_transport_counts_payload_bytes(self, env):
        obs.configure(enabled=True)
        try:
            with ProcessPoolBackend(max_workers=2, transport="pickle") as backend:
                engine = _engine(env, backend)
                engine.train_steps(1)
                registry = obs.metrics()
                assert registry.counter(
                    "exec_pickle_bytes_total", payload="state"
                ).value > 0
                assert registry.counter(
                    "exec_pickle_bytes_total", payload="gradients"
                ).value > 0
                assert registry.counter(
                    "exec_shm_bytes_total", direction="broadcast"
                ).value == 0
        finally:
            obs.reset()


# ---------------------------------------------------------------------------
# satellite regressions: close()/shard collection and shutdown safety
# ---------------------------------------------------------------------------


def test_close_collects_shards_even_after_obs_disabled(env):
    """Regression: ``close()`` used to gate shard collection on the obs
    switch, silently dropping child spans recorded while it was on."""
    spec, dataset = env
    obs.configure(enabled=True)
    try:
        backend = ProcessPoolBackend(max_workers=2)
        engine = _engine((spec, dataset), backend)
        engine.train_steps(1)
        # flip observability off between the last step and close(): this
        # installs a fresh (empty) tracer, but the children's shards are
        # already on disk and must still be merged into it
        obs.configure(enabled=False)
        assert not obs.tracer().records
        backend.close()
        child_spans = [
            r
            for r in obs.tracer().records
            if r["name"] == "exec.child_local_step"
        ]
        assert child_spans, "child shards were dropped on close()"
    finally:
        obs.reset()


def test_del_during_interpreter_shutdown_is_silent():
    """A backend leaked to interpreter shutdown must not raise through
    half-torn-down module globals (the old ``__del__`` did)."""
    script = textwrap.dedent(
        """
        from repro.core import (
            EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment,
            determinism_from_label,
        )
        from repro.exec import ProcessPoolBackend
        from repro.hw import gpu_type
        from repro.models import get_workload
        from repro.optim import SGD

        spec = get_workload("resnet18")
        dataset = spec.build_dataset(16, seed=0)
        config = EasyScaleJobConfig(
            num_ests=1, seed=0, batch_size=8,
            determinism=determinism_from_label("D1+D2"),
        )
        backend = ProcessPoolBackend(max_workers=1)
        engine = EasyScaleEngine(
            spec, dataset, config,
            lambda m: SGD(m.named_parameters(), lr=0.05, momentum=0.9),
            WorkerAssignment.balanced([gpu_type("V100")], 1),
            backend=backend,
        )
        engine.train_steps(1)
        print("STEP-OK")
        # no close(): the backend object dies with the interpreter
        """
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr
    assert "STEP-OK" in proc.stdout
    assert "Traceback" not in proc.stderr, proc.stderr
    assert "Exception ignored" not in proc.stderr, proc.stderr
