"""Execution backends: the bitwise serial/parallel contract.

The headline acceptance test of the backend abstraction: a heterogeneous
V100+T4 job driven through scale-in/scale-out — and, separately, through a
replayed fault plan — finishes with a ``diff_audits``-clean audit trail and
bitwise-identical model parameters whether the per-worker compute ran in
the calling process (:class:`SerialBackend`) or in a persistent process
pool (:class:`ProcessPoolBackend`).  Tier-1 keeps the pool capped at two
processes; the wider sweeps live under ``-m parallel``.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import (
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
)
from repro.core.determinism import DeterminismConfig
from repro.exec import (
    BACKENDS,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    resolve_backend,
)
from repro.faults import ResilienceController, random_plan
from repro.hw import gpu_type
from repro.models import get_workload
from repro.obs import fingerprint_rng_states
from repro.tensor.kernels import (
    KernelPolicy,
    MATMUL_VARIANTS,
    _matmul_splitk,
    export_matmul_variants,
    register_matmul_variant,
    rehydrate_matmul_variants,
    unregister_matmul_variant,
)
from repro.utils.fingerprint import fingerprint_state_dict
from tests.conftest import sgd_factory

POOL = ["V100", "V100", "T4", "T4"]
TOTAL_STEPS = 9  # 3 per allocation phase below


@pytest.fixture(scope="module")
def env():
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(64, seed=7)
    config = EasyScaleJobConfig(
        num_ests=4, seed=0, batch_size=8,
        determinism=determinism_from_label("D1+D2"),
    )
    return spec, dataset, config


def _assignment(names, num_ests=4):
    return WorkerAssignment.balanced([gpu_type(n) for n in names], num_ests)


# ---------------------------------------------------------------------------
# resolve_backend
# ---------------------------------------------------------------------------


class TestResolveBackend:
    def test_none_is_serial(self):
        assert isinstance(resolve_backend(None), SerialBackend)

    def test_names_resolve(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("process"), ProcessPoolBackend)
        assert isinstance(resolve_backend("pool"), ProcessPoolBackend)
        assert set(BACKENDS) == {"serial", "process", "pool"}

    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="process"):
            resolve_backend("threadpool")

    def test_wrong_type(self):
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_context_manager_closes(self):
        backend = ProcessPoolBackend(max_workers=1)
        with backend as b:
            assert b is backend
        assert backend._pool is None  # close() is safe before first use


# ---------------------------------------------------------------------------
# policy guard: process-global nondeterminism cannot be pooled
# ---------------------------------------------------------------------------


def test_pool_rejects_baseline_policy(env):
    spec, dataset, _ = env
    config = EasyScaleJobConfig(
        num_ests=2, seed=0, batch_size=8,
        determinism=determinism_from_label("BASELINE"),
    )
    with ProcessPoolBackend(max_workers=2) as backend:
        engine = EasyScaleEngine(
            spec, dataset, config, sgd_factory(),
            _assignment(["V100"], num_ests=2), backend=backend,
        )
        with pytest.raises(ValueError, match="disable_autotune"):
            engine.run_global_step()
    # the guard fires before any dispatch: no pool was ever created
    assert backend._pool is None


# ---------------------------------------------------------------------------
# headline: scale-in/scale-out, serial vs pool, bitwise
# ---------------------------------------------------------------------------


def _elastic_run(env, backend):
    """V100x2+T4x2 -> scale-in to V100+T4 -> scale-out back, 3 steps each."""
    spec, dataset, config = env
    obs.configure(enabled=True, audit=True)
    try:
        engine = EasyScaleEngine(
            spec, dataset, config, sgd_factory(),
            _assignment(POOL), backend=backend,
        )
        losses = engine.train_steps(3)
        engine = engine.reconfigure(_assignment(["V100", "T4"]))
        losses += engine.train_steps(3)
        engine = engine.reconfigure(_assignment(POOL))
        losses += engine.train_steps(3)
        trail = obs.audit_trail()
        out = {
            "losses": losses,
            "params": fingerprint_state_dict(engine.model.state_dict()),
            "rng": fingerprint_rng_states(
                [est.rng.get_state() for est in engine.ests]
            ),
            "checkpoint": engine.checkpoint().to_bytes(),
            "trail": trail,
        }
    finally:
        obs.reset()
    return out


@pytest.fixture(scope="module")
def serial_elastic(env):
    return _elastic_run(env, SerialBackend())


def test_headline_elastic_bitwise_across_backends(env, serial_elastic):
    with ProcessPoolBackend(max_workers=2) as backend:
        pooled = _elastic_run(env, backend)
    diff = obs.diff_audits(serial_elastic["trail"], pooled["trail"])
    assert diff.identical, diff.describe()
    assert pooled["losses"] == serial_elastic["losses"]
    assert pooled["params"] == serial_elastic["params"]
    # RNG streams advanced identically in the children and were written back
    assert pooled["rng"] == serial_elastic["rng"]
    # the full checkpoint (params, optimizer, EST contexts, loader cursor)
    # is byte-identical — state write-back is complete, not just the model
    assert pooled["checkpoint"] == serial_elastic["checkpoint"]


def test_pool_survives_reconfigure_with_one_pool(env):
    """reconfigure() rebuilds the engine but reuses the same backend."""
    with ProcessPoolBackend(max_workers=2) as backend:
        spec, dataset, config = env
        engine = EasyScaleEngine(
            spec, dataset, config, sgd_factory(),
            _assignment(POOL), backend=backend,
        )
        engine.train_steps(1)
        pool_before = backend._pool
        assert pool_before is not None
        engine = engine.reconfigure(_assignment(["V100", "T4"]))
        assert engine.backend is backend
        engine.train_steps(1)
        assert backend._pool is pool_before


# ---------------------------------------------------------------------------
# headline: replayed fault plan, serial vs pool, bitwise
# ---------------------------------------------------------------------------


def _fault_run(env, backend, seed):
    spec, dataset, config = env
    plan = random_plan(seed, horizon_steps=TOTAL_STEPS, num_gpus=len(POOL))
    obs.configure(enabled=True, audit=True, audit_rewind=True)
    try:
        controller = ResilienceController(
            spec, dataset, config, sgd_factory(), list(POOL), plan,
            snapshot_interval=4, backend=backend,
        )
        stats = controller.run(TOTAL_STEPS)
        trail = obs.audit_trail()
        fingerprint = fingerprint_state_dict(
            controller.engine.model.state_dict()
        )
    finally:
        obs.reset()
    assert stats.faults_injected == len(plan)
    return trail, fingerprint


def test_headline_fault_plan_replay_bitwise(env):
    ref_trail, ref_fingerprint = _fault_run(env, SerialBackend(), seed=5)
    with ProcessPoolBackend(max_workers=2) as backend:
        trail, fingerprint = _fault_run(env, backend, seed=5)
    diff = obs.diff_audits(ref_trail, trail)
    assert diff.identical, diff.describe()
    assert fingerprint == ref_fingerprint


# ---------------------------------------------------------------------------
# kernel-registry rehydration (custom D2 kernels in pool children)
# ---------------------------------------------------------------------------


def _test_gemm(a, b):
    """Module-level so pool children can unpickle it by reference."""
    return _matmul_splitk(a, b, block=8)


class _CustomKernelConfig(DeterminismConfig):
    """D1+D2 with the GEMM routed through a user-registered variant."""

    @property
    def kernel_policy(self):
        return KernelPolicy(hardware_agnostic=True, custom_kernel="test_splitk8")


def test_export_rehydrate_roundtrip():
    register_matmul_variant("test_splitk8", _test_gemm)
    try:
        exported = export_matmul_variants()
        assert exported["test_splitk8"] is _test_gemm
        assert "v100" not in exported and "agnostic" not in exported
        unregister_matmul_variant("test_splitk8")
        assert "test_splitk8" not in MATMUL_VARIANTS
        rehydrate_matmul_variants(exported)
        assert MATMUL_VARIANTS["test_splitk8"] is _test_gemm
        # built-in dialects are never overwritten by shipped variants
        rehydrate_matmul_variants({"v100": _test_gemm})
        assert MATMUL_VARIANTS["v100"] is not _test_gemm
    finally:
        unregister_matmul_variant("test_splitk8")


def test_custom_kernel_bitwise_under_pool(env):
    spec, dataset, _ = env
    config = EasyScaleJobConfig(
        num_ests=2, seed=0, batch_size=8,
        determinism=_CustomKernelConfig(
            static=True, elastic=True, heterogeneous=True
        ),
    )
    register_matmul_variant("test_splitk8", _test_gemm)
    try:
        serial = EasyScaleEngine(
            spec, dataset, config, sgd_factory(),
            _assignment(["V100", "T4"], num_ests=2),
        )
        serial.train_steps(3)
        with ProcessPoolBackend(max_workers=2) as backend:
            pooled = EasyScaleEngine(
                spec, dataset, config, sgd_factory(),
                _assignment(["V100", "T4"], num_ests=2), backend=backend,
            )
            pooled.train_steps(3)
        assert fingerprint_state_dict(
            pooled.model.state_dict()
        ) == fingerprint_state_dict(serial.model.state_dict())
    finally:
        unregister_matmul_variant("test_splitk8")


# ---------------------------------------------------------------------------
# observability: per-backend labels
# ---------------------------------------------------------------------------


def test_backend_labels_on_spans_and_metrics(env):
    spec, dataset, config = env
    obs.configure(enabled=True)
    try:
        with ProcessPoolBackend(max_workers=2) as backend:
            engine = EasyScaleEngine(
                spec, dataset, config, sgd_factory(),
                _assignment(POOL), backend=backend,
            )
            engine.train_steps(1)
        records = obs.tracer().records
        step_spans = [r for r in records if r["name"] == "engine.global_step"]
        assert step_spans and all(
            r["args"]["backend"] == "process" for r in step_spans
        )
        task_spans = [r for r in records if r["name"] == "exec.worker_task"]
        assert len(task_spans) == len(POOL)
        assert {r["args"]["gpu"] for r in task_spans} == {"V100", "T4"}
        registry = obs.metrics()
        assert registry.counter("exec_steps_total", backend="process").value == 1
        assert registry.counter(
            "exec_pool_tasks_total", backend="process"
        ).value == len(POOL)
    finally:
        obs.reset()


def test_serial_backend_counts_steps(env):
    spec, dataset, config = env
    obs.configure(enabled=True)
    try:
        engine = EasyScaleEngine(
            spec, dataset, config, sgd_factory(), _assignment(POOL),
        )
        engine.train_steps(2)
        assert obs.metrics().counter(
            "exec_steps_total", backend="serial"
        ).value == 2
    finally:
        obs.reset()


# ---------------------------------------------------------------------------
# gradient shipping plumbing
# ---------------------------------------------------------------------------


def test_pool_grads_never_alias_each_other(env):
    """Unflattened per-parameter gradients from the pool own their memory."""
    spec, dataset, config = env
    with ProcessPoolBackend(max_workers=2) as backend:
        engine = EasyScaleEngine(
            spec, dataset, config, sgd_factory(),
            _assignment(POOL), backend=backend,
        )
        request_grads = []

        original = backend.run_step

        def capture(request):
            results = original(request)
            request_grads.extend(r.grads for r in results)
            return results

        backend.run_step = capture
        engine.run_global_step()
    assert request_grads
    for grads in request_grads:
        arrays = list(grads.values())
        for i in range(len(arrays)):
            for j in range(i + 1, len(arrays)):
                assert not np.shares_memory(arrays[i], arrays[j])
