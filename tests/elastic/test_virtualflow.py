"""VirtualFlow baseline: fixed global batch, approximate consistency."""

import numpy as np
import pytest

from repro.elastic import VirtualFlowTrainer
from repro.models import get_workload
from repro.utils.fingerprint import fingerprint_state_dict, max_abs_diff


@pytest.fixture(scope="module")
def spec():
    return get_workload("resnet18")


@pytest.fixture(scope="module")
def dataset(spec):
    return spec.build_dataset(128, seed=3)


def run(spec, dataset, devices, steps=4, virtual=4):
    trainer = VirtualFlowTrainer(spec, dataset, num_virtual_nodes=virtual, seed=5)
    trainer.train_steps(steps, num_devices=devices)
    return trainer


class TestDeviceMapping:
    def test_contiguous_balanced(self, spec, dataset):
        trainer = VirtualFlowTrainer(spec, dataset, num_virtual_nodes=5, seed=1)
        assert trainer._device_map(2) == [[0, 1, 2], [3, 4]]
        assert trainer._device_map(5) == [[0], [1], [2], [3], [4]]

    def test_invalid_device_count(self, spec, dataset):
        trainer = VirtualFlowTrainer(spec, dataset, num_virtual_nodes=4, seed=1)
        with pytest.raises(ValueError):
            trainer._device_map(0)
        with pytest.raises(ValueError):
            trainer._device_map(5)

    def test_invalid_virtual_nodes(self, spec, dataset):
        with pytest.raises(ValueError):
            VirtualFlowTrainer(spec, dataset, num_virtual_nodes=0)


class TestConsistency:
    def test_reproducible_for_fixed_schedule(self, spec, dataset):
        a = run(spec, dataset, devices=2)
        b = run(spec, dataset, devices=2)
        assert fingerprint_state_dict(a.model.state_dict()) == fingerprint_state_dict(
            b.model.state_dict()
        )

    def test_device_count_changes_bits_but_not_much(self, spec, dataset):
        """VirtualFlow's gap: fixed hyper-parameters give *approximate*
        consistency — bits differ across device counts (the paper notes a
        0.4% accuracy degradation), unlike EasyScale's exact match."""
        a = run(spec, dataset, devices=4)
        b = run(spec, dataset, devices=1)
        assert fingerprint_state_dict(a.model.state_dict()) != fingerprint_state_dict(
            b.model.state_dict()
        )
        # but numerically close: the global batch is unchanged
        gap = max_abs_diff(a.model.state_dict(), b.model.state_dict())
        assert 0 < gap < 1e-2

    def test_closer_than_torchelastic(self, spec, dataset):
        """VirtualFlow's fixed global batch keeps it far closer across
        scales than hyper-parameter-rescaling baselines."""
        from repro.elastic import ElasticBaselineTrainer, TorchElasticScaling, TrainSegment

        vf_gap = max_abs_diff(
            run(spec, dataset, devices=4).model.state_dict(),
            run(spec, dataset, devices=1).model.state_dict(),
        )

        def te(world):
            trainer = ElasticBaselineTrainer(
                spec, dataset, TorchElasticScaling(), seed=5, base_batch=8
            )
            trainer.run_schedule([TrainSegment(world, 1)])
            return trainer.model.state_dict()

        te_gap = max_abs_diff(te(4), te(1))
        assert vf_gap < te_gap

    def test_losses_recorded(self, spec, dataset):
        trainer = run(spec, dataset, devices=2, steps=3)
        assert len(trainer.loss_history) == 3
        assert all(np.isfinite(l) for l in trainer.loss_history)
