"""Elastic baselines: hyper-parameter coupling to the world size."""

import numpy as np
import pytest

from repro.elastic import (
    ElasticBaselineTrainer,
    PolluxScaling,
    TorchElasticScaling,
    TrainSegment,
)
from repro.models import get_workload


@pytest.fixture(scope="module")
def spec():
    return get_workload("resnet18")


@pytest.fixture(scope="module")
def dataset(spec):
    return spec.build_dataset(96, seed=4)


class TestTorchElasticScaling:
    def test_linear_lr_rule(self):
        strategy = TorchElasticScaling()
        lr1, bs1 = strategy.configure(1, 0.1, 8, {})
        lr4, bs4 = strategy.configure(4, 0.1, 8, {})
        assert lr4 == pytest.approx(4 * lr1)
        assert bs1 == bs4 == 8  # per-worker batch fixed -> global batch grows

    def test_reference_world(self):
        strategy = TorchElasticScaling(reference_world=2)
        lr, _ = strategy.configure(4, 0.1, 8, {})
        assert lr == pytest.approx(0.2)

    def test_invalid_reference(self):
        with pytest.raises(ValueError):
            TorchElasticScaling(reference_world=0)


class TestPolluxScaling:
    def test_gns_grows_batch(self):
        strategy = PolluxScaling()
        _, small = strategy.configure(2, 0.1, 8, {"gns": 0.1})
        _, big = strategy.configure(2, 0.1, 8, {"gns": 50.0})
        assert big > small

    def test_batch_bounded(self):
        strategy = PolluxScaling(max_batch_factor=2.0)
        _, bs = strategy.configure(4, 0.1, 8, {"gns": 1e9})
        assert bs * 4 <= 2.0 * 8 * 4

    def test_sqrt_lr_scaling(self):
        strategy = PolluxScaling()
        lr, bs = strategy.configure(4, 0.1, 8, {"gns": 3.0})
        assert lr == pytest.approx(0.1 * np.sqrt(bs * 4 / 8), rel=1e-6)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            PolluxScaling(max_batch_factor=0.5)


class TestElasticBaselineTrainer:
    def test_world_size_changes_trained_model(self, spec, dataset):
        def run(world):
            trainer = ElasticBaselineTrainer(
                spec, dataset, TorchElasticScaling(), seed=3, base_batch=8
            )
            trainer.run_schedule([TrainSegment(world, 1)])
            return trainer.model.state_dict()

        one = run(1)
        four = run(4)
        diffs = [
            np.abs(one[k].astype(np.float64) - four[k].astype(np.float64)).max()
            for k in one
        ]
        assert max(diffs) > 1e-4  # inconsistent accuracy: the motivation

    def test_same_schedule_is_reproducible(self, spec, dataset):
        def run():
            trainer = ElasticBaselineTrainer(spec, dataset, PolluxScaling(), seed=3, base_batch=8)
            trainer.run_schedule([TrainSegment(2, 1)])
            return trainer.model.state_dict()

        a, b = run(), run()
        for k in a:
            assert a[k].tobytes() == b[k].tobytes()

    def test_scale_event_restarts_data_order(self, spec, dataset):
        trainer = ElasticBaselineTrainer(spec, dataset, TorchElasticScaling(), seed=3, base_batch=8)
        losses = trainer.run_schedule([TrainSegment(1, 1), TrainSegment(2, 1)])
        assert trainer.restarts == 1
        assert len(losses) == 2

    def test_lr_history_tracks_strategy(self, spec, dataset):
        trainer = ElasticBaselineTrainer(
            spec, dataset, TorchElasticScaling(), base_lr=0.05, seed=3, base_batch=8
        )
        trainer.run_schedule([TrainSegment(1, 1), TrainSegment(4, 1)])
        assert trainer.lr_history[0] == pytest.approx(0.05)
        assert trainer.lr_history[1] == pytest.approx(0.05 * 4, rel=0.3)

    def test_gamma_decay_applies(self, spec, dataset):
        trainer = ElasticBaselineTrainer(
            spec, dataset, TorchElasticScaling(), seed=3, base_batch=8,
            gamma=0.1, lr_step_epochs=1,
        )
        trainer.run_schedule([TrainSegment(1, 2)])
        assert trainer.lr_history[1] == pytest.approx(trainer.lr_history[0] * 0.1)
