"""Tier-2 benchgate: the regression gate end to end, through real subprocesses.

Drives ``repro bench run`` exactly like CI would — fresh interpreter per
invocation, smoke sizes via ``REPRO_BENCH_SMOKE=1`` — and proves the two
halves of the gate contract:

1. an immediate re-run of the same benches gates *flat* (exit 0): the
   noise tolerance absorbs honest machine jitter;
2. a third run with ``REPRO_BENCH_SCALE=10`` (every lower-is-better
   sample inflated tenfold) fails the gate (exit 5): a real order-of-
   magnitude slowdown cannot hide inside that tolerance.

Deselected by default via the ``benchgate`` marker; run with::

    PYTHONPATH=src python -m pytest -m benchgate tests/test_benchgate.py
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

pytestmark = pytest.mark.benchgate


def _repro(args, tmp_path, extra_env=None):
    env = dict(os.environ)
    env["REPRO_BENCH_SMOKE"] = "1"
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    env.update(extra_env or {})
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args, "--dir", str(tmp_path)],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_gate_flat_on_rerun_then_fails_on_injected_slowdown(tmp_path):
    run_args = ["bench", "run", "--repeats", "3"]

    # baseline + honest re-run: every BENCH_<area>.json exists, gate passes
    for _ in range(2):
        proc = _repro(run_args, tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
    for area in ("sched", "parallel", "determinism", "dessim"):
        assert (tmp_path / f"BENCH_{area}.json").exists()

    gate = _repro(["bench", "gate"], tmp_path)
    assert gate.returncode == 0, gate.stdout + gate.stderr
    assert "bench gate: ok" in gate.stdout
    assert "regressed" not in gate.stdout.replace("0 regressed", "")

    compare = _repro(["bench", "compare"], tmp_path)
    assert compare.returncode == 0
    assert "0 regressed" in compare.stdout

    # injected 10x slowdown: the gate must fail with the documented code
    slow = _repro(run_args, tmp_path, extra_env={"REPRO_BENCH_SCALE": "10"})
    assert slow.returncode == 0, slow.stdout + slow.stderr
    gate = _repro(["bench", "gate"], tmp_path)
    assert gate.returncode == 5, gate.stdout + gate.stderr
    assert "FAILED" in gate.stdout


def test_dessim_area_gates_standalone(tmp_path):
    """``bench gate --area dessim`` (smoke sizes): record twice, gate flat.

    The dessim bench replays the same diurnal trace under the heap core
    and the batched core and refuses to report a speedup unless the two
    event logs are byte-identical, so a green gate here also re-proves
    core equivalence in the CI loop.
    """
    for _ in range(2):
        proc = _repro(["bench", "run", "--area", "dessim", "--repeats", "2"], tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
    assert (tmp_path / "BENCH_dessim.json").exists()

    gate = _repro(["bench", "gate", "--area", "dessim"], tmp_path)
    assert gate.returncode == 0, gate.stdout + gate.stderr
    assert "bench gate: ok" in gate.stdout
