"""Flight recorder: ring bounds, postmortem bundles, crash evidence.

The headline contract (ISSUE 7 acceptance): an injected ``worker_crash``
with **tracing off** still produces a postmortem bundle naming the
failing step, worker, and active kernel dialect — because the flight
recorder is always on, unlike every other obs surface.
"""

import json
import os

import pytest

from repro import obs
from repro.core import (
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
)
from repro.faults import FaultEvent, FaultPlan, FaultInjector, WorkerCrashSignal
from repro.hw import gpu_type
from repro.models import get_workload
from repro.obs import flightrec
from tests.conftest import sgd_factory


# ---------------------------------------------------------------------------
# ring mechanics
# ---------------------------------------------------------------------------


def test_ring_is_bounded_and_keeps_newest():
    rec = flightrec.FlightRecorder(ring_size=4)
    for i in range(10):
        rec.record("engine.step", step=i)
    events = rec.events
    assert len(events) == 4
    assert [e["step"] for e in events] == [6, 7, 8, 9]
    assert rec.seq == 10


def test_audit_tail_is_bounded(tmp_path):
    rec = flightrec.FlightRecorder(audit_keep=3)
    for i in range(7):
        rec.note_audit({"step": i, "params": f"fp{i}"})
    assert [a["step"] for a in rec.audits] == [4, 5, 6]


def test_disabled_recorder_records_nothing():
    rec = flightrec.FlightRecorder(enabled=False)
    rec.record("engine.step", step=0)
    rec.note_audit({"step": 0})
    assert len(rec) == 0 and not rec.audits


def test_reserved_keys_win_over_payload_fields():
    rec = flightrec.FlightRecorder()
    rec.record("fault.detect", fault="worker_crash", seq=999)
    event = rec.events[-1]
    assert event["kind"] == "fault.detect"
    assert event["fault"] == "worker_crash"
    assert event["seq"] == 1  # payload cannot forge the sequence number


def test_context_merges():
    rec = flightrec.FlightRecorder()
    rec.set_context(determinism="D1")
    rec.set_context(dialects=["v100"])
    assert rec.context == {"determinism": "D1", "dialects": ["v100"]}


# ---------------------------------------------------------------------------
# bundles
# ---------------------------------------------------------------------------


def test_dump_writes_self_contained_bundle(tmp_path):
    rec = flightrec.FlightRecorder(directory=str(tmp_path))
    rec.set_context(determinism="D1+D2", dialects=["v100", "t4"])
    for i in range(5):
        rec.record("engine.step", step=i)
    rec.note_audit({"step": 4, "params": "fp", "policy": "D1+D2",
                    "dialects": ["v100", "t4"]})
    path = rec.dump("test_reason")
    assert os.path.basename(path) == "postmortem-4.json"
    bundle = flightrec.load_bundle(path)
    assert bundle["version"] == flightrec.BUNDLE_FORMAT_VERSION
    assert bundle["reason"] == "test_reason"
    assert bundle["step"] == 4
    assert bundle["context"]["determinism"] == "D1+D2"
    assert [e["step"] for e in bundle["events"]] == [0, 1, 2, 3, 4]
    assert bundle["audits"][-1]["policy"] == "D1+D2"
    assert bundle["machine"]["python"]
    assert "git_sha" in bundle and "env" in bundle
    rendered = flightrec.render_bundle(bundle)
    assert "reason=test_reason" in rendered and "step=4" in rendered


def test_dump_collision_appends_suffix(tmp_path):
    rec = flightrec.FlightRecorder(directory=str(tmp_path))
    rec.record("engine.step", step=1)
    first = rec.dump("a")
    second = rec.dump("b")
    assert first != second
    assert os.path.exists(first) and os.path.exists(second)
    assert flightrec.load_bundle(second)["reason"] == "b"


def test_dump_env_dir_override(tmp_path, monkeypatch):
    monkeypatch.setenv(flightrec.POSTMORTEM_DIR_ENV, str(tmp_path / "pm"))
    (tmp_path / "pm").mkdir()
    rec = flightrec.FlightRecorder()  # no explicit directory
    rec.record("engine.step", step=7)
    path = rec.dump("env_dir")
    assert str(tmp_path / "pm") in path


def test_load_bundle_rejects_non_bundles(tmp_path):
    trail = tmp_path / "audit.jsonl"
    trail.write_text('{"step": 0, "params": "x"}\n{"step": 1, "params": "y"}\n')
    with pytest.raises(ValueError):
        flightrec.load_bundle(str(trail))
    assert not flightrec.is_bundle_file(str(trail))
    garbage = tmp_path / "garbage.json"
    garbage.write_text("not json at all")
    with pytest.raises(ValueError):
        flightrec.load_bundle(str(garbage))


def test_bundle_includes_open_spans_when_obs_enabled(tmp_path):
    rec = flightrec.FlightRecorder(directory=str(tmp_path))
    obs.configure(enabled=True)
    try:
        with obs.span("engine.global_step", cat="engine", step=3):
            rec.record("engine.step", step=3)
            path = rec.dump("mid_span")
    finally:
        obs.reset()
    bundle = flightrec.load_bundle(path)
    assert [s["name"] for s in bundle["open_spans"]] == ["engine.global_step"]
    assert bundle["metrics"] is not None


# ---------------------------------------------------------------------------
# shard flush / collect (pool-child merge path)
# ---------------------------------------------------------------------------


def test_flush_and_collect_shards_roundtrip(tmp_path):
    child = flightrec.FlightRecorder()
    child.record("exec.child_local_step", vrank=0)
    child.record("exec.child_local_step", vrank=1)
    shard = child.flush_shard(str(tmp_path))
    assert shard is not None and shard.endswith(flightrec.SHARD_FLIGHT_SUFFIX)
    # second flush with nothing new writes nothing
    assert child.flush_shard(str(tmp_path)) is None
    child.record("exec.child_local_step", vrank=2)
    child.flush_shard(str(tmp_path))

    parent = flightrec.FlightRecorder()
    parent.record("engine.step", step=0)
    merged = parent.collect_shards(str(tmp_path))
    assert merged == 3
    events = parent.events
    assert [e.get("vrank") for e in events if "vrank" in e] == [0, 1, 2]
    assert all("pid" in e for e in events if "vrank" in e)
    # consumed on merge
    assert parent.collect_shards(str(tmp_path)) == 0


def test_dump_merges_attached_shard_dirs(tmp_path):
    child = flightrec.FlightRecorder()
    child.record("exec.child_local_step", vrank=5)
    child.flush_shard(str(tmp_path))
    parent = flightrec.FlightRecorder(directory=str(tmp_path))
    parent.attach_shard_dir(str(tmp_path))
    parent.record("engine.step", step=2)
    bundle = flightrec.load_bundle(parent.dump("merge"))
    vranks = [e.get("vrank") for e in bundle["events"] if "vrank" in e]
    assert vranks == [5]


def test_truncated_shard_line_is_skipped(tmp_path):
    path = flightrec.shard_flight_path(str(tmp_path), 123)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"kind": "engine.step", "step": 0}) + "\n")
        fh.write('{"kind": "engine.step", "st')  # child died mid-write
    rec = flightrec.FlightRecorder()
    assert rec.collect_shards(str(tmp_path)) == 1


# ---------------------------------------------------------------------------
# the acceptance contract: crash with tracing OFF leaves evidence
# ---------------------------------------------------------------------------


def test_worker_crash_with_tracing_off_names_step_worker_dialect(tmp_path):
    flightrec.configure(directory=str(tmp_path))
    assert not obs.is_enabled()  # tracing is OFF — the point of the test

    spec = get_workload("resnet18")
    dataset = spec.build_dataset(32, seed=7)
    config = EasyScaleJobConfig(
        num_ests=2, seed=0, batch_size=4,
        determinism=determinism_from_label("D1+D2"),
    )
    plan = FaultPlan(
        seed=0,
        events=(FaultEvent("worker_crash", at_step=2, target="worker:1"),),
    )
    engine = EasyScaleEngine(
        spec, dataset, config, sgd_factory(),
        WorkerAssignment.balanced([gpu_type("V100"), gpu_type("T4")], 2),
        fault_injector=FaultInjector(plan),
    )
    engine.run_global_step()
    engine.run_global_step()
    with pytest.raises(WorkerCrashSignal):
        engine.run_global_step()

    path = flightrec.recorder().last_dump
    assert path is not None and os.path.exists(path)
    bundle = flightrec.load_bundle(path)
    crash = bundle["crash"]
    assert crash["step"] == 2
    assert crash["worker"] == 1
    assert crash["kind"] == "worker_crash"
    assert crash["dialect"] == "t4"  # worker 1 sits on the T4
    assert bundle["context"]["determinism"] == "D1+D2"
    # the ring shows the preceding healthy steps and the detection
    kinds = [e["kind"] for e in bundle["events"]]
    assert "engine.step" in kinds
    assert "fault.detect" in kinds
    assert "engine.crash" in kinds
    rendered = flightrec.render_bundle(bundle)
    assert "worker=1" in rendered and "dialect=t4" in rendered
