"""Bench trajectories: records, the noise-aware comparator, and the gate."""

import json

import pytest

from repro.cli import main
from repro.obs.bench import (
    AREAS,
    BENCH_SCHEMA_VERSION,
    Trajectory,
    classify,
    compare_trajectory,
    gate_trajectories,
    make_record,
    record_samples,
    summarize_samples,
    trajectory_path,
    validate_record,
)


def _stats(median, spread=0.0, repeats=5, direction="lower"):
    return {
        "median": median,
        "p10": median - spread,
        "p90": median + spread,
        "repeats": repeats,
        "unit": "s",
        "direction": direction,
    }


# ---------------------------------------------------------------------------
# sample summaries and record schema
# ---------------------------------------------------------------------------


class TestSummarizeSamples:
    def test_median_and_quantiles(self):
        stats = summarize_samples([3.0, 1.0, 2.0, 4.0, 5.0])
        assert stats["median"] == 3.0
        assert stats["p10"] == pytest.approx(1.4)
        assert stats["p90"] == pytest.approx(4.6)
        assert stats["repeats"] == 5

    def test_single_sample_collapses(self):
        stats = summarize_samples([2.5])
        assert stats["median"] == stats["p10"] == stats["p90"] == 2.5

    def test_rejects_empty_and_nonfinite(self):
        with pytest.raises(ValueError):
            summarize_samples([])
        with pytest.raises(ValueError, match="non-finite"):
            summarize_samples([1.0, float("nan")])
        with pytest.raises(ValueError, match="direction"):
            summarize_samples([1.0], direction="sideways")


class TestRecordSchema:
    def test_make_record_is_schema_valid_and_stamped(self):
        record = make_record("sched", "plan_round", {"max_p": 5},
                             {"cold_s": [0.2, 0.1, 0.3]})
        assert record["schema"] == BENCH_SCHEMA_VERSION
        assert record["area"] == "sched" and record["bench"] == "plan_round"
        assert record["metrics"]["cold_s"]["median"] == 0.2
        assert record["machine"]["cpu_count"] >= 1
        assert record["git_sha"]  # short SHA or "unknown", never empty
        assert record["timestamp"].endswith("+00:00")  # UTC
        assert json.loads(json.dumps(record)) == record

    def test_scale_env_inflates_lower_is_better(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "10")
        record = make_record("sched", "b", {}, {
            "time_s": [1.0],
            "rate": [1.0],
        }, directions={"rate": "higher"})
        assert record["metrics"]["time_s"]["median"] == 10.0
        assert record["metrics"]["rate"]["median"] == 1.0  # untouched

    def test_validate_rejects_broken_records(self):
        good = make_record("sched", "b", {}, {"t": [1.0]})
        for mutate in (
            lambda r: r.pop("git_sha"),
            lambda r: r.update(schema=99),
            lambda r: r.update(metrics={}),
            lambda r: r["metrics"]["t"].update(direction="sideways"),
            lambda r: r["metrics"]["t"].update(p10=5.0),  # > median
        ):
            broken = json.loads(json.dumps(good))
            mutate(broken)
            with pytest.raises(ValueError):
                validate_record(broken)
        with pytest.raises(ValueError):
            validate_record("not a record")


class TestTrajectory:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "BENCH_sched.json")
        traj = Trajectory.load("sched", path)
        assert traj.entries == []  # missing file is an empty trajectory
        traj.append(make_record("sched", "b", {"n": 1}, {"t": [1.0]}))
        traj.save()
        again = Trajectory.load("sched", path)
        assert len(again) == 1
        assert again.entries[0]["bench"] == "b"

    def test_malformed_file_raises_with_path(self, tmp_path):
        path = tmp_path / "BENCH_sched.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="BENCH_sched.json"):
            Trajectory.load("sched", str(path))
        path.write_text('{"schema": 99, "area": "sched", "entries": []}')
        with pytest.raises(ValueError, match="unsupported trajectory schema"):
            Trajectory.load("sched", str(path))

    def test_append_rejects_cross_area_record(self, tmp_path):
        traj = Trajectory("sched", str(tmp_path / "BENCH_sched.json"))
        with pytest.raises(ValueError, match="does not match trajectory"):
            traj.append(make_record("parallel", "b", {}, {"t": [1.0]}))

    def test_record_samples_appends(self, tmp_path):
        for _ in range(2):
            record_samples("sched", "b", {"n": 1}, {"t": [1.0, 2.0]},
                           directory=str(tmp_path))
        traj = Trajectory.load("sched", trajectory_path("sched", str(tmp_path)))
        assert len(traj) == 2


# ---------------------------------------------------------------------------
# the noise-aware comparator
# ---------------------------------------------------------------------------


class TestClassify:
    def test_flat_within_threshold(self):
        status, ratio, tol = classify(_stats(1.0), _stats(1.2))
        assert status == "flat" and ratio == pytest.approx(1.2)
        assert tol == pytest.approx(0.30)

    def test_regressed_beyond_threshold(self):
        status, ratio, _ = classify(_stats(1.0), _stats(1.5))
        assert status == "regressed" and ratio == pytest.approx(1.5)

    def test_improved_beyond_threshold(self):
        status, _, _ = classify(_stats(1.5), _stats(1.0))
        assert status == "improved"

    def test_noisy_samples_widen_tolerance(self):
        # 1.0 -> 1.5 regresses at the default threshold, but a 60% p10-p90
        # spread on the current entry absorbs it
        status, _, tol = classify(_stats(1.0), _stats(1.5, spread=0.45))
        assert status == "flat"
        assert tol == pytest.approx(0.60)

    def test_few_repeats_double_the_threshold(self):
        status, _, tol = classify(_stats(1.0, repeats=2), _stats(1.5, repeats=2))
        assert status == "flat"
        assert tol == pytest.approx(0.60)

    def test_higher_is_better_flips_the_verdict(self):
        up = classify(_stats(1.0, direction="higher"),
                      _stats(1.5, direction="higher"))
        down = classify(_stats(1.5, direction="higher"),
                        _stats(1.0, direction="higher"))
        assert up[0] == "improved" and down[0] == "regressed"

    def test_degenerate_zero_medians_are_flat(self):
        assert classify(_stats(0.0), _stats(1.0))[0] == "flat"

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(ValueError):
            classify(_stats(1.0), _stats(1.0), threshold=0.0)


class TestCompareTrajectory:
    def _traj(self, tmp_path, records):
        traj = Trajectory("sched", str(tmp_path / "BENCH_sched.json"))
        for record in records:
            traj.append(record)
        return traj

    def test_single_entry_is_baseline(self, tmp_path):
        traj = self._traj(tmp_path, [make_record("sched", "b", {}, {"t": [1.0]})])
        (row,) = compare_trajectory(traj)
        assert row.status == "baseline" and row.previous is None
        assert "baseline" in row.describe()

    def test_latest_vs_previous_per_metric(self, tmp_path):
        traj = self._traj(tmp_path, [
            make_record("sched", "b", {}, {"t": [1.0] * 5, "u": [1.0] * 5}),
            make_record("sched", "b", {}, {"t": [2.0] * 5, "u": [1.0] * 5}),
        ])
        rows = {r.metric: r for r in compare_trajectory(traj)}
        assert rows["t"].status == "regressed"
        assert rows["u"].status == "flat"

    def test_different_params_never_compare(self, tmp_path):
        # a smoke entry after a full entry must not gate against it
        traj = self._traj(tmp_path, [
            make_record("sched", "b", {"smoke": False}, {"t": [10.0] * 5}),
            make_record("sched", "b", {"smoke": True}, {"t": [0.1] * 5}),
        ])
        rows = compare_trajectory(traj)
        assert {r.status for r in rows} == {"baseline"}


class TestGate:
    def test_gate_collects_regressions_across_areas(self, tmp_path):
        for area, medians in (("sched", [1.0, 1.0]), ("parallel", [1.0, 2.0])):
            for median in medians:
                record_samples(area, "b", {}, {"t": [median] * 5},
                               directory=str(tmp_path))
        rows, regressed = gate_trajectories(AREAS, directory=str(tmp_path))
        assert len(rows) == 2
        assert [r.area for r in regressed] == ["parallel"]

    def test_gate_without_trajectories_fails_loudly(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="BENCH_"):
            gate_trajectories(AREAS, directory=str(tmp_path))


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestBenchCli:
    def _seed(self, tmp_path, medians):
        for median in medians:
            record_samples("sched", "b", {}, {"t": [median] * 5},
                           directory=str(tmp_path))

    def test_compare_prints_verdicts(self, tmp_path, capsys):
        self._seed(tmp_path, [1.0, 1.0])
        assert main(["bench", "compare", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "flat" in out and "1 flat" in out

    def test_gate_passes_flat_history(self, tmp_path, capsys):
        self._seed(tmp_path, [1.0, 1.0])
        assert main(["bench", "gate", "--dir", str(tmp_path)]) == 0
        assert "bench gate: ok" in capsys.readouterr().out

    def test_gate_fails_on_regression(self, tmp_path, capsys):
        self._seed(tmp_path, [1.0, 2.0])
        assert main(["bench", "gate", "--dir", str(tmp_path)]) == 5
        assert "FAILED" in capsys.readouterr().out

    def test_gate_without_trajectories_exits_2(self, tmp_path, capsys):
        assert main(["bench", "gate", "--dir", str(tmp_path)]) == 2
        assert "no BENCH_" in capsys.readouterr().err

    def test_compare_without_trajectories_exits_2(self, tmp_path):
        assert main(["bench", "compare", "--dir", str(tmp_path)]) == 2

    def test_run_smoke_appends_real_records(self, tmp_path, capsys):
        # the fastest built-in bench, twice: baseline then a comparison
        for _ in range(2):
            code = main(["bench", "run", "--area", "determinism",
                         "--repeats", "2", "--smoke", "--dir", str(tmp_path)])
            assert code == 0
        out = capsys.readouterr().out
        assert "appended to" in out
        traj = Trajectory.load(
            "determinism", trajectory_path("determinism", str(tmp_path))
        )
        assert len(traj) == 2
        assert {"vendor_s", "agnostic_s"} <= set(traj.entries[0]["metrics"])
        assert main(["bench", "gate", "--area", "determinism",
                     "--dir", str(tmp_path)]) == 0
