"""Online profiler: windowing, straggler detection, calibration, replay."""

import math

import pytest

from repro import obs
from repro.obs.profiler import (
    OnlineProfiler,
    ProfilerConfig,
    StragglerEvent,
    profile_from_trace,
)
from repro.sched.perfmodel import Plan


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


def feed(profiler, steps, times, start_step=0, num_ests=1):
    """Feed ``times[worker_id] = step_time`` for ``steps`` global steps."""
    for step in range(start_step, start_step + steps):
        for wid, (gpu, t) in times.items():
            profiler.observe_worker_step(step, wid, gpu, num_ests, t)


class TestConfigValidation:
    def test_defaults_valid(self):
        cfg = ProfilerConfig()
        assert cfg.window_size > 0 and cfg.straggler_factor > 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_size": 0},
            {"straggler_factor": 1.0},
            {"straggler_windows": 0},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ProfilerConfig(**kwargs)


class TestWindowing:
    def test_window_closes_every_window_size_steps(self):
        p = OnlineProfiler(ProfilerConfig(window_size=4))
        feed(p, 11, {0: ("v100", 0.1), 1: ("v100", 0.1)})
        assert p.windows_closed == 2  # 11 steps = 2 full windows + 3 pending

    def test_flush_closes_partial_windows(self):
        p = OnlineProfiler(ProfilerConfig(window_size=8))
        feed(p, 3, {0: ("v100", 0.1)})
        assert p.windows_closed == 0
        p.flush()
        assert p.windows_closed == 1

    def test_window_median_is_robust_to_one_spike(self):
        cfg = ProfilerConfig(window_size=5, straggler_factor=1.5, straggler_windows=1)
        p = OnlineProfiler(cfg)
        # worker 1 spikes once per window but its median stays at peer level
        for step in range(10):
            p.observe_worker_step(step, 0, "v100", 1, 0.1)
            spike = 10.0 if step % 5 == 0 else 0.1
            p.observe_worker_step(step, 1, "v100", 1, spike)
        assert p.windows_closed == 2
        assert p.straggler_events == []

    def test_nonpositive_observations_ignored(self):
        p = OnlineProfiler(ProfilerConfig(window_size=2))
        p.observe_worker_step(0, 0, "v100", 1, 0.0)
        p.observe_worker_step(0, 0, "v100", 1, -1.0)
        p.observe_worker_step(0, 0, "v100", 0, 0.1)
        p.flush()
        assert p.windows_closed == 0

    def test_scale_event_resets_windows_but_keeps_history(self):
        cfg = ProfilerConfig(window_size=4, straggler_factor=1.3, straggler_windows=1)
        p = OnlineProfiler(cfg)
        feed(p, 8, {0: ("v100", 0.1), 1: ("v100", 0.2)})
        events_before = len(p.straggler_events)
        assert events_before > 0
        p.on_scale_event(["v100"])
        # new configuration: a single worker, no peers, no new events
        feed(p, 8, {0: ("v100", 0.15)})
        assert len(p.straggler_events) == events_before
        assert p.windows_closed >= 4
        # calibration survived the reset
        assert "v100" in p.observed_capability

    def test_late_joining_worker_does_not_stall_frontier(self):
        p = OnlineProfiler(ProfilerConfig(window_size=2))
        feed(p, 4, {0: ("v100", 0.1)})
        assert p.windows_closed == 2
        # worker 1 appears at step 4; the frontier keeps advancing
        feed(p, 4, {0: ("v100", 0.1), 1: ("v100", 0.1)}, start_step=4)
        assert p.windows_closed == 4


class TestStragglerDetection:
    def test_requires_k_consecutive_windows(self):
        cfg = ProfilerConfig(window_size=2, straggler_factor=1.5, straggler_windows=3)
        p = OnlineProfiler(cfg)
        # 2 slow windows -> no event; the 3rd consecutive fires one
        feed(p, 4, {0: ("v100", 0.1), 1: ("v100", 0.1), 2: ("v100", 0.4)})
        assert p.straggler_events == []
        feed(p, 2, {0: ("v100", 0.1), 1: ("v100", 0.1), 2: ("v100", 0.4)}, start_step=4)
        assert len(p.straggler_events) == 1
        event = p.straggler_events[0]
        assert isinstance(event, StragglerEvent)
        assert event.worker_id == 2
        assert event.consecutive == 3
        assert event.ratio == pytest.approx(4.0)
        assert p.stragglers() == [2]

    def test_recovery_resets_the_streak(self):
        cfg = ProfilerConfig(window_size=2, straggler_factor=1.5, straggler_windows=3)
        p = OnlineProfiler(cfg)
        # slow, slow, fast, slow, slow, slow -> exactly one event at the end
        pattern = [0.4, 0.4, 0.1, 0.4, 0.4, 0.4]
        for w, slow_time in enumerate(pattern):
            feed(
                p, 2,
                {0: ("v100", 0.1), 1: ("v100", 0.1), 2: ("v100", slow_time)},
                start_step=2 * w,
            )
        assert len(p.straggler_events) == 1
        assert p.straggler_events[0].window == 5

    def test_heterogeneous_hardware_is_not_a_straggler(self):
        # a T4 at exactly its modeled speed must not be flagged against
        # V100 peers: times are normalized by the static capability first
        cfg = ProfilerConfig(window_size=2, straggler_factor=1.5, straggler_windows=1)
        p = OnlineProfiler(cfg, static_capability={"v100": 10.0, "t4": 10.0 / 3})
        feed(p, 6, {0: ("v100", 0.1), 1: ("v100", 0.1), 2: ("t4", 0.3)})
        assert p.straggler_events == []
        # ... but a T4 running 2x slower than the T4 model is flagged
        feed(p, 6, {0: ("v100", 0.1), 1: ("v100", 0.1), 2: ("t4", 0.6)}, start_step=6)
        assert {e.worker_id for e in p.straggler_events} == {2}

    def test_single_worker_never_flagged(self):
        cfg = ProfilerConfig(window_size=2, straggler_factor=1.1, straggler_windows=1)
        p = OnlineProfiler(cfg)
        feed(p, 10, {0: ("v100", 5.0)})
        assert p.straggler_events == []

    def test_events_surface_in_metrics_when_enabled(self):
        obs.configure(enabled=True)
        cfg = ProfilerConfig(window_size=2, straggler_factor=1.3, straggler_windows=1)
        p = OnlineProfiler(cfg)
        feed(p, 2, {0: ("v100", 0.1), 1: ("v100", 0.1), 2: ("v100", 0.5)})
        assert len(p.straggler_events) == 1
        snap = obs.metrics().snapshot()
        assert snap["counters"]['profiler_straggler_events_total{gpu="v100"}'] == 1


class TestCalibration:
    def test_converges_to_observed_rate_within_20_windows(self):
        cfg = ProfilerConfig(window_size=2, ewma_alpha=0.25)
        p = OnlineProfiler(cfg, static_capability={"v100": 10.0})
        # true rate is 5 mini-batches/s (0.2 s/step), static says 10
        feed(p, 40, {0: ("v100", 0.2)})
        assert p.windows_closed == 20
        assert p.observed_capability["v100"] == pytest.approx(5.0, rel=0.01)
        cal = p.calibrated_capability()
        assert cal["v100"] == pytest.approx(5.0, rel=0.01)

    def test_calibrated_table_keeps_unobserved_types(self):
        p = OnlineProfiler(ProfilerConfig(window_size=1))
        feed(p, 2, {0: ("v100", 0.1)})
        cal = p.calibrated_capability(static={"v100": 99.0, "p100": 4.5})
        assert cal["v100"] == pytest.approx(10.0, rel=0.01)  # observed wins
        assert cal["p100"] == 4.5  # unobserved: static passes through

    def test_multi_est_workers_normalize_by_est_count(self):
        # 4 ESTs taking 0.4 s -> 10 mini-batches/s of per-GPU capability
        p = OnlineProfiler(ProfilerConfig(window_size=1))
        for step in range(3):
            p.observe_worker_step(step, 0, "v100", 4, 0.4)
        assert p.observed_capability["v100"] == pytest.approx(10.0, rel=0.01)


class TestPredictionError:
    def test_reference_plan_prediction_logged(self):
        plan = Plan.build({"v100": (2, 2)}, max_p=4)
        capability = {"v100": 10.0}
        p = OnlineProfiler(ProfilerConfig(window_size=2))
        p.set_reference(plan, capability)
        # predicted f = A/C = 0.2; observe 0.25 -> +25% relative error
        feed(p, 4, {0: ("v100", 0.25), 1: ("v100", 0.25)}, num_ests=2)
        assert len(p.prediction_log) == 2
        _, f_obs, f_pred, w_obs, w_pred = p.prediction_log[-1]
        assert f_pred == pytest.approx(0.2)
        assert f_obs == pytest.approx(0.25)
        assert w_pred == pytest.approx(0.0)
        assert w_obs > 0.0  # running slower than predicted strands capability
        summary = p.summary()
        assert summary["prediction"]["f_overload_rel_error"] == pytest.approx(0.25)

    def test_prediction_gauges_exported(self):
        obs.configure(enabled=True)
        plan = Plan.build({"v100": (1, 1)}, max_p=1)
        p = OnlineProfiler(ProfilerConfig(window_size=1))
        p.set_reference(plan, {"v100": 10.0})
        feed(p, 1, {0: ("v100", 0.1)})
        gauges = obs.metrics().snapshot()["gauges"]
        assert gauges["profiler_foverload_observed"] == pytest.approx(0.1)
        assert gauges["profiler_foverload_rel_error"] == pytest.approx(0.0, abs=1e-9)


class TestSummary:
    def test_summary_is_json_serializable(self):
        import json

        cfg = ProfilerConfig(window_size=2, straggler_factor=1.3, straggler_windows=1)
        p = OnlineProfiler(cfg, static_capability={"v100": 10.0})
        feed(p, 4, {0: ("v100", 0.1), 1: ("v100", 0.3)})
        p.observe_est_step(0, 0, 0.1)
        text = json.dumps(p.summary())
        assert "stragglers" in text and "calibration" in text

    def test_describe_mentions_stragglers_and_calibration(self):
        cfg = ProfilerConfig(window_size=2, straggler_factor=1.3, straggler_windows=1)
        p = OnlineProfiler(cfg, static_capability={"v100": 10.0})
        feed(p, 4, {0: ("v100", 0.1), 1: ("v100", 0.1), 2: ("v100", 0.5)})
        text = p.describe()
        assert "straggler events: 2" in text
        assert "calibrated capability" in text
        assert "worker 2" in text

    def test_percentiles_match_observations(self):
        p = OnlineProfiler(ProfilerConfig(window_size=4))
        feed(p, 8, {0: ("v100", 0.1)})
        w = p.summary()["workers"]["0"]
        assert w["p50_s"] == pytest.approx(0.1, rel=0.25)
        assert w["steps"] == 8


class TestTraceReplay:
    def test_replay_uses_est_arg_and_flags_slow_worker(self):
        def span(worker, gpu, est):
            return {
                "kind": "span",
                "name": "worker.local_step",
                "t0": 0.0,
                "t1": est,
                "args": {"worker": worker, "gpu": gpu, "vrank": worker, "est": est},
            }

        records = []
        for _ in range(12):
            records.append(span(0, "V100", 0.1))
            records.append(span(1, "V100", 0.1))
            records.append(span(2, "V100", 0.4))
        cfg = ProfilerConfig(window_size=3, straggler_factor=1.5, straggler_windows=2)
        p = profile_from_trace(records, cfg)
        assert {e.worker_id for e in p.straggler_events} == {2}
        # the type-level EWMA blends the healthy 10 mb/s workers with the
        # 2.5 mb/s straggler — it lands strictly between the two rates
        assert 2.5 < p.observed_capability["v100"] < 10.0
        # per-EST percentiles came along
        assert p.summary()["ests"]["2"]["steps"] == 12

    def test_replay_falls_back_to_wall_time(self):
        records = [
            {
                "kind": "span",
                "name": "worker.local_step",
                "t0": 1.0,
                "t1": 1.5,
                "args": {"worker": 0, "gpu": "t4"},
            }
        ] * 4
        p = profile_from_trace(records, ProfilerConfig(window_size=2))
        assert p.observed_capability["t4"] == pytest.approx(2.0, rel=0.01)

    def test_replay_ignores_unrelated_records(self):
        records = [
            {"kind": "span", "name": "engine.sync", "t0": 0, "t1": 1, "args": {}},
            {"kind": "instant", "name": "job_submit", "t0": 0, "args": {}},
        ]
        p = profile_from_trace(records)
        assert p.windows_closed == 0
        assert p.observed_capability == {}

    def test_disabled_obs_mode_profiler_still_works(self):
        # the profiler's own state is independent of the global switch;
        # only the mirrored metrics go to the null registry
        assert not obs.is_enabled()
        p = OnlineProfiler(ProfilerConfig(window_size=1))
        feed(p, 2, {0: ("v100", 0.1)})
        assert p.windows_closed == 2
        assert math.isfinite(p.observed_capability["v100"])
