"""Determinism audit trail: recording, persistence, divergence diffing."""

import json

import pytest

from repro import obs
from repro.core import (
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
)
from repro.models import get_workload
from repro.obs.audit import AuditRecord, AuditTrail, diff_audits
from repro.optim import SGD


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


def _record(step, params="p", buckets=None, rng="r", loader=None, policy="D1", dialects=("v100",)):
    return AuditRecord(
        step=step,
        params=params,
        buckets=buckets if buckets is not None else {"0": "b0", "1": "b1"},
        rng=rng,
        loader=loader if loader is not None else {"epoch": 0, "step_in_epoch": step},
        policy=policy,
        dialects=tuple(dialects),
    )


class TestAuditTrail:
    def test_steps_must_increase(self):
        trail = AuditTrail()
        trail.record(_record(0))
        trail.record(_record(1))
        with pytest.raises(ValueError, match="must increase"):
            trail.record(_record(1))

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditTrail(str(path)) as trail:
            trail.record(_record(0))
            trail.record(_record(1, params="q"))
        loaded = AuditTrail.load(str(path))
        assert not loaded.truncated
        assert loaded.records == trail.records

    def test_truncated_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditTrail(str(path)) as trail:
            trail.record(_record(0))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"step": 1, "par')
        loaded = AuditTrail.load(str(path))
        assert loaded.truncated
        assert [r.step for r in loaded.records] == [0]

    def test_malformed_middle_line_raises_with_location(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        path.write_text(_record(0).to_json() + "\njunk\n" + _record(1).to_json() + "\n")
        with pytest.raises(ValueError, match=r"audit\.jsonl:2"):
            AuditTrail.load(str(path))

    def test_missing_field_names_the_field(self):
        with pytest.raises(ValueError, match="missing required field"):
            AuditRecord.from_json(json.dumps({"params": "p"}))


class TestDiffAudits:
    def test_identical_trails(self):
        a, b = AuditTrail(), AuditTrail()
        for s in range(3):
            a.record(_record(s))
            b.record(_record(s))
        diff = diff_audits(a, b)
        assert diff.identical
        assert diff.first_divergent_step is None
        assert diff.common_steps == 3
        assert "no divergence" in diff.describe()

    def test_pinpoints_step_and_bucket(self):
        a, b = AuditTrail(), AuditTrail()
        for s in range(4):
            a.record(_record(s))
            if s < 2:
                b.record(_record(s))
            else:
                b.record(
                    _record(
                        s,
                        params="different",
                        buckets={"0": "b0", "1": "CHANGED"},
                        policy="D0",
                        dialects=("t4",),
                    )
                )
        diff = diff_audits(a, b)
        assert diff.first_divergent_step == 2
        assert diff.fields == ("params", "buckets")
        assert diff.buckets == ("1",)
        assert diff.policy_a == "D1" and diff.policy_b == "D0"
        assert diff.dialects_b == ("t4",)
        text = diff.describe()
        assert "step 2" in text and "1" in text and "D0" in text

    def test_step_coverage_mismatch_reported(self):
        a, b = AuditTrail(), AuditTrail()
        for s in range(3):
            a.record(_record(s))
        b.record(_record(0))
        diff = diff_audits(a, b)
        assert not diff.identical
        assert diff.only_in_a == 2 and diff.only_in_b == 0

    def test_bucket_present_on_one_side_only_diverges(self):
        a, b = AuditTrail(), AuditTrail()
        a.record(_record(0, buckets={"0": "x"}))
        b.record(_record(0, buckets={"0": "x", "1": "y"}))
        diff = diff_audits(a, b)
        assert diff.first_divergent_step == 0
        assert diff.buckets == ("1",)


class TestDiffDamagedTrails:
    """diff_audits must stay useful — and never raise — on trails damaged
    by a crash (cut mid-record), of unequal length, or containing
    fault-recovery rewind overlap."""

    def test_diff_against_mid_record_truncated_trail(self, tmp_path):
        path = tmp_path / "crashed.jsonl"
        with AuditTrail(str(path)) as writer:
            for s in range(4):
                writer.record(_record(s))
        # simulate a crash mid-write of the step-4 record
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"step": 4, "params": "half-writ')
        full = AuditTrail()
        for s in range(6):
            full.record(_record(s))
        crashed = AuditTrail.load(str(path))
        assert crashed.truncated
        diff = diff_audits(full, crashed)
        assert diff.first_divergent_step is None  # common prefix identical
        assert not diff.identical  # but coverage differs
        assert diff.common_steps == 4
        assert diff.only_in_a == 2 and diff.only_in_b == 0

    def test_unequal_length_with_divergence_before_the_gap(self):
        a, b = AuditTrail(), AuditTrail()
        for s in range(6):
            a.record(_record(s))
        for s in range(3):
            b.record(_record(s, params="other" if s == 1 else "p"))
        diff = diff_audits(a, b)
        # the real divergence wins over the coverage mismatch
        assert diff.first_divergent_step == 1
        assert diff.only_in_a == 3

    def test_rewound_trail_compares_equal_when_replay_is_bitwise(self, tmp_path):
        path = tmp_path / "rewound.jsonl"
        with AuditTrail(str(path), allow_rewind=True) as writer:
            for s in range(4):
                writer.record(_record(s))
            for s in (2, 3, 4, 5):  # restore to step 2, re-execute identically
                writer.record(_record(s))
        plain = AuditTrail()
        for s in range(6):
            plain.record(_record(s))
        rewound = AuditTrail.load(str(path))
        assert len(rewound.records) == 8  # raw history keeps the overlap
        diff = diff_audits(plain, rewound)
        assert diff.identical  # by_step last-wins collapses the replay

    def test_rewound_trail_diverges_when_replay_differs(self, tmp_path):
        path = tmp_path / "rewound.jsonl"
        with AuditTrail(str(path), allow_rewind=True) as writer:
            for s in range(4):
                writer.record(_record(s))
            for s in (2, 3):  # replay flips bits at step 3
                writer.record(_record(s, params="replayed" if s == 3 else "p"))
        plain = AuditTrail()
        for s in range(4):
            plain.record(_record(s))
        diff = diff_audits(plain, AuditTrail.load(str(path)))
        assert diff.first_divergent_step == 3
        assert "params" in diff.fields

    def test_empty_trails_do_not_raise(self):
        empty = AuditTrail()
        some = AuditTrail()
        some.record(_record(0))
        assert diff_audits(empty, AuditTrail()).identical
        diff = diff_audits(some, empty)
        assert not diff.identical
        assert diff.first_divergent_step is None
        assert diff.only_in_a == 1


def _train_audited(tmp_path, name, flip_policy_mid_run):
    """6 steps of resnet18 with a reconfigure after step 3; optionally the
    restored engine flips to D2 (hardware-agnostic) kernels — the seeded
    divergence the audit diff must localize."""
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(64, seed=3)
    path = tmp_path / f"{name}.jsonl"
    obs.configure(enabled=True, audit_path=str(path))

    def optimizer(model):
        return SGD(model.named_parameters(), lr=0.05, momentum=0.9)

    config = EasyScaleJobConfig(
        num_ests=2, seed=3, batch_size=4, determinism=determinism_from_label("D1")
    )
    engine = EasyScaleEngine(
        spec, dataset, config, optimizer, WorkerAssignment.named(["V100", "V100"], 2)
    )
    engine.train_steps(3)
    ckpt = engine.checkpoint()
    new_config = (
        EasyScaleJobConfig(
            num_ests=2, seed=3, batch_size=4, determinism=determinism_from_label("D1+D2")
        )
        if flip_policy_mid_run
        else config
    )
    engine = EasyScaleEngine.from_checkpoint(
        spec,
        dataset,
        ckpt,
        optimizer,
        WorkerAssignment.named(["V100"], 2),
        config=new_config,
    )
    engine.train_steps(3)
    obs.audit_trail().close()
    obs.reset()
    return path


class TestEndToEndAudit:
    def test_kernel_policy_flip_is_localized(self, tmp_path):
        path_a = _train_audited(tmp_path, "d1", flip_policy_mid_run=False)
        path_b = _train_audited(tmp_path, "d1d2", flip_policy_mid_run=True)
        a = AuditTrail.load(str(path_a))
        b = AuditTrail.load(str(path_b))
        assert [r.step for r in a.records] == list(range(6))
        diff = diff_audits(a, b)
        # steps 0-2 ran under identical D1 config; the flipped kernel policy
        # takes effect at step 3, the first step after the restore
        assert diff.first_divergent_step == 3
        assert "buckets" in diff.fields
        assert diff.buckets  # at least one gradient bucket named
        assert diff.policy_a == "D1" and diff.policy_b == "D1+D2"
        assert "agnostic" in diff.dialects_b or diff.dialects_b == ("v100",)

    def test_identical_runs_produce_identical_trails(self, tmp_path):
        path_a = _train_audited(tmp_path, "run1", flip_policy_mid_run=False)
        path_b = _train_audited(tmp_path, "run2", flip_policy_mid_run=False)
        diff = diff_audits(AuditTrail.load(str(path_a)), AuditTrail.load(str(path_b)))
        assert diff.identical
