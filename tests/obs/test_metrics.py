"""Metrics registry: instruments, labels, snapshots, exposition, no-ops."""

import pytest

from repro import obs
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("steps").inc()
        reg.counter("steps").inc(4)
        assert reg.counter("steps").value == 5

    def test_counter_rejects_decrement(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("steps").inc(-1)

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("queue_depth")
        g.set(10)
        g.dec(3)
        g.inc()
        assert g.value == 8

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        reg.counter("ops", gpu="V100").inc()
        reg.counter("ops", gpu="T4").inc(2)
        snap = reg.snapshot()["counters"]
        assert snap['ops{gpu="V100"}'] == 1
        assert snap['ops{gpu="T4"}'] == 2

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_label_order_is_canonical(self):
        # the same label set in any keyword order is ONE series
        reg = MetricsRegistry()
        reg.counter("ops", gpu="V100", phase="fwd").inc()
        reg.counter("ops", phase="fwd", gpu="V100").inc()
        snap = reg.snapshot()["counters"]
        assert snap == {'ops{gpu="V100",phase="fwd"}': 2}

    def test_exposition_is_stable_across_insertion_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("ops", gpu="V100", phase="fwd").inc(3)
        a.counter("ops", gpu="T4", phase="bwd").inc(1)
        b.counter("ops", phase="bwd", gpu="T4").inc(1)
        b.counter("ops", phase="fwd", gpu="V100").inc(3)
        assert a.to_prometheus_text() == b.to_prometheus_text()


class TestHistogram:
    def test_boundary_value_lands_in_its_bucket(self):
        h = Histogram(buckets=[1.0, 2.0, 4.0])
        h.observe(2.0)  # exactly on a bound: le semantics => that bucket
        assert h.counts == [0, 1, 0, 0]

    def test_below_first_and_above_last(self):
        h = Histogram(buckets=[1.0, 2.0])
        h.observe(0.5)
        h.observe(99.0)
        assert h.counts == [1, 0, 1]
        assert h.count == 2
        assert h.sum == pytest.approx(99.5)

    def test_cumulative_counts(self):
        h = Histogram(buckets=[1.0, 2.0])
        for v in (0.5, 1.5, 1.7, 5.0):
            h.observe(v)
        assert h.cumulative() == [1, 3, 4]

    def test_nonfinite_counted_not_recorded(self):
        h = Histogram(buckets=[1.0])
        h.observe(0.5)
        for bad in (float("nan"), float("inf"), float("-inf")):
            h.observe(bad)
        # the three bad samples never reach a bucket or poison the sum
        assert h.nonfinite == 3
        assert h.count == 1
        assert h.counts == [1, 0]
        assert h.sum == pytest.approx(0.5)

    def test_gauge_nonfinite_keeps_last_good_value(self):
        import math

        g = MetricsRegistry().gauge("speed")
        g.set(4.2)
        g.set(float("nan"))
        g.set(float("inf"))
        assert g.value == pytest.approx(4.2)
        assert g.nonfinite == 2
        assert math.isfinite(g.value)

    def test_nonfinite_survives_snapshot_delta(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=[1.0]).observe(float("nan"))
        before = reg.snapshot()
        assert before["histograms"]["lat"]["nonfinite"] == 1
        reg.histogram("lat", buckets=[1.0]).observe(float("inf"))
        delta = reg.delta(before)
        assert delta["histograms"]["lat"]["nonfinite"] == 1

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=[2.0, 1.0])
        with pytest.raises(ValueError):
            Histogram(buckets=[1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram(buckets=[])

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestQuantile:
    def test_empty_histogram_is_nan(self):
        import math

        assert math.isnan(Histogram(buckets=[1.0]).quantile(0.5))

    def test_out_of_range_rejected(self):
        h = Histogram(buckets=[1.0])
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)

    def test_interpolates_within_bucket(self):
        h = Histogram(buckets=[10.0, 20.0])
        for _ in range(4):
            h.observe(15.0)  # all mass in the (10, 20] bucket
        # p50 target = 2nd of 4 obs, halfway through the bucket's count
        assert h.quantile(0.5) == pytest.approx(15.0)
        assert h.quantile(1.0) == pytest.approx(20.0)

    def test_first_bucket_interpolates_from_zero(self):
        h = Histogram(buckets=[8.0])
        h.observe(1.0)
        h.observe(2.0)
        assert h.quantile(0.5) == pytest.approx(4.0)  # halfway into [0, 8]

    def test_overflow_clamps_to_last_bound(self):
        h = Histogram(buckets=[1.0, 2.0])
        h.observe(100.0)
        assert h.quantile(0.99) == pytest.approx(2.0)

    def test_tracks_known_distribution(self):
        h = Histogram(buckets=[float(b) for b in range(1, 101)])
        for v in range(1, 101):
            h.observe(v - 0.5)  # one observation per unit bucket
        assert h.quantile(0.5) == pytest.approx(50.0, abs=1.0)
        assert h.quantile(0.99) == pytest.approx(99.0, abs=1.0)


class TestSnapshotDelta:
    def test_delta_isolates_a_phase(self):
        reg = MetricsRegistry()
        reg.counter("ops").inc(10)
        reg.histogram("lat", buckets=[1.0]).observe(0.5)
        before = reg.snapshot()
        reg.counter("ops").inc(3)
        reg.histogram("lat", buckets=[1.0]).observe(2.0)
        delta = reg.delta(before)
        assert delta["counters"]["ops"] == 3
        assert delta["histograms"]["lat"]["count"] == 1
        assert delta["histograms"]["lat"]["counts"] == [0, 1]

    def test_snapshot_is_plain_data(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.01)
        json.dumps(reg.snapshot())  # must not raise


class TestPrometheusText:
    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("steps_total").inc(7)
        reg.gauge("sim_time", job="a").set(1.5)
        reg.histogram("lat", buckets=[0.1, 1.0]).observe(0.1)
        text = reg.to_prometheus_text()
        assert "# TYPE steps_total counter\nsteps_total 7" in text
        assert 'sim_time{job="a"} 1.5' in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 0.1" in text
        assert "lat_count 1" in text

    def test_empty_registry_empty_text(self):
        assert MetricsRegistry().to_prometheus_text() == ""

    def test_label_values_escaped(self):
        # the three characters the Prometheus text format requires escaping
        reg = MetricsRegistry()
        reg.counter("ops", path='C:\\tmp\\"job"\nnext').inc()
        text = reg.to_prometheus_text()
        assert 'ops{path="C:\\\\tmp\\\\\\"job\\"\\nnext"} 1' in text
        # no raw newline may leak into the series line
        series = [l for l in text.splitlines() if l.startswith("ops{")]
        assert len(series) == 1

    def test_escaped_labels_round_trip_through_snapshot_and_merge(self):
        src = MetricsRegistry()
        src.counter("ops", note='say "hi"\n').inc(2)
        dst = MetricsRegistry()
        dst.merge_state(src.to_state())
        assert dst.snapshot() == src.snapshot()
        dst.merge_state(src.to_state())
        # the escaped value stays one series, accumulating across merges
        (key, value), = dst.snapshot()["counters"].items()
        assert value == 4
        assert "ops" in key

    def test_escaping_unescapes_to_original(self):
        from repro.obs.metrics import _escape_label_value

        original = 'back\\slash "quoted"\nnewline'
        escaped = _escape_label_value(original)
        # inverse mapping per the exposition-format spec
        restored = (
            escaped.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        assert restored == original
        assert "\n" not in escaped


class TestDisabledMode:
    def test_null_registry_is_shared_and_inert(self):
        assert obs.metrics() is NULL_REGISTRY
        c = obs.metrics().counter("anything", gpu="V100")
        c.inc(1000)
        assert c.value == 0
        obs.metrics().histogram("h").observe(3.0)
        obs.metrics().gauge("g").set(9.0)
        assert obs.metrics().snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert obs.metrics().to_prometheus_text() == ""

    def test_enabled_registry_records(self):
        obs.configure(enabled=True)
        obs.metrics().counter("real").inc()
        assert obs.metrics().snapshot()["counters"]["real"] == 1


class TestTimeInto:
    def test_times_block_into_histogram(self):
        from repro.obs.metrics import Histogram, time_into

        hist = Histogram(buckets=(0.5, 60.0))
        with time_into(hist):
            pass
        assert hist.count == 1
        assert 0.0 <= hist.sum < 60.0

    def test_observes_even_when_block_raises(self):
        from repro.obs.metrics import Histogram, time_into

        hist = Histogram(buckets=(60.0,))
        with pytest.raises(RuntimeError):
            with time_into(hist):
                raise RuntimeError("boom")
        assert hist.count == 1

    def test_duration_recorded_and_exception_unmodified(self):
        from repro.obs.metrics import Histogram, time_into

        hist = Histogram(buckets=(0.5, 60.0))
        marker = KeyError("original")
        with pytest.raises(KeyError) as excinfo:
            with time_into(hist):
                raise marker
        assert excinfo.value is marker  # propagates untouched, not wrapped
        assert hist.count == 1
        assert 0.0 <= hist.sum < 60.0  # a real (tiny) duration was observed

    def test_null_instrument_accepted(self):
        from repro.obs.metrics import NULL_REGISTRY, time_into

        with time_into(NULL_REGISTRY.histogram("x")):
            pass  # no-op path must not branch or fail


class TestStateMerge:
    """to_state/merge_state: the cross-process metrics shard format."""

    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("steps", gpu="V100").inc(3)
        reg.gauge("depth").set(7)
        reg.histogram("lat", buckets=(1.0, 10.0)).observe(0.5)
        return reg

    def test_round_trip_preserves_series(self):
        src = self._populated()
        dst = MetricsRegistry()
        dst.merge_state(src.to_state())
        assert dst.snapshot() == src.snapshot()

    def test_merge_accumulates_counters_and_histograms(self):
        src = self._populated()
        dst = self._populated()
        dst.merge_state(src.to_state())
        snap = dst.snapshot()
        assert snap["counters"]['steps{gpu="V100"}'] == 6
        assert snap["gauges"]["depth"] == 7  # gauges overwrite, not add
        assert snap["histograms"]["lat"]["count"] == 2

    def test_extra_labels_key_child_series_apart(self):
        child = MetricsRegistry()
        child.counter("steps").inc(2)
        parent = MetricsRegistry()
        parent.counter("steps").inc(1)
        parent.merge_state(child.to_state(), extra_labels={"pid": "42"})
        snap = parent.snapshot()["counters"]
        assert snap["steps"] == 1
        assert snap['steps{pid="42"}'] == 2

    def test_histogram_bounds_mismatch_rejected(self):
        src = MetricsRegistry()
        src.histogram("lat", buckets=(1.0, 10.0)).observe(0.5)
        dst = MetricsRegistry()
        dst.histogram("lat", buckets=(2.0, 20.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            dst.merge_state(src.to_state())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown instrument kind"):
            MetricsRegistry().merge_state([{"kind": "summary", "name": "x"}])

    def test_state_is_json_safe(self):
        import json

        state = self._populated().to_state()
        assert json.loads(json.dumps(state)) == state
