"""Cluster utilization report: folding, metrics, renderers, round-trip."""

import pytest

from repro.obs.report import (
    ClusterUtilizationReport,
    events_from_trace,
    load_events_jsonl,
    save_events_jsonl,
)
from repro.utils.events import EventLog


def tiny_log() -> EventLog:
    """2-GPU cluster, two jobs: one served at t=0, one queued 10 s."""
    log = EventLog()
    log.emit(0.0, "cluster_capacity", v100=2)
    log.emit(0.0, "job_submit", job="a")
    log.emit(0.0, "scale_out", job="a", gtype="v100", gpus=2)
    log.emit(5.0, "job_submit", job="b")
    log.emit(10.0, "scale_in", job="a", gtype="v100", gpus=1)
    log.emit(10.0, "scale_out", job="b", gtype="v100", gpus=1)
    log.emit(20.0, "job_done", job="a", released=1)
    log.emit(30.0, "job_done", job="b", released=1)
    return log


class TestFolding:
    def test_busy_and_idle_gpu_seconds(self):
        report = ClusterUtilizationReport.from_events(tiny_log())
        # a: 2 GPUs x 10s + 1 GPU x 10s = 30; b: 1 GPU x 20s = 20
        assert report.busy_gpu_seconds["v100"] == pytest.approx(50.0)
        # capacity 2 x horizon 30 = 60 GPU-s total
        assert report.idle_gpu_seconds["v100"] == pytest.approx(10.0)
        assert report.total_idle_gpu_seconds == pytest.approx(10.0)
        assert report.utilization == pytest.approx(50.0 / 60.0)

    def test_queueing_delay_per_job(self):
        report = ClusterUtilizationReport.from_events(tiny_log())
        delays = report.queueing_delays()
        assert delays["a"] == pytest.approx(0.0)
        assert delays["b"] == pytest.approx(5.0)  # submitted 5, granted 10
        assert report.mean_queueing_delay == pytest.approx(2.5)

    def test_fragmentation_counts_starved_idle_time(self):
        # job b waits 5 s while the cluster is fully allocated (no free
        # capacity -> no contended-free seconds), then is served; after a
        # finishes at t=20 one GPU is free but nobody is starving
        report = ClusterUtilizationReport.from_events(tiny_log())
        assert report.contended_free_gpu_seconds == pytest.approx(0.0)
        assert report.fragmentation == pytest.approx(0.0)

    def test_fragmentation_positive_when_free_gpus_starve_a_job(self):
        log = EventLog()
        log.emit(0.0, "cluster_capacity", v100=4)
        log.emit(0.0, "job_submit", job="a")
        log.emit(0.0, "scale_out", job="a", gtype="v100", gpus=1)
        log.emit(0.0, "job_submit", job="b")  # never granted: starves
        log.emit(10.0, "job_done", job="a", released=1)
        report = ClusterUtilizationReport.from_events(log)
        # 3 free GPUs for 10 s while b held nothing
        assert report.contended_free_gpu_seconds == pytest.approx(30.0)
        assert report.fragmentation > 0.5

    def test_capacity_falls_back_to_peak_allocation(self):
        log = EventLog()
        log.emit(0.0, "job_submit", job="a")
        log.emit(0.0, "scale_out", job="a", gtype="t4", gpus=3)
        log.emit(8.0, "job_done", job="a", released=3)
        report = ClusterUtilizationReport.from_events(log)
        assert report.capacity == {"t4": 3}
        assert report.idle_gpu_seconds["t4"] == pytest.approx(0.0)

    def test_explicit_capacity_and_horizon_override(self):
        report = ClusterUtilizationReport.from_events(
            tiny_log(), capacity={"V100": 4}, horizon=40.0
        )
        assert report.capacity == {"v100": 4}
        assert report.horizon == 40.0
        assert report.idle_gpu_seconds["v100"] == pytest.approx(4 * 40 - 50)

    def test_job_done_releases_untracked_holdings(self):
        log = EventLog()
        log.emit(0.0, "cluster_capacity", v100=2)
        log.emit(0.0, "job_submit", job="a")
        log.emit(0.0, "scale_out", job="a", gtype="v100", gpus=2)
        log.emit(4.0, "job_done", job="a", released=2)
        report = ClusterUtilizationReport.from_events(log)
        assert report.allocation_timeline[-1] == (4.0, 0)
        assert report.busy_gpu_seconds["v100"] == pytest.approx(8.0)

    def test_empty_stream(self):
        report = ClusterUtilizationReport.from_events([])
        assert report.horizon == 0.0
        assert report.jobs == {}
        assert report.total_idle_gpu_seconds == 0.0


class TestRenderers:
    def test_text_contains_golden_substrings(self):
        text = ClusterUtilizationReport.from_events(tiny_log()).to_text()
        assert "idle GPU-seconds" in text
        assert "allocation timeline" in text
        assert "mean queueing delay" in text
        assert "fragmentation" in text
        # both jobs get a lane with a running segment
        for job in ("a", "b"):
            assert f"{job:>10} |" in text
        assert "#" in text

    def test_text_elides_beyond_max_jobs(self):
        log = EventLog()
        log.emit(0.0, "cluster_capacity", v100=8)
        for i in range(6):
            log.emit(float(i), "job_submit", job=f"j{i}")
            log.emit(float(i), "scale_out", job=f"j{i}", gtype="v100", gpus=1)
        text = ClusterUtilizationReport.from_events(log).to_text(max_jobs=4)
        assert "2 more jobs elided" in text

    def test_html_is_self_contained(self):
        html = ClusterUtilizationReport.from_events(tiny_log()).to_html()
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html  # inline CSS
        assert "idle GPU-seconds" in html
        assert 'class="lane"' in html  # per-job gantt lanes
        assert "src=" not in html and "href=" not in html  # no external assets

    def test_html_escapes_job_ids(self):
        log = EventLog()
        log.emit(0.0, "job_submit", job="<script>")
        log.emit(0.0, "scale_out", job="<script>", gtype="v100", gpus=1)
        html = ClusterUtilizationReport.from_events(log).to_html()
        assert "<script>" not in html
        assert "&lt;script&gt;" in html

    def test_summary_json_serializable(self):
        import json

        payload = json.loads(
            json.dumps(ClusterUtilizationReport.from_events(tiny_log()).summary())
        )
        assert payload["jobs"] == 2
        assert payload["completed"] == 2


class TestRoundTrip:
    def test_jsonl_save_load(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        count = save_events_jsonl(tiny_log(), path)
        assert count == 8
        rows = load_events_jsonl(path)
        direct = ClusterUtilizationReport.from_events(tiny_log())
        reloaded = ClusterUtilizationReport.from_events(rows)
        assert reloaded.summary() == direct.summary()

    def test_truncated_trailing_line_tolerated(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        save_events_jsonl(tiny_log(), path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"time": 99, "kind": "job_su')  # crash mid-write
        rows = load_events_jsonl(path)
        assert len(rows) == 8

    def test_events_from_trace_instants(self):
        records = [
            {"kind": "instant", "cat": "sched", "name": "job_submit",
             "t0": 0.0, "args": {"job": "a"}},
            {"kind": "instant", "cat": "sched", "name": "scale_out",
             "t0": 1.0, "args": {"job": "a", "gtype": "v100", "gpus": 2}},
            {"kind": "span", "cat": "engine", "name": "engine.global_step",
             "t0": 0.0, "t1": 1.0, "args": {}},
            {"kind": "instant", "cat": "engine", "name": "engine.scale_event",
             "t0": 2.0, "args": {}},
        ]
        events = events_from_trace(records)
        assert [e["kind"] for e in events] == ["job_submit", "scale_out"]
        report = ClusterUtilizationReport.from_events(events)
        assert report.jobs["a"].first_grant == pytest.approx(1.0)


class TestSimulatorIntegration:
    def test_report_from_live_simulation(self):
        from repro.hw.cluster import microbench_cluster
        from repro.sched.easyscale_policy import EasyScalePolicy
        from repro.sched.simulator import ClusterSimulator
        from repro.sched.trace import generate_trace

        jobs = generate_trace(num_jobs=6, seed=1)
        sim = ClusterSimulator(microbench_cluster(), jobs, EasyScalePolicy(True))
        sim.run()
        report = ClusterUtilizationReport.from_events(sim.events)
        # capacity came from the leading cluster_capacity event
        assert report.capacity == {"v100": 32, "p100": 16, "t4": 16}
        assert len(report.jobs) == 6
        assert report.total_busy_gpu_seconds > 0
        assert report.total_idle_gpu_seconds > 0
        text = report.to_text()
        assert "idle GPU-seconds" in text
