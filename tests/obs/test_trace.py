"""Span tracer: nesting, exception safety, clocks, exporters, persistence."""

import json
import threading

import pytest

from repro import obs
from repro.obs.trace import SimClock, SpanTracer, flame_summary


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


class TestSpanNesting:
    def test_paths_record_the_stack(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        paths = {r["path"] for r in tracer.records}
        assert paths == {"outer", "outer;inner"}

    def test_depth_matches_nesting(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        by_name = {r["name"]: r for r in tracer.records}
        assert (by_name["a"]["depth"], by_name["b"]["depth"], by_name["c"]["depth"]) == (0, 1, 2)

    def test_sibling_spans_do_not_nest(self):
        tracer = SpanTracer()
        with tracer.span("parent"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        by_name = {r["name"]: r for r in tracer.records}
        assert by_name["first"]["path"] == "parent;first"
        assert by_name["second"]["path"] == "parent;second"

    def test_exception_still_records_and_unwinds(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("boom"):
                    raise RuntimeError("kaput")
        by_name = {r["name"]: r for r in tracer.records}
        assert by_name["boom"]["args"]["error"] == "RuntimeError"
        assert by_name["outer"]["args"]["error"] == "RuntimeError"
        # stack fully unwound: a new span starts at depth 0
        with tracer.span("after"):
            pass
        assert {r["name"]: r for r in tracer.records}["after"]["depth"] == 0

    def test_threads_get_independent_stacks(self):
        tracer = SpanTracer()
        done = threading.Event()

        def other():
            with tracer.span("thread_span"):
                pass
            done.set()

        with tracer.span("main_span"):
            t = threading.Thread(target=other)
            t.start()
            t.join()
        assert done.is_set()
        by_name = {r["name"]: r for r in tracer.records}
        # the other thread's span must not inherit the main thread's stack
        assert by_name["thread_span"]["path"] == "thread_span"
        assert by_name["thread_span"]["tid"] != by_name["main_span"]["tid"]


class TestRingBuffer:
    def test_bounded_memory(self):
        tracer = SpanTracer(ring_size=8)
        for i in range(50):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 8
        assert tracer.emitted == 50
        assert tracer.records[-1]["name"] == "s49"

    def test_bad_ring_size_rejected(self):
        with pytest.raises(ValueError):
            SpanTracer(ring_size=0)


class TestClocks:
    def test_sim_clock_est_advances(self):
        tracer = SpanTracer(clock="sim")
        with tracer.span("fwd", est=3.0):
            pass
        with tracer.span("bwd", est=2.0):
            pass
        r0, r1 = tracer.records
        assert (r0["t0"], r0["t1"]) == (0.0, 3.0)
        assert (r1["t0"], r1["t1"]) == (3.0, 5.0)

    def test_wall_clock_monotone(self):
        tracer = SpanTracer()
        with tracer.span("x"):
            pass
        (r,) = tracer.records
        assert r["t1"] >= r["t0"]

    def test_sim_clock_rejects_backwards(self):
        clock = SimClock(5.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.set(1.0)

    def test_unknown_clock_mode(self):
        with pytest.raises(ValueError):
            SpanTracer(clock="lunar")


class TestExplicitSpans:
    def test_add_span_and_tracks(self):
        tracer = SpanTracer()
        tracer.add_span("job:a", 0.0, 10.0, track="a")
        tracer.add_span("job:b", 5.0, 12.0, track="b")
        tracer.add_span("job:a2", 11.0, 15.0, track="a")
        a, b, a2 = tracer.records
        assert a["tid"] == a2["tid"] != b["tid"]
        with pytest.raises(ValueError):
            tracer.add_span("bad", 10.0, 5.0)

    def test_instant_with_explicit_ts(self):
        tracer = SpanTracer()
        tracer.instant("scale", ts=42.0, gpus=2)
        (r,) = tracer.records
        assert r["kind"] == "instant" and r["t0"] == 42.0


class TestChromeExport:
    def test_round_trip_through_jsonl(self, tmp_path):
        tracer = SpanTracer(clock="sim")
        with tracer.span("outer", est=4.0, step=7):
            with tracer.span("inner", est=1.0):
                pass
        tracer.instant("marker", ts=2.0)
        path = tmp_path / "trace.jsonl"
        tracer.save(str(path))

        loaded = SpanTracer.load(str(path))
        assert not loaded.truncated
        assert loaded.sim_clock is not None  # clock mode restored from meta
        assert [r["name"] for r in loaded.records] == [
            r["name"] for r in tracer.records
        ]

        chrome = loaded.to_chrome_trace()
        events = chrome["traceEvents"]
        assert {e["ph"] for e in events} == {"X", "i"}
        outer = next(e for e in events if e["name"] == "outer")
        assert outer["dur"] == pytest.approx(5.0 * 1e6)  # inner est + own est
        assert outer["args"]["step"] == 7
        # full document is valid JSON
        json.loads(json.dumps(chrome))

    def test_truncated_trailing_line_is_flagged(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("ok"):
            pass
        path = tmp_path / "trace.jsonl"
        tracer.save(str(path))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "span", "name": "part')  # crash mid-write
        loaded = SpanTracer.load(str(path))
        assert loaded.truncated
        assert [r["name"] for r in loaded.records] == ["ok"]

    def test_malformed_middle_line_raises_with_location(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "meta", "version": 1, "clock": "wall"}\nnot json\n{}\n')
        with pytest.raises(ValueError, match=r"trace\.jsonl:2"):
            SpanTracer.load(str(path))


class TestFlameSummary:
    def test_totals_and_self_time(self):
        records = [
            {"kind": "span", "name": "a", "path": "a", "t0": 0.0, "t1": 10.0},
            {"kind": "span", "name": "b", "path": "a;b", "t0": 1.0, "t1": 4.0},
            {"kind": "span", "name": "b", "path": "a;b", "t0": 5.0, "t1": 7.0},
            {"kind": "instant", "name": "i", "path": "i", "t0": 2.0, "t1": 2.0},
        ]
        text = flame_summary(records)
        lines = text.splitlines()
        assert "a" in lines[1] and "10.0" in lines[1]
        # self time of a = 10 - (3 + 2) = 5
        assert "5.0" in lines[1]
        assert "b" in lines[2] and lines[2].rstrip().endswith("b")

    def test_children_print_under_parent(self):
        tracer = SpanTracer()
        with tracer.span("z_parent"):
            with tracer.span("a_child"):
                pass
        with tracer.span("a_parent"):
            pass
        lines = tracer.flame_summary().splitlines()[1:]
        names = [line.split()[-1] for line in lines]
        assert names == ["a_parent", "z_parent", "a_child"]


class TestGlobalSwitch:
    def test_disabled_span_is_shared_noop(self):
        assert obs.span("anything", step=1) is obs.span("other")
        assert len(obs.tracer()) == 0

    def test_disabled_instant_records_nothing(self):
        obs.instant("nope")
        assert len(obs.tracer()) == 0

    def test_configure_installs_fresh_state(self):
        obs.configure(enabled=True)
        with obs.span("x"):
            pass
        assert len(obs.tracer()) == 1
        obs.configure(enabled=True)
        assert len(obs.tracer()) == 0

    def test_sim_clock_accessor(self):
        assert obs.sim_clock() is None
        obs.configure(enabled=True, clock="sim")
        assert obs.sim_clock() is not None
