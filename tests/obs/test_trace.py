"""Span tracer: nesting, exception safety, clocks, exporters, persistence."""

import json
import threading

import pytest

from repro import obs
from repro.obs.trace import SimClock, SpanTracer, flame_summary


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


class TestSpanNesting:
    def test_paths_record_the_stack(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        paths = {r["path"] for r in tracer.records}
        assert paths == {"outer", "outer;inner"}

    def test_depth_matches_nesting(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        by_name = {r["name"]: r for r in tracer.records}
        assert (by_name["a"]["depth"], by_name["b"]["depth"], by_name["c"]["depth"]) == (0, 1, 2)

    def test_sibling_spans_do_not_nest(self):
        tracer = SpanTracer()
        with tracer.span("parent"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        by_name = {r["name"]: r for r in tracer.records}
        assert by_name["first"]["path"] == "parent;first"
        assert by_name["second"]["path"] == "parent;second"

    def test_exception_still_records_and_unwinds(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("boom"):
                    raise RuntimeError("kaput")
        by_name = {r["name"]: r for r in tracer.records}
        assert by_name["boom"]["args"]["error"] == "RuntimeError"
        assert by_name["outer"]["args"]["error"] == "RuntimeError"
        # stack fully unwound: a new span starts at depth 0
        with tracer.span("after"):
            pass
        assert {r["name"]: r for r in tracer.records}["after"]["depth"] == 0

    def test_threads_get_independent_stacks(self):
        tracer = SpanTracer()
        done = threading.Event()

        def other():
            with tracer.span("thread_span"):
                pass
            done.set()

        with tracer.span("main_span"):
            t = threading.Thread(target=other)
            t.start()
            t.join()
        assert done.is_set()
        by_name = {r["name"]: r for r in tracer.records}
        # the other thread's span must not inherit the main thread's stack
        assert by_name["thread_span"]["path"] == "thread_span"
        assert by_name["thread_span"]["tid"] != by_name["main_span"]["tid"]


class TestRingBuffer:
    def test_bounded_memory(self):
        tracer = SpanTracer(ring_size=8)
        for i in range(50):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 8
        assert tracer.emitted == 50
        assert tracer.records[-1]["name"] == "s49"

    def test_bad_ring_size_rejected(self):
        with pytest.raises(ValueError):
            SpanTracer(ring_size=0)


class TestClocks:
    def test_sim_clock_est_advances(self):
        tracer = SpanTracer(clock="sim")
        with tracer.span("fwd", est=3.0):
            pass
        with tracer.span("bwd", est=2.0):
            pass
        r0, r1 = tracer.records
        assert (r0["t0"], r0["t1"]) == (0.0, 3.0)
        assert (r1["t0"], r1["t1"]) == (3.0, 5.0)

    def test_wall_clock_monotone(self):
        tracer = SpanTracer()
        with tracer.span("x"):
            pass
        (r,) = tracer.records
        assert r["t1"] >= r["t0"]

    def test_sim_clock_rejects_backwards(self):
        clock = SimClock(5.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.set(1.0)

    def test_unknown_clock_mode(self):
        with pytest.raises(ValueError):
            SpanTracer(clock="lunar")


class TestExplicitSpans:
    def test_add_span_and_tracks(self):
        tracer = SpanTracer()
        tracer.add_span("job:a", 0.0, 10.0, track="a")
        tracer.add_span("job:b", 5.0, 12.0, track="b")
        tracer.add_span("job:a2", 11.0, 15.0, track="a")
        a, b, a2 = tracer.records
        assert a["tid"] == a2["tid"] != b["tid"]
        with pytest.raises(ValueError):
            tracer.add_span("bad", 10.0, 5.0)

    def test_instant_with_explicit_ts(self):
        tracer = SpanTracer()
        tracer.instant("scale", ts=42.0, gpus=2)
        (r,) = tracer.records
        assert r["kind"] == "instant" and r["t0"] == 42.0


class TestChromeExport:
    def test_round_trip_through_jsonl(self, tmp_path):
        tracer = SpanTracer(clock="sim")
        with tracer.span("outer", est=4.0, step=7):
            with tracer.span("inner", est=1.0):
                pass
        tracer.instant("marker", ts=2.0)
        path = tmp_path / "trace.jsonl"
        tracer.save(str(path))

        loaded = SpanTracer.load(str(path))
        assert not loaded.truncated
        assert loaded.sim_clock is not None  # clock mode restored from meta
        assert [r["name"] for r in loaded.records] == [
            r["name"] for r in tracer.records
        ]

        chrome = loaded.to_chrome_trace()
        events = chrome["traceEvents"]
        # X/i payload events plus M metadata (process/thread lane names)
        assert {e["ph"] for e in events} == {"X", "i", "M"}
        outer = next(e for e in events if e["name"] == "outer")
        assert outer["dur"] == pytest.approx(5.0 * 1e6)  # inner est + own est
        assert outer["args"]["step"] == 7
        # full document is valid JSON
        json.loads(json.dumps(chrome))

    def test_truncated_trailing_line_is_flagged(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("ok"):
            pass
        path = tmp_path / "trace.jsonl"
        tracer.save(str(path))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "span", "name": "part')  # crash mid-write
        loaded = SpanTracer.load(str(path))
        assert loaded.truncated
        assert [r["name"] for r in loaded.records] == ["ok"]

    def test_malformed_middle_line_raises_with_location(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "meta", "version": 1, "clock": "wall"}\nnot json\n{}\n')
        with pytest.raises(ValueError, match=r"trace\.jsonl:2"):
            SpanTracer.load(str(path))


class TestFlameSummary:
    def test_totals_and_self_time(self):
        records = [
            {"kind": "span", "name": "a", "path": "a", "t0": 0.0, "t1": 10.0},
            {"kind": "span", "name": "b", "path": "a;b", "t0": 1.0, "t1": 4.0},
            {"kind": "span", "name": "b", "path": "a;b", "t0": 5.0, "t1": 7.0},
            {"kind": "instant", "name": "i", "path": "i", "t0": 2.0, "t1": 2.0},
        ]
        text = flame_summary(records)
        lines = text.splitlines()
        assert "a" in lines[1] and "10.0" in lines[1]
        # self time of a = 10 - (3 + 2) = 5
        assert "5.0" in lines[1]
        assert "b" in lines[2] and lines[2].rstrip().endswith("b")

    def test_children_print_under_parent(self):
        tracer = SpanTracer()
        with tracer.span("z_parent"):
            with tracer.span("a_child"):
                pass
        with tracer.span("a_parent"):
            pass
        lines = tracer.flame_summary().splitlines()[1:]
        names = [line.split()[-1] for line in lines]
        assert names == ["a_parent", "z_parent", "a_child"]


class TestGlobalSwitch:
    def test_disabled_span_is_shared_noop(self):
        assert obs.span("anything", step=1) is obs.span("other")
        assert len(obs.tracer()) == 0

    def test_disabled_instant_records_nothing(self):
        obs.instant("nope")
        assert len(obs.tracer()) == 0

    def test_configure_installs_fresh_state(self):
        obs.configure(enabled=True)
        with obs.span("x"):
            pass
        assert len(obs.tracer()) == 1
        obs.configure(enabled=True)
        assert len(obs.tracer()) == 0

    def test_sim_clock_accessor(self):
        assert obs.sim_clock() is None
        obs.configure(enabled=True, clock="sim")
        assert obs.sim_clock() is not None


class TestOpenSpansAndClose:
    """Still-open spans: inspectable live, flushed exactly once on close()."""

    def test_open_spans_snapshot_deepest_first(self):
        tracer = SpanTracer()
        with tracer.span("outer", step=1):
            with tracer.span("inner"):
                open_now = tracer.open_spans()
                assert [s["name"] for s in open_now] == ["inner", "outer"]
                assert open_now[1]["args"] == {"step": 1}
                assert open_now[0]["path"] == "outer;inner"
        assert tracer.open_spans() == []

    def test_close_flushes_unclosed_span_once(self):
        tracer = SpanTracer()
        ctx = tracer.span("dangling", step=5)
        ctx.__enter__()
        tracer.close()
        records = [r for r in tracer.records if r["name"] == "dangling"]
        assert len(records) == 1
        assert records[0]["args"]["unclosed"] is True
        assert records[0]["args"]["step"] == 5
        assert records[0]["t1"] >= records[0]["t0"]
        # the with-block exit after close() must NOT record a second copy
        ctx.__exit__(None, None, None)
        assert len([r for r in tracer.records if r["name"] == "dangling"]) == 1

    def test_tracer_usable_after_close(self):
        tracer = SpanTracer()
        ctx = tracer.span("orphan")
        ctx.__enter__()
        tracer.close()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        by_name = {r["name"]: r for r in tracer.records}
        assert by_name["a"]["depth"] == 0  # stack was reset, not corrupted
        assert by_name["b"]["path"] == "a;b"

    def test_closed_spans_export_cleanly_to_chrome(self):
        tracer = SpanTracer()
        outer = tracer.span("outer")
        outer.__enter__()
        inner = tracer.span("inner")
        inner.__enter__()
        tracer.close()
        doc = tracer.to_chrome_trace()
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        assert all(e["dur"] >= 0 for e in complete)

    def test_close_on_clean_tracer_is_noop(self):
        tracer = SpanTracer()
        with tracer.span("done"):
            pass
        before = len(tracer)
        tracer.close()
        assert len(tracer) == before


class TestChromeLanes:
    """Multi-process exports: one pid lane per process, EST/worker tids."""

    def _span(self, name, pid=None, **args):
        rec = {"kind": "span", "name": name, "path": name,
               "t0": 0.0, "t1": 1.0, "tid": 1, "args": args}
        if pid is not None:
            rec["pid"] = pid
        return rec

    def test_child_records_keep_their_pid_lane(self):
        from repro.obs.trace import records_to_chrome_trace

        doc = records_to_chrome_trace([
            self._span("parent_side"),
            self._span("child_side", pid=4242),
        ])
        by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert by_name["parent_side"]["pid"] == 0
        assert by_name["child_side"]["pid"] == 4242

    def test_process_metadata_names_lanes(self):
        from repro.obs.trace import records_to_chrome_trace

        doc = records_to_chrome_trace([
            self._span("a"),
            self._span("b", pid=77),
        ])
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["pid"], e["args"]["name"])
                 for e in meta if e["name"] == "process_name"}
        assert (0, "parent") in names
        assert (77, "pool worker pid 77") in names

    def test_vrank_and_worker_args_pick_lanes(self):
        from repro.obs.trace import (
            EST_LANE_BASE,
            WORKER_LANE_BASE,
            records_to_chrome_trace,
        )

        doc = records_to_chrome_trace([
            self._span("step", vrank=3),
            self._span("task", worker=1),
        ])
        by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert by_name["step"]["tid"] == EST_LANE_BASE + 3
        assert by_name["task"]["tid"] == WORKER_LANE_BASE + 1
        threads = {(e["tid"], e["args"]["name"])
                   for e in doc["traceEvents"]
                   if e["ph"] == "M" and e["name"] == "thread_name"}
        assert (EST_LANE_BASE + 3, "EST 3") in threads
        assert (WORKER_LANE_BASE + 1, "worker 1") in threads

    def test_non_integer_lane_args_fall_back_to_tid(self):
        from repro.obs.trace import records_to_chrome_trace

        doc = records_to_chrome_trace([self._span("odd", vrank="?")])
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["tid"] == 1  # the record's own tid, not a lane


class TestShards:
    """Per-pid shard files: append, load, and fold into a tracer."""

    def test_append_load_round_trip(self, tmp_path):
        from repro.obs.trace import (
            append_shard_records,
            load_shard_records,
            shard_span_path,
        )

        tracer = SpanTracer()
        with tracer.span("child_work", step=3):
            pass
        path = shard_span_path(str(tmp_path), pid=123)
        append_shard_records(path, tracer.records, pid=123)
        append_shard_records(path, tracer.records, pid=123)  # append, not clobber
        loaded = load_shard_records(path)
        assert len(loaded) == 2
        assert all(r["pid"] == 123 for r in loaded)
        assert all(r["name"] == "child_work" for r in loaded)

    def test_load_skips_truncated_tail(self, tmp_path):
        from repro.obs.trace import (
            append_shard_records,
            load_shard_records,
            shard_span_path,
        )

        tracer = SpanTracer()
        with tracer.span("ok"):
            pass
        path = shard_span_path(str(tmp_path), pid=9)
        append_shard_records(path, tracer.records, pid=9)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "span", "name": "torn')
        loaded = load_shard_records(path)
        assert [r["name"] for r in loaded] == ["ok"]

    def test_ingest_folds_foreign_records(self):
        tracer = SpanTracer()
        with tracer.span("local"):
            pass
        tracer.ingest([
            {"kind": "span", "name": "remote", "path": "remote",
             "t0": 0.0, "t1": 1.0, "pid": 55},
        ])
        names = {r["name"]: r for r in tracer.records}
        assert names["remote"]["pid"] == 55
        assert "pid" not in names["local"]  # parent records stay pid-less
        assert tracer.emitted == 2
