"""Divergence forensics: ranked cause attribution beyond "params differ".

The acceptance contract (ISSUE 7): two runs with a seeded kernel-variant
swap at step *k* must be attributed to step *k* and the dialect switch —
not merely reported as divergent parameters.
"""

import pytest

from repro import obs
from repro.core import (
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
)
from repro.models import get_workload
from repro.obs.audit import AuditRecord, AuditTrail
from repro.obs.flightrec import FlightRecorder, load_bundle
from repro.obs.forensics import analyze_divergence, trail_from_bundle
from tests.conftest import sgd_factory


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


def _record(step, params="p", policy="D1", dialects=("v100", "v100"), rng="r",
            loader=None):
    return AuditRecord(
        step=step,
        params=params,
        buckets={"0": params},
        rng=rng,
        loader=loader if loader is not None else {"epoch": 0, "step_in_epoch": step},
        policy=policy,
        dialects=tuple(dialects),
    )


# ---------------------------------------------------------------------------
# synthetic trails
# ---------------------------------------------------------------------------


class TestSyntheticAttribution:
    def test_identical_trails_report_identical(self):
        a, b = AuditTrail(), AuditTrail()
        for s in range(4):
            a.record(_record(s))
            b.record(_record(s))
        report = analyze_divergence(a, b)
        assert report.identical
        assert not report.causes
        assert "identical" in report.describe()

    def test_dialect_swap_attributed_to_step_and_switch(self):
        a, b = AuditTrail(), AuditTrail()
        for s in range(6):
            a.record(_record(s))
            if s < 3:
                b.record(_record(s))
            else:
                # the seeded kernel-variant swap: worker 1 moves to a T4
                b.record(_record(s, params=f"swapped{s}", dialects=("v100", "t4")))
        report = analyze_divergence(a, b)
        assert not report.identical
        assert report.diff.first_divergent_step == 3
        assert report.attributed, "must find a structural cause, not just drift"
        top = report.top_cause
        assert top.kind in ("dialect_switch", "dialect_mismatch")
        assert top.step == 3
        head = report.headline()
        assert "step 3" in head and "dialect" in head
        # the full report ranks the dialect cause above any field drift
        text = report.describe()
        assert "ranked causes" in text and "1. [dialect_" in text

    def test_field_drift_alone_is_not_attributed(self):
        a, b = AuditTrail(), AuditTrail()
        for s in range(4):
            a.record(_record(s))
            b.record(_record(s, rng="other" if s >= 2 else "r"))
        report = analyze_divergence(a, b)
        assert report.diff.first_divergent_step == 2
        assert not report.attributed
        assert all(c.kind in ("rng_divergence", "loader_divergence")
                   for c in report.causes)

    def test_policy_mismatch_attributed(self):
        a, b = AuditTrail(), AuditTrail()
        for s in range(3):
            a.record(_record(s))
            b.record(_record(s, params="q" if s >= 1 else "p",
                             policy="D1+D2" if s >= 1 else "D1"))
        report = analyze_divergence(a, b)
        assert report.attributed
        kinds = {c.kind for c in report.causes}
        assert kinds & {"policy_switch", "policy_mismatch"}

    def test_recovery_rewind_detected(self, tmp_path):
        a = AuditTrail()
        for s in range(5):
            a.record(_record(s))
        # the rewound raw history only survives in the JSONL mirror — the
        # in-memory trail truncates the stale tail on rewind
        path = tmp_path / "rewound.jsonl"
        with AuditTrail(str(path), allow_rewind=True) as writer:
            for s in (0, 1, 2, 3):
                writer.record(_record(s))
            for s in (2, 3, 4):  # restore to step 2 and re-execute
                writer.record(_record(s, params="replayed" if s >= 3 else "p"))
        b = AuditTrail.load(str(path))
        report = analyze_divergence(a, b)
        assert report.diff.first_divergent_step == 3
        assert any(c.kind == "recovery_rewind" and c.side == "B"
                   for c in report.causes)

    def test_flight_events_enrich_attribution(self):
        a, b = AuditTrail(), AuditTrail()
        for s in range(5):
            a.record(_record(s))
            b.record(_record(s, params="x" if s >= 3 else "p"))
        events_b = [
            {"kind": "fault.detect", "step": 3, "fault": "worker_crash"},
            {"kind": "sched.grant", "step": 2, "job": "j0"},
            {"kind": "fault.detect", "step": 50, "fault": "far_away"},  # outside window
        ]
        report = analyze_divergence(a, b, events_b=events_b)
        assert report.attributed
        fault_causes = [c for c in report.causes if c.kind == "fault_event"]
        assert len(fault_causes) == 1 and fault_causes[0].step == 3
        assert "worker_crash" in fault_causes[0].detail
        assert any(c.kind == "scheduler_decision" for c in report.causes)
        assert any("event fault.detect" in line for line in report.timeline)

    def test_coverage_mismatch_without_common_divergence(self):
        a, b = AuditTrail(), AuditTrail()
        for s in range(4):
            a.record(_record(s))
        b.record(_record(0))
        report = analyze_divergence(a, b)
        assert not report.identical
        assert report.diff.first_divergent_step is None
        assert "coverage differs" in report.headline()

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            analyze_divergence(AuditTrail(), AuditTrail(), window=0)


def test_trail_from_bundle_round_trip(tmp_path):
    rec = FlightRecorder(directory=str(tmp_path))
    for s in range(3):
        rec.note_audit(
            _record(s, dialects=("v100", "t4")).__dict__
            | {"buckets": {"0": "p"}, "dialects": ["v100", "t4"]}
        )
    bundle = load_bundle(rec.dump("roundtrip"))
    trail = trail_from_bundle(bundle)
    assert [r.step for r in trail.records] == [0, 1, 2]
    assert trail.records[-1].dialects == ("v100", "t4")
    assert trail.records[-1].policy == "D1"


# ---------------------------------------------------------------------------
# real runs: seeded kernel-variant swap at step 3
# ---------------------------------------------------------------------------


def _train_audited(tmp_path, name, swap_gpu_mid_run):
    """6 steps of resnet18 under D1; run B reconfigures worker 1 onto a T4
    after step 3 — the seeded kernel-variant swap forensics must localize."""
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(64, seed=3)
    path = tmp_path / f"{name}.jsonl"
    obs.configure(enabled=True, audit_path=str(path))
    config = EasyScaleJobConfig(
        num_ests=2, seed=3, batch_size=4, determinism=determinism_from_label("D1")
    )
    engine = EasyScaleEngine(
        spec, dataset, config, sgd_factory(),
        WorkerAssignment.named(["V100", "V100"], 2),
    )
    engine.train_steps(3)
    if swap_gpu_mid_run:
        engine = engine.reconfigure(WorkerAssignment.named(["V100", "T4"], 2))
    engine.train_steps(3)
    obs.audit_trail().close()
    obs.reset()
    return path


class TestRealRunAttribution:
    def test_seeded_dialect_swap_attributed_not_just_params(self, tmp_path):
        path_a = _train_audited(tmp_path, "steady", swap_gpu_mid_run=False)
        path_b = _train_audited(tmp_path, "swapped", swap_gpu_mid_run=True)
        a = AuditTrail.load(str(path_a))
        b = AuditTrail.load(str(path_b))
        report = analyze_divergence(a, b)
        # under D1 (no D2 dialect pinning) the T4 kernels flip bits at the
        # first post-swap step
        assert report.diff.first_divergent_step == 3
        assert report.attributed
        top = report.top_cause
        assert top.kind in ("dialect_switch", "dialect_mismatch")
        assert top.step == 3
        assert "t4" in top.detail
        head = report.headline()
        assert "step 3" in head and "dialect" in head
