"""API parity between enabled and disabled observability surfaces.

Disabled-mode call sites use the exact same method calls as enabled-mode
ones (that is the design: no branching at the site).  These tests pin the
contract structurally — every public method and signature on the real
instruments/registry must exist identically on the null stand-ins — so
the two surfaces cannot drift apart silently.
"""

import inspect

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    _NullInstrument,
)


def public_methods(cls):
    return {
        name: member
        for name, member in inspect.getmembers(cls, inspect.isfunction)
        if not name.startswith("_")
    }


def assert_signatures_match(real_cls, null_cls, *, ignore=()):
    """Every public method of ``real_cls`` exists on ``null_cls`` with an
    identical signature."""
    real = public_methods(real_cls)
    null = public_methods(null_cls)
    missing = set(real) - set(null) - set(ignore)
    assert not missing, f"{null_cls.__name__} lacks {sorted(missing)} of {real_cls.__name__}"
    for name, method in real.items():
        if name in ignore:
            continue
        # parameters (names, kinds, defaults, annotations) must agree;
        # return annotations legitimately differ (Counter vs _NullInstrument)
        real_params = list(inspect.signature(method).parameters.values())
        null_params = list(inspect.signature(null[name]).parameters.values())
        assert real_params == null_params, (
            f"{real_cls.__name__}.{name}({real_params}) != "
            f"{null_cls.__name__}.{name}({null_params})"
        )


class TestInstrumentParity:
    @pytest.mark.parametrize("real_cls", [Counter, Gauge, Histogram])
    def test_null_instrument_covers_every_real_instrument(self, real_cls):
        assert_signatures_match(real_cls, _NullInstrument)

    def test_null_instrument_has_real_attributes(self):
        null = _NullInstrument()
        for attr in ("value", "sum", "count", "nonfinite", "bounds"):
            assert hasattr(null, attr), f"_NullInstrument missing .{attr}"

    def test_null_instrument_returns_compatible_types(self):
        import math

        null = _NullInstrument()
        assert null.cumulative() == []
        assert math.isnan(null.quantile(0.5))
        assert null.inc() is None and null.set(1.0) is None
        assert null.observe(1.0) is None and null.dec() is None

    def test_null_instrument_stays_inert(self):
        null = _NullInstrument()
        null.inc(100)
        null.set(100)
        null.observe(100)
        assert null.value == 0.0 and null.count == 0 and null.sum == 0.0
        assert null.nonfinite == 0


class TestRegistryParity:
    def test_null_registry_covers_metrics_registry(self):
        assert_signatures_match(MetricsRegistry, NullRegistry)

    def test_both_expose_enabled_flag(self):
        assert MetricsRegistry.enabled is True
        assert NullRegistry.enabled is False

    def test_null_registry_snapshot_shape_matches(self):
        real = MetricsRegistry().snapshot()
        null = NullRegistry().snapshot()
        assert set(real) == set(null) == {"counters", "gauges", "histograms"}

    def test_null_registry_delta_accepts_real_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        snap = reg.snapshot()
        out = NullRegistry().delta(snap)
        assert set(out) == {"counters", "gauges", "histograms"}
