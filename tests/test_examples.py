"""Smoke tests: the example scripts stay runnable and verify themselves.

Each example ends by asserting its own bitwise claim (raising SystemExit
on mismatch), so a clean exit code is a real correctness signal, not just
an import check.  Only the fast examples run here; the trace/colocation
demos are covered by their benchmark counterparts.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "heterogeneous_training.py",
    "fault_tolerance.py",
    "porting_custom_loop.py",
    "end_to_end_cluster.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_and_self_verifies(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert "IDENTICAL" in result.stdout or "identical" in result.stdout


def test_all_examples_exist():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    expected = set(FAST_EXAMPLES) | {"cluster_scheduling.py", "serving_colocation.py"}
    assert expected <= present
