"""Telemetry records and JSONL round trips."""

import pytest

from repro.utils.telemetry import Record, RunLog


class TestRecord:
    def test_json_roundtrip(self):
        record = Record(kind="step", step=3, data={"losses": [1.0, 2.0]})
        out = Record.from_json(record.to_json())
        assert out == record

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Record(kind="mystery", step=0)

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            Record(kind="step", step=-1)


class TestRunLog:
    def test_in_memory_collection(self):
        log = RunLog()
        log.step(0, [1.0, 2.0])
        log.scale_event(1, ["V100", "V100"])
        log.eval(1, "accuracy", 0.5)
        log.note(1, "hello")
        log.checkpoint(2, "abc123")
        assert len(log) == 5
        assert len(log.of_kind("step")) == 1

    def test_loss_series(self):
        log = RunLog()
        log.step(0, [1.0, 3.0])
        log.step(1, [2.0])
        assert log.loss_series() == [2.0, 2.0]

    def test_file_mirroring_and_load(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path) as log:
            log.step(0, [0.5])
            log.scale_event(1, ["T4"], reason="preemption")
        loaded = RunLog.load(path)
        assert len(loaded) == 2
        assert loaded.of_kind("scale_event")[0].data["reason"] == "preemption"

    def test_append_mode(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path) as log:
            log.step(0, [1.0])
        with RunLog(path) as log:
            log.step(1, [2.0])
        assert len(RunLog.load(path)) == 2

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "note", "step": 0, "message": "x"}\n\n')
        assert len(RunLog.load(path)) == 1


class TestRobustLoading:
    """Crash-mid-write and malformed-line handling (the repaired paths)."""

    def test_truncated_trailing_line_tolerated_and_flagged(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path) as log:
            log.step(0, [1.0])
            log.step(1, [2.0])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "step", "step": 2, "los')  # crash mid-write
        loaded = RunLog.load(path)
        assert loaded.truncated
        assert [r.step for r in loaded.records] == [0, 1]

    def test_fresh_log_is_not_truncated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path) as log:
            log.step(0, [1.0])
        assert RunLog.load(path).truncated is False
        assert RunLog().truncated is False

    def test_malformed_middle_line_raises_with_path_and_lineno(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            '{"kind": "step", "step": 0, "losses": [1.0]}\n'
            "garbage\n"
            '{"kind": "step", "step": 1, "losses": [2.0]}\n'
        )
        with pytest.raises(ValueError, match=r"run\.jsonl:2"):
            RunLog.load(path)

    def test_missing_field_raises_with_path_and_lineno(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "step", "step": 0, "losses": [1.0]}\n{"kind": "step"}\n')
        with pytest.raises(ValueError) as excinfo:
            RunLog.load(path)
        message = str(excinfo.value)
        assert "run.jsonl:2" in message and "step" in message

    def test_from_json_missing_field_is_a_value_error(self):
        with pytest.raises(ValueError, match="missing required field"):
            Record.from_json('{"kind": "step"}')


class TestProfileRecords:
    def test_profile_record_roundtrip(self, tmp_path):
        from repro.utils.telemetry import RunLog

        path = str(tmp_path / "run.jsonl")
        summary = {
            "windows": 4,
            "workers": {"0": {"gpu": "v100", "p50_s": 0.1, "p99_s": 0.12}},
            "stragglers": [],
            "calibration": {"static": {"v100": 10.0}, "observed": {"v100": 9.5}},
        }
        with RunLog(path) as log:
            log.step(0, [1.0])
            log.profile(1, summary, source="online")
        loaded = RunLog.load(path)
        records = loaded.of_kind("profile")
        assert len(records) == 1
        assert records[0].step == 1
        assert records[0].data["summary"]["windows"] == 4
        assert records[0].data["source"] == "online"

    def test_profile_is_an_allowed_kind(self):
        from repro.utils.telemetry import Record, _ALLOWED_KINDS

        assert "profile" in _ALLOWED_KINDS
        Record(kind="profile", step=0, data={"summary": {}})  # must not raise
