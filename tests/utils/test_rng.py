"""RNG bundle: seeding, state capture, derivation stability."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import RNGBundle, SeedError, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "est", 3) == derive_seed(42, "est", 3)

    def test_scope_sensitive(self):
        assert derive_seed(42, "est", 3) != derive_seed(42, "est", 4)
        assert derive_seed(42, "est", 3) != derive_seed(42, "worker", 3)

    def test_seed_sensitive(self):
        assert derive_seed(42, "est", 3) != derive_seed(43, "est", 3)

    def test_string_and_int_scopes_mix(self):
        # "3" as str and 3 as int stringify identically by design: the
        # scope path is a label, not a typed value
        assert derive_seed(1, "a", 3) == derive_seed(1, "a", "3")

    def test_range(self):
        for scopes in [(), ("x",), ("a", "b", 1, 2)]:
            value = derive_seed(7, *scopes)
            assert 0 <= value <= 2**63 - 1

    @pytest.mark.parametrize("bad", [-1, 2**64, 1.5, "x", None])
    def test_invalid_seeds(self, bad):
        with pytest.raises(SeedError):
            derive_seed(bad, "scope")


class TestRNGBundle:
    def test_same_seed_same_streams(self):
        a, b = RNGBundle(5), RNGBundle(5)
        assert a.python.random() == b.python.random()
        assert np.array_equal(a.normal((4,)), b.normal((4,)))
        assert np.array_equal(a.permutation(10), b.permutation(10))

    def test_streams_are_independent(self):
        a = RNGBundle(5)
        before = a.numpy.bit_generator.state["state"]["state"]
        a.normal((100,))  # framework draw must not advance numpy stream
        after = a.numpy.bit_generator.state["state"]["state"]
        assert before == after

    def test_state_roundtrip_mid_stream(self):
        a = RNGBundle(5)
        a.normal((17,))
        a.python.random()
        a.permutation(5)
        state = a.get_state()
        expected = (a.normal((8,)), a.python.random(), a.permutation(6))
        a.set_state(state)
        replay = (a.normal((8,)), a.python.random(), a.permutation(6))
        assert np.array_equal(expected[0], replay[0])
        assert expected[1] == replay[1]
        assert np.array_equal(expected[2], replay[2])

    def test_clone_positions_match(self):
        a = RNGBundle(9)
        a.normal((13,))
        b = a.clone()
        assert np.array_equal(a.normal((4,)), b.normal((4,)))

    def test_clone_is_independent_after(self):
        a = RNGBundle(9)
        b = a.clone()
        a.normal((4,))
        # b has not advanced
        assert not np.array_equal(a.normal((4,)), b.normal((4,)))

    def test_spawn_ignores_parent_position(self):
        a = RNGBundle(9)
        child_fresh = a.spawn("data", 0).normal((6,))
        a.normal((100,))  # advance parent
        child_later = RNGBundle(9).spawn("data", 0).normal((6,))
        assert np.array_equal(child_fresh, child_later)

    def test_bernoulli_mask_scaling(self):
        a = RNGBundle(3)
        mask = a.bernoulli_mask((10_000,), keep_prob=0.8)
        assert set(np.unique(mask)) <= {0.0, 1.0}
        assert 0.75 < mask.mean() < 0.85

    def test_uniform_bounds(self):
        vals = RNGBundle(3).uniform((1000,), -2.0, 3.0)
        assert vals.min() >= -2.0 and vals.max() <= 3.0
        assert vals.dtype == np.float32

    @given(seed=st.integers(min_value=0, max_value=2**62))
    @settings(max_examples=25, deadline=None)
    def test_state_roundtrip_property(self, seed):
        bundle = RNGBundle(seed)
        bundle.normal((3,))
        state = bundle.get_state()
        first = bundle.framework.random()
        bundle.set_state(state)
        assert bundle.framework.random() == first

    def test_python_state_list_normalization(self):
        # serializers may turn the python state tuple into lists
        a = RNGBundle(5)
        state = a.get_state()
        state["python"] = [state["python"][0], list(state["python"][1]), state["python"][2]]
        b = RNGBundle(6)
        b.set_state(state)
        assert b.python.random() == RNGBundle(5).python.random()
