"""Event log: ordering, queries, timeline folding."""

import pytest

from repro.utils.events import Event, EventLog


class TestEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event(time=-1.0, kind="x")


class TestEventLog:
    def test_emit_and_query(self):
        log = EventLog()
        log.emit(0.0, "job_submit", job="a")
        log.emit(1.0, "scale_out", job="a", gpus=2)
        log.emit(2.0, "job_done", job="a")
        assert len(log) == 3
        assert [e.kind for e in log.of_kind("job_submit", "job_done")] == [
            "job_submit",
            "job_done",
        ]

    def test_out_of_order_rejected(self):
        log = EventLog()
        log.emit(5.0, "a")
        with pytest.raises(ValueError):
            log.emit(4.0, "b")

    def test_same_time_allowed(self):
        log = EventLog()
        log.emit(1.0, "a")
        log.emit(1.0, "b")
        assert len(log) == 2

    def test_between(self):
        log = EventLog()
        for t in (0.0, 1.0, 2.0, 3.0):
            log.emit(t, "tick")
        assert len(log.between(1.0, 3.0)) == 2  # [1, 3)

    def test_timeline_folding(self):
        log = EventLog()
        log.emit(0.0, "alloc", gpus=4)
        log.emit(1.0, "alloc", gpus=2)
        log.emit(2.0, "free", gpus=3)
        series = log.timeline(
            lambda e: e.payload["gpus"] if e.kind == "alloc" else -e.payload["gpus"]
        )
        assert series == [(0.0, 4.0), (1.0, 6.0), (2.0, 3.0)]

    def test_timeline_skips_none(self):
        log = EventLog()
        log.emit(0.0, "alloc", gpus=1)
        log.emit(1.0, "note")
        series = log.timeline(lambda e: e.payload.get("gpus"))
        assert series == [(0.0, 1.0)]
