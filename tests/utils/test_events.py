"""Event log: ordering, queries, timeline folding."""

import pytest

from repro.utils.events import Event, EventLog


class TestEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event(time=-1.0, kind="x")


class TestEventLog:
    def test_emit_and_query(self):
        log = EventLog()
        log.emit(0.0, "job_submit", job="a")
        log.emit(1.0, "scale_out", job="a", gpus=2)
        log.emit(2.0, "job_done", job="a")
        assert len(log) == 3
        assert [e.kind for e in log.of_kind("job_submit", "job_done")] == [
            "job_submit",
            "job_done",
        ]

    def test_out_of_order_rejected(self):
        log = EventLog()
        log.emit(5.0, "a")
        with pytest.raises(ValueError):
            log.emit(4.0, "b")

    def test_same_time_allowed(self):
        log = EventLog()
        log.emit(1.0, "a")
        log.emit(1.0, "b")
        assert len(log) == 2

    def test_between(self):
        log = EventLog()
        for t in (0.0, 1.0, 2.0, 3.0):
            log.emit(t, "tick")
        assert len(log.between(1.0, 3.0)) == 2  # [1, 3)

    def test_timeline_folding(self):
        log = EventLog()
        log.emit(0.0, "alloc", gpus=4)
        log.emit(1.0, "alloc", gpus=2)
        log.emit(2.0, "free", gpus=3)
        series = log.timeline(
            lambda e: e.payload["gpus"] if e.kind == "alloc" else -e.payload["gpus"]
        )
        assert series == [(0.0, 4.0), (1.0, 6.0), (2.0, 3.0)]

    def test_timeline_skips_none(self):
        log = EventLog()
        log.emit(0.0, "alloc", gpus=1)
        log.emit(1.0, "note")
        series = log.timeline(lambda e: e.payload.get("gpus"))
        assert series == [(0.0, 1.0)]


class TestCanonicalForm:
    def test_as_tuple_normalizes_payload_order(self):
        a = Event(time=1.0, kind="k", payload={"x": 1, "y": 2})
        b = Event(time=1.0, kind="k", payload={"y": 2, "x": 1})
        assert a.as_tuple() == b.as_tuple() == (1.0, "k", (("x", 1), ("y", 2)))

    def test_as_tuples_covers_whole_log(self):
        log = EventLog()
        log.emit(0.0, "a", n=1)
        log.emit(1.0, "b")
        assert log.as_tuples() == [(0.0, "a", (("n", 1),)), (1.0, "b", ())]

    def test_fingerprint_equal_iff_streams_equal(self):
        one, two, three = EventLog(), EventLog(), EventLog()
        for log in (one, two):
            log.emit(0.0, "a", n=1)
            log.emit(2.0, "b", n=2)
        three.emit(0.0, "a", n=1)
        three.emit(2.0, "b", n=3)  # payload differs
        assert one.fingerprint() == two.fingerprint()
        assert one.fingerprint() != three.fingerprint()

    def test_fingerprint_sensitive_to_time_and_kind(self):
        base = EventLog()
        base.emit(1.0, "a")
        shifted = EventLog()
        shifted.emit(1.5, "a")
        renamed = EventLog()
        renamed.emit(1.0, "b")
        assert len({base.fingerprint(), shifted.fingerprint(), renamed.fingerprint()}) == 3
