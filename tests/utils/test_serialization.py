"""Checkpoint serialization: bitwise round trips and structure tools."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.utils.serialization import (
    deep_equal,
    flatten_state_dict,
    sizeof_state,
    state_dict_from_bytes,
    state_dict_to_bytes,
    unflatten_state_dict,
)


class TestByteRoundTrip:
    def test_nested_dict_roundtrip(self):
        state = {
            "model": {"w": np.float32([1.5, -2.25]), "steps": 7},
            "extra": {"progress": (3, 4), "flag": True},
        }
        out = state_dict_from_bytes(state_dict_to_bytes(state))
        assert deep_equal(out, state)

    def test_nan_and_inf_survive_bitwise(self):
        arr = np.array([np.nan, np.inf, -np.inf, 0.0], dtype=np.float32)
        out = state_dict_from_bytes(state_dict_to_bytes({"a": arr}))
        assert out["a"].tobytes() == arr.tobytes()

    @given(
        arr=hnp.arrays(
            dtype=np.float32,
            shape=hnp.array_shapes(max_dims=3, max_side=5),
            elements=st.floats(
                allow_nan=True, allow_infinity=True, width=32
            ),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, arr):
        out = state_dict_from_bytes(state_dict_to_bytes({"x": arr}))
        assert deep_equal(out, {"x": arr})


class TestFlatten:
    def test_flatten_unflatten_inverse(self):
        nested = {"a": {"b": {"c": 1}, "d": 2}, "e": 3}
        flat = flatten_state_dict(nested)
        assert flat == {"a.b.c": 1, "a.d": 2, "e": 3}
        assert unflatten_state_dict(flat) == nested

    def test_flatten_preserves_arrays(self):
        arr = np.ones(3, np.float32)
        flat = flatten_state_dict({"m": {"w": arr}})
        assert flat["m.w"] is arr


class TestDeepEqual:
    def test_array_vs_scalar(self):
        assert not deep_equal(np.float32([1.0]), 1.0)

    def test_dtype_mismatch(self):
        assert not deep_equal(np.zeros(2, np.float32), np.zeros(2, np.float64))

    def test_nan_bitwise_equal(self):
        a = np.array([np.nan], dtype=np.float32)
        assert deep_equal(a, a.copy())

    def test_lists_and_tuples_interchange(self):
        assert deep_equal([1, 2], (1, 2))

    def test_nested_mismatch(self):
        assert not deep_equal({"a": {"b": 1}}, {"a": {"b": 2}})


class TestSizeof:
    def test_array_bytes(self):
        assert sizeof_state(np.zeros((4, 4), np.float32)) == 64

    def test_nested_sum(self):
        state = {"a": np.zeros(2, np.float32), "b": [np.zeros(3, np.float32)]}
        assert sizeof_state(state) == 8 + 12

    def test_scalars_cheap(self):
        assert sizeof_state({"x": 1, "y": 2.0, "z": None}) == 24
