"""Bitwise fingerprints: sensitivity and canonicalization."""

import numpy as np
import pytest

from repro.utils.fingerprint import (
    fingerprint_array,
    fingerprint_arrays,
    fingerprint_state_dict,
    max_abs_diff,
)


class TestFingerprintArray:
    def test_deterministic(self):
        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert fingerprint_array(x) == fingerprint_array(x.copy())

    def test_single_bit_flip_changes_digest(self):
        x = np.ones(8, dtype=np.float32)
        y = x.copy()
        y_view = y.view(np.uint32)
        y_view[3] ^= 1  # flip the lowest mantissa bit of one element
        assert fingerprint_array(x) != fingerprint_array(y)

    def test_shape_sensitive(self):
        x = np.zeros(6, dtype=np.float32)
        assert fingerprint_array(x) != fingerprint_array(x.reshape(2, 3))

    def test_dtype_sensitive(self):
        x = np.zeros(4, dtype=np.float32)
        assert fingerprint_array(x) != fingerprint_array(x.astype(np.float64))

    def test_non_contiguous_input(self):
        x = np.arange(16, dtype=np.float32).reshape(4, 4)
        assert fingerprint_array(x.T) == fingerprint_array(np.ascontiguousarray(x.T))


class TestFingerprintStateDict:
    def test_order_invariant(self):
        a = {"w": np.ones(3, np.float32), "b": np.zeros(2, np.float32)}
        b = dict(reversed(list(a.items())))
        assert fingerprint_state_dict(a) == fingerprint_state_dict(b)

    def test_name_sensitive(self):
        x = np.ones(3, np.float32)
        assert fingerprint_state_dict({"w": x}) != fingerprint_state_dict({"v": x})

    def test_sequence_order_matters_for_arrays(self):
        x, y = np.ones(2, np.float32), np.zeros(2, np.float32)
        assert fingerprint_arrays([x, y]) != fingerprint_arrays([y, x])


class TestMaxAbsDiff:
    def test_zero_for_identical(self):
        state = {"w": np.random.default_rng(0).normal(size=5).astype(np.float32)}
        assert max_abs_diff(state, {"w": state["w"].copy()}) == 0.0

    def test_reports_worst_entry(self):
        a = {"w": np.zeros(3, np.float32), "b": np.zeros(3, np.float32)}
        b = {"w": np.zeros(3, np.float32), "b": np.array([0, 0.5, 0], np.float32)}
        assert max_abs_diff(a, b) == pytest.approx(0.5)

    def test_key_mismatch_raises(self):
        with pytest.raises(KeyError):
            max_abs_diff({"w": np.zeros(1)}, {"v": np.zeros(1)})
