"""Forensics sweep (tier-2, ``-m forensics``): crash dumps + attribution.

Two properties over many seeded fault plans on a heterogeneous pool:

1. **Crash evidence** — every abrupt fault (worker_crash, node_preempt)
   that strikes a supervised run leaves a postmortem bundle naming the
   failing step and fault kind, with tracing off, and recovery still
   reaches the fault-free bitwise state.
2. **Attribution** — for a seeded kernel-variant swap at any step *k*,
   :func:`~repro.obs.forensics.analyze_divergence` pins the divergence to
   step *k* and the dialect switch, never just "params differ".

Deselected from tier-1 by default; run with ``pytest -m forensics``.
"""

import glob
import os

import pytest

from repro import obs
from repro.core import (
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
)
from repro.faults import ResilienceController, random_plan
from repro.faults.schedule import ABRUPT_KINDS
from repro.hw import gpu_type
from repro.models import get_workload
from repro.obs import flightrec
from repro.obs.audit import AuditTrail
from repro.obs.forensics import analyze_divergence
from repro.utils.fingerprint import fingerprint_state_dict
from tests.conftest import sgd_factory

pytestmark = pytest.mark.forensics

TOTAL_STEPS = 12
NUM_SEEDS = 5
POOL = ["V100", "V100", "T4", "T4"]


@pytest.fixture(scope="module")
def env():
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(64, seed=7)
    config = EasyScaleJobConfig(
        num_ests=4, seed=0, batch_size=8,
        determinism=determinism_from_label("D1+D2"),
    )
    return spec, dataset, config


@pytest.fixture(scope="module")
def reference(env):
    spec, dataset, config = env
    obs.configure(enabled=True, audit=True)
    try:
        engine = EasyScaleEngine(
            spec, dataset, config, sgd_factory(),
            WorkerAssignment.balanced([gpu_type(g) for g in POOL], 4),
        )
        engine.train_steps(TOTAL_STEPS)
        trail = obs.audit_trail()
        fingerprint = fingerprint_state_dict(engine.model.state_dict())
    finally:
        obs.reset()
    return trail, fingerprint


def _bundles(directory):
    out = []
    for path in sorted(glob.glob(os.path.join(directory, "postmortem-*.json"))):
        out.append(flightrec.load_bundle(path))
    return out


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_abrupt_faults_leave_crash_bundles_and_recover_bitwise(
    env, reference, seed, tmp_path
):
    spec, dataset, config = env
    ref_trail, ref_fingerprint = reference
    plan = random_plan(seed, horizon_steps=TOTAL_STEPS, num_gpus=len(POOL))
    bundle_dir = tmp_path / "bundles"
    bundle_dir.mkdir()
    flightrec.configure(directory=str(bundle_dir))

    obs.configure(enabled=True, audit=True, audit_rewind=True)
    try:
        controller = ResilienceController(
            spec, dataset, config, sgd_factory(), list(POOL), plan,
            snapshot_interval=4,
        )
        stats = controller.run(TOTAL_STEPS)
        trail = obs.audit_trail()
    finally:
        obs.reset()

    # recovery still bitwise — the recorder must observe, never perturb
    diff = obs.diff_audits(ref_trail, trail)
    assert diff.identical, (
        f"plan seed {seed} diverged:\n{plan.describe()}\n{diff.describe()}"
    )
    assert fingerprint_state_dict(
        controller.engine.model.state_dict()
    ) == ref_fingerprint
    assert stats.faults_injected == len(plan)

    # every abrupt fault left an exception bundle naming (kind, step)
    abrupt = {
        (e.kind, e.at_step) for e in plan.events if e.kind in ABRUPT_KINDS
    }
    crash_bundles = [b for b in _bundles(str(bundle_dir)) if b["reason"] == "exception"]
    dumped = {(b["crash"]["kind"], b["crash"]["step"]) for b in crash_bundles}
    assert abrupt <= dumped, (
        f"plan seed {seed}: abrupt faults {sorted(abrupt - dumped)} left no "
        f"postmortem bundle (have {sorted(dumped)})"
    )
    for bundle in crash_bundles:
        assert bundle["context"]["determinism"] == "D1+D2"
        if bundle["crash"]["kind"] == "worker_crash":
            assert bundle["crash"]["worker"] is not None
            assert bundle["crash"]["dialect"] in ("v100", "t4")
        kinds = [e["kind"] for e in bundle["events"]]
        assert "fault.detect" in kinds and "engine.crash" in kinds


def _train_audited(tmp_path, name, swap_step):
    """8 steps of resnet18 under D1; optionally worker 1 moves to a T4
    after ``swap_step`` — the seeded kernel-variant swap."""
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(64, seed=3)
    path = tmp_path / f"{name}.jsonl"
    obs.configure(enabled=True, audit_path=str(path))
    config = EasyScaleJobConfig(
        num_ests=2, seed=3, batch_size=4, determinism=determinism_from_label("D1")
    )
    engine = EasyScaleEngine(
        spec, dataset, config, sgd_factory(),
        WorkerAssignment.named(["V100", "V100"], 2),
    )
    if swap_step is None:
        engine.train_steps(8)
    else:
        engine.train_steps(swap_step)
        engine = engine.reconfigure(WorkerAssignment.named(["V100", "T4"], 2))
        engine.train_steps(8 - swap_step)
    obs.audit_trail().close()
    obs.reset()
    return path


@pytest.mark.parametrize("swap_step", [1, 2, 3, 4, 5])
def test_dialect_swap_attributed_at_every_step(tmp_path, swap_step):
    path_a = _train_audited(tmp_path, "steady", swap_step=None)
    path_b = _train_audited(tmp_path, "swapped", swap_step=swap_step)
    report = analyze_divergence(
        AuditTrail.load(str(path_a)), AuditTrail.load(str(path_b))
    )
    assert report.diff.first_divergent_step == swap_step
    assert report.attributed
    top = report.top_cause
    assert top.kind in ("dialect_switch", "dialect_mismatch")
    assert top.step == swap_step
    assert "t4" in top.detail
    assert "dialect" in report.headline()
