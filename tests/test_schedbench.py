"""Tier-2 target: the scheduler fast-path benchmark at reduced size.

Runs ``benchmarks/bench_sched_fastpath.py`` in its own pytest subprocess
under ``REPRO_BENCH_SMOKE=1``, proving the cold/warm planning-cost
comparison (and its >= 5x acceptance bar plus the brute-force equality
check) still holds end to end.  Deselected by default via the
``schedbench`` marker; run with::

    PYTHONPATH=src python -m pytest -m schedbench tests/test_schedbench.py
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

pytestmark = pytest.mark.schedbench


def test_fastpath_bench_in_smoke_mode():
    env = dict(os.environ)
    env["REPRO_BENCH_SMOKE"] = "1"
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-s", "-p", "no:cacheprovider",
         "benchmarks/bench_sched_fastpath.py"],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"fast-path bench failed in smoke mode:\n"
        f"{proc.stdout[-4000:]}\n{proc.stderr[-2000:]}"
    )
    assert "warm/cold speedup" in proc.stdout
