"""Adam/AdamW: update math and bitwise state restore."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import Adam, AdamW


def _params(values):
    return [(f"p{i}", Parameter(np.float32(v))) for i, v in enumerate(values)]


class TestAdamMath:
    def test_first_step_matches_reference(self):
        named = _params([[1.0]])
        p = named[0][1]
        opt = Adam(named, lr=0.1, betas=(0.9, 0.999), eps=1e-8)
        p.grad = np.float32([2.0])
        opt.step()
        # after bias correction the first update is ~ -lr * sign(grad)
        m_hat, v_hat = 2.0, 4.0
        expected = 1.0 - 0.1 * m_hat / (np.sqrt(v_hat) + 1e-8)
        assert p.data[0] == pytest.approx(expected, rel=1e-4)

    def test_update_magnitude_bounded_by_lr(self):
        named = _params([[0.0]])
        p = named[0][1]
        opt = Adam(named, lr=0.01)
        for _ in range(5):
            p.grad = np.float32([100.0])
            opt.step()
        assert abs(p.data[0]) <= 0.01 * 5 * 1.01

    def test_coupled_weight_decay_changes_moments(self):
        run = {}
        for decoupled in (False, True):
            named = _params([[1.0]])
            p = named[0][1]
            opt = Adam(named, lr=0.1, weight_decay=0.5, decoupled=decoupled)
            p.grad = np.float32([0.0])
            opt.step()
            run[decoupled] = (p.data[0], opt.state["p0"]["exp_avg"][0])
        assert run[False][1] != 0.0  # wd folded into gradient moment
        assert run[True][1] == 0.0  # decoupled: moments see raw grad only

    def test_adamw_is_decoupled(self):
        opt = AdamW(_params([[1.0]]), lr=0.1)
        assert opt.decoupled and opt.weight_decay == 0.01

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(_params([[0.0]]), betas=(1.0, 0.9))


class TestAdamState:
    def test_roundtrip_includes_step_count(self):
        named = _params([[0.0]])
        p = named[0][1]
        opt = Adam(named, lr=0.05)
        for i in range(4):
            p.grad = np.float32([1.0 + i])
            opt.step()
        saved = (p.data.copy(), opt.state_dict())

        for i in range(4, 7):
            p.grad = np.float32([1.0 + i])
            opt.step()
        expected = p.data.copy()

        named2 = _params([[0.0]])
        p2 = named2[0][1]
        p2.data = saved[0]
        opt2 = Adam(named2, lr=1.0)
        opt2.load_state_dict(saved[1])
        assert opt2._step_count == 4
        for i in range(4, 7):
            p2.grad = np.float32([1.0 + i])
            opt2.step()
        assert p2.data.tobytes() == expected.tobytes()
