"""LR schedulers: schedules, gamma semantics (Fig. 4), state restore."""

import math

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD, CosineAnnealingLR, MultiStepLR, StepLR


def _opt(lr=1.0):
    return SGD([("p", Parameter(np.float32([0.0])))], lr=lr)


class TestStepLR:
    def test_gamma_decay_schedule(self):
        opt = _opt(1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(6):
            lrs.append(opt.lr)
            sched.step()
        assert lrs == pytest.approx([1.0, 1.0, 0.1, 0.1, 0.01, 0.01])

    @pytest.mark.parametrize("gamma", [0.1, 0.3, 0.5])
    def test_gamma_parameterization(self, gamma):
        # the Fig. 4 experiment: gamma is the decay factor after step_size
        opt = _opt(1.0)
        sched = StepLR(opt, step_size=20, gamma=gamma)
        for _ in range(20):
            sched.step()
        assert opt.lr == pytest.approx(gamma)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            StepLR(_opt(), step_size=0)
        with pytest.raises(ValueError):
            StepLR(_opt(), step_size=1, gamma=0.0)

    def test_state_roundtrip(self):
        opt = _opt(1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        for _ in range(3):
            sched.step()
        state = sched.state_dict()

        opt2 = _opt(123.0)
        sched2 = StepLR(opt2, step_size=99, gamma=0.9)
        sched2.load_state_dict(state)
        assert sched2.last_epoch == 3
        assert opt2.lr == pytest.approx(opt.lr)
        sched.step()
        sched2.step()
        assert opt2.lr == pytest.approx(opt.lr)


class TestMultiStepLR:
    def test_milestones(self):
        opt = _opt(1.0)
        sched = MultiStepLR(opt, milestones=[2, 4], gamma=0.1)
        lrs = []
        for _ in range(5):
            lrs.append(round(opt.lr, 6))
            sched.step()
        assert lrs == [1.0, 1.0, 0.1, 0.1, 0.01]

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            MultiStepLR(_opt(), milestones=[4, 2])


class TestCosine:
    def test_endpoints(self):
        opt = _opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.1)
        assert sched.get_lr() == pytest.approx(1.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_midpoint(self):
        opt = _opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=10)
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.5, rel=1e-6)

    def test_clamps_past_t_max(self):
        opt = _opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=2)
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-9)
