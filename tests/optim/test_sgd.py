"""SGD: update math vs hand-rolled reference, state round trips."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD


def _params(values):
    return [(f"p{i}", Parameter(np.float32(v))) for i, v in enumerate(values)]


class TestVanilla:
    def test_plain_step(self):
        named = _params([[1.0, 2.0]])
        opt = SGD(named, lr=0.1)
        named[0][1].grad = np.float32([1.0, -2.0])
        opt.step()
        np.testing.assert_allclose(named[0][1].data, [0.9, 2.2], rtol=1e-6)

    def test_none_grad_skipped(self):
        named = _params([[1.0]])
        SGD(named, lr=0.1).step()
        np.testing.assert_array_equal(named[0][1].data, [1.0])

    def test_zero_grad(self):
        named = _params([[1.0]])
        opt = SGD(named, lr=0.1)
        named[0][1].grad = np.float32([1.0])
        opt.zero_grad()
        assert named[0][1].grad is None


class TestMomentum:
    def test_matches_pytorch_semantics(self):
        # buf = mu*buf + grad; p -= lr*buf
        named = _params([[0.0]])
        p = named[0][1]
        opt = SGD(named, lr=0.1, momentum=0.9)
        p.grad = np.float32([1.0])
        opt.step()  # buf=1, p=-0.1
        p.grad = np.float32([1.0])
        opt.step()  # buf=1.9, p=-0.29
        assert p.data[0] == pytest.approx(-0.29, rel=1e-5)

    def test_nesterov(self):
        named = _params([[0.0]])
        p = named[0][1]
        opt = SGD(named, lr=0.1, momentum=0.9, nesterov=True)
        p.grad = np.float32([1.0])
        opt.step()  # buf=1; update = grad + mu*buf = 1.9; p=-0.19
        assert p.data[0] == pytest.approx(-0.19, rel=1e-5)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD(_params([[0.0]]), lr=0.1, nesterov=True)


class TestWeightDecay:
    def test_decay_folded_into_grad(self):
        named = _params([[2.0]])
        p = named[0][1]
        opt = SGD(named, lr=0.1, weight_decay=0.5)
        p.grad = np.float32([0.0])
        opt.step()  # effective grad = 0 + 0.5*2 = 1; p = 2 - 0.1 = 1.9
        assert p.data[0] == pytest.approx(1.9, rel=1e-6)


class TestValidation:
    def test_bad_lr(self):
        with pytest.raises(ValueError):
            SGD(_params([[0.0]]), lr=0.0)

    def test_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_duplicate_names(self):
        p = Parameter(np.float32([0.0]))
        with pytest.raises(ValueError):
            SGD([("a", p), ("a", p)], lr=0.1)

    def test_negative_momentum(self):
        with pytest.raises(ValueError):
            SGD(_params([[0.0]]), lr=0.1, momentum=-0.5)


class TestStateDict:
    def test_roundtrip_resumes_identically(self):
        def run(steps_before_save):
            named = _params([[0.0, 0.0]])
            p = named[0][1]
            opt = SGD(named, lr=0.05, momentum=0.9, weight_decay=0.01)
            state = None
            for i in range(6):
                p.grad = np.float32([1.0, -1.0]) * (i + 1)
                opt.step()
                if i + 1 == steps_before_save:
                    state = (p.data.copy(), opt.state_dict())
            return p.data.copy(), state

        final, (mid_params, mid_state) = run(3)
        named = _params([[0.0, 0.0]])
        p = named[0][1]
        p.data = mid_params
        opt = SGD(named, lr=999.0, momentum=0.0)  # wrong hyperparams on purpose
        opt.load_state_dict(mid_state)
        for i in range(3, 6):
            p.grad = np.float32([1.0, -1.0]) * (i + 1)
            opt.step()
        assert p.data.tobytes() == final.tobytes()
