"""Chaos property sweep (tier-2, ``-m chaos``): bitwise recovery under
many random fault plans on a heterogeneous two-type pool.

The acceptance property of the fault subsystem: for *any* seeded
:func:`~repro.faults.schedule.random_plan`, a D1+D2 job supervised by the
:class:`~repro.faults.controller.ResilienceController` on a V100+T4 pool
finishes with (a) a per-step determinism audit trail identical to the
fault-free run's and (b) a bitwise-identical final model, while the job
clock decomposes exactly into compute plus modeled recovery downtime.

Deselected from tier-1 by default (each seed replays a full training run);
run with ``pytest -m chaos``.
"""

import pytest

from repro import obs
from repro.core import (
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
)
from repro.faults import ResilienceController, random_plan
from repro.hw import gpu_type
from repro.models import get_workload
from repro.utils.fingerprint import fingerprint_state_dict
from tests.conftest import sgd_factory

pytestmark = pytest.mark.chaos

TOTAL_STEPS = 12
NUM_SEEDS = 20
POOL = ["V100", "V100", "T4", "T4"]


@pytest.fixture(scope="module")
def env():
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(64, seed=7)
    config = EasyScaleJobConfig(
        num_ests=4, seed=0, batch_size=8,
        determinism=determinism_from_label("D1+D2"),
    )
    return spec, dataset, config


@pytest.fixture(scope="module")
def reference(env):
    """The fault-free run, computed once: audit trail + final fingerprint."""
    spec, dataset, config = env
    obs.configure(enabled=True, audit=True)
    try:
        engine = EasyScaleEngine(
            spec, dataset, config, sgd_factory(),
            WorkerAssignment.balanced([gpu_type(g) for g in POOL], 4),
        )
        engine.train_steps(TOTAL_STEPS)
        trail = obs.audit_trail()
        fingerprint = fingerprint_state_dict(engine.model.state_dict())
    finally:
        obs.reset()
    return trail, fingerprint


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_any_fault_plan_recovers_bitwise(env, reference, seed):
    spec, dataset, config = env
    ref_trail, ref_fingerprint = reference
    plan = random_plan(seed, horizon_steps=TOTAL_STEPS, num_gpus=len(POOL))

    obs.configure(enabled=True, audit=True, audit_rewind=True)
    try:
        controller = ResilienceController(
            spec, dataset, config, sgd_factory(), list(POOL), plan,
            snapshot_interval=4,
        )
        stats = controller.run(TOTAL_STEPS)
        trail = obs.audit_trail()
    finally:
        obs.reset()

    diff = obs.diff_audits(ref_trail, trail)
    assert diff.identical, (
        f"plan seed {seed} diverged:\n{plan.describe()}\n{diff.describe()}"
    )
    assert fingerprint_state_dict(
        controller.engine.model.state_dict()
    ) == ref_fingerprint
    assert stats.faults_injected == len(plan)
    assert all(i.mttr_s is not None for i in stats.incidents)
    assert controller.clock == pytest.approx(
        controller.compute_s + stats.downtime_s, abs=1e-12
    )
