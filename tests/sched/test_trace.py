"""Trace generation: reproducibility, distributions, work accounting."""

import numpy as np
import pytest

from repro.models import TABLE1
from repro.sched.trace import GPU_DEMAND, TraceJob, generate_trace


class TestTraceJob:
    def test_requested_rate(self):
        job = TraceJob(
            job_id="j",
            workload="resnet50",
            arrival_time=0.0,
            requested_gpus=4,
            requested_type="v100",
            total_work=100.0,
        )
        assert job.requested_rate() == pytest.approx(4 * 9.0)
        assert job.conv_heavy
        assert set(job.capability) == {"v100", "p100", "t4"}

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceJob("j", "resnet50", 0.0, 0, "v100", 10.0)
        with pytest.raises(ValueError):
            TraceJob("j", "resnet50", 0.0, 1, "v100", 0.0)


class TestGenerateTrace:
    def test_reproducible(self):
        a = generate_trace(num_jobs=20, seed=7)
        b = generate_trace(num_jobs=20, seed=7)
        assert [(j.arrival_time, j.workload, j.requested_gpus) for j in a] == [
            (j.arrival_time, j.workload, j.requested_gpus) for j in b
        ]

    def test_seed_changes_trace(self):
        a = generate_trace(num_jobs=20, seed=7)
        b = generate_trace(num_jobs=20, seed=8)
        assert [j.workload for j in a] != [j.workload for j in b]

    def test_arrivals_monotone(self):
        jobs = generate_trace(num_jobs=50, seed=1)
        times = [j.arrival_time for j in jobs]
        assert times == sorted(times)

    def test_workloads_from_table1(self):
        jobs = generate_trace(num_jobs=100, seed=2)
        assert {j.workload for j in jobs} <= set(TABLE1)

    def test_demand_values_respected(self):
        jobs = generate_trace(num_jobs=100, seed=3)
        allowed = {d for d, _ in GPU_DEMAND}
        assert {j.requested_gpus for j in jobs} <= allowed

    def test_custom_demand(self):
        jobs = generate_trace(num_jobs=50, seed=3, demand=[(2, 1.0)])
        assert all(j.requested_gpus == 2 for j in jobs)

    def test_custom_type_weights(self):
        jobs = generate_trace(num_jobs=50, seed=3, type_weights={"t4": 1.0})
        assert all(j.requested_type == "t4" for j in jobs)

    def test_duration_bounds(self):
        jobs = generate_trace(
            num_jobs=100, seed=4, mean_duration_s=500, max_duration_factor=4
        )
        for job in jobs:
            duration = job.total_work / job.requested_rate()
            assert 60.0 <= duration <= 4 * 500 + 1e-6

    def test_work_consistent_with_gang_rate(self):
        # a job's duration at its gang allocation equals work / rate
        jobs = generate_trace(num_jobs=10, seed=5)
        for job in jobs:
            assert job.total_work / job.requested_rate() > 0

    def test_num_jobs_positive(self):
        with pytest.raises(ValueError):
            generate_trace(num_jobs=0)
