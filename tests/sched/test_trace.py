"""Trace generation: reproducibility, distributions, work accounting."""

import numpy as np
import pytest

from repro.models import TABLE1
from repro.sched.trace import (
    GPU_DEMAND,
    PRODUCTION_DEMAND,
    TraceJob,
    diurnal_trace,
    generate_trace,
    heavy_tail_trace,
)


class TestTraceJob:
    def test_requested_rate(self):
        job = TraceJob(
            job_id="j",
            workload="resnet50",
            arrival_time=0.0,
            requested_gpus=4,
            requested_type="v100",
            total_work=100.0,
        )
        assert job.requested_rate() == pytest.approx(4 * 9.0)
        assert job.conv_heavy
        assert set(job.capability) == {"v100", "p100", "t4"}

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceJob("j", "resnet50", 0.0, 0, "v100", 10.0)
        with pytest.raises(ValueError):
            TraceJob("j", "resnet50", 0.0, 1, "v100", 0.0)

    def test_negative_arrival_rejected_eagerly(self):
        with pytest.raises(ValueError, match=r"job 'late'.*arrival_time.*-1\.5"):
            TraceJob("late", "resnet50", -1.5, 1, "v100", 10.0)

    def test_unknown_workload_names_job(self):
        with pytest.raises(ValueError, match=r"job 'j'.*unknown workload 'nope'"):
            TraceJob("j", "nope", 0.0, 1, "v100", 10.0)

    def test_unknown_requested_type_names_job_and_field(self):
        # before eager validation this surfaced as a bare KeyError deep
        # inside requested_rate()/policy scoring
        with pytest.raises(
            ValueError, match=r"job 'j'.*requested_type 'h100'.*capability table"
        ):
            TraceJob("j", "resnet50", 0.0, 1, "h100", 10.0)


class TestGenerateTrace:
    def test_reproducible(self):
        a = generate_trace(num_jobs=20, seed=7)
        b = generate_trace(num_jobs=20, seed=7)
        assert [(j.arrival_time, j.workload, j.requested_gpus) for j in a] == [
            (j.arrival_time, j.workload, j.requested_gpus) for j in b
        ]

    def test_seed_changes_trace(self):
        a = generate_trace(num_jobs=20, seed=7)
        b = generate_trace(num_jobs=20, seed=8)
        assert [j.workload for j in a] != [j.workload for j in b]

    def test_arrivals_monotone(self):
        jobs = generate_trace(num_jobs=50, seed=1)
        times = [j.arrival_time for j in jobs]
        assert times == sorted(times)

    def test_workloads_from_table1(self):
        jobs = generate_trace(num_jobs=100, seed=2)
        assert {j.workload for j in jobs} <= set(TABLE1)

    def test_demand_values_respected(self):
        jobs = generate_trace(num_jobs=100, seed=3)
        allowed = {d for d, _ in GPU_DEMAND}
        assert {j.requested_gpus for j in jobs} <= allowed

    def test_custom_demand(self):
        jobs = generate_trace(num_jobs=50, seed=3, demand=[(2, 1.0)])
        assert all(j.requested_gpus == 2 for j in jobs)

    def test_custom_type_weights(self):
        jobs = generate_trace(num_jobs=50, seed=3, type_weights={"t4": 1.0})
        assert all(j.requested_type == "t4" for j in jobs)

    def test_duration_bounds(self):
        jobs = generate_trace(
            num_jobs=100, seed=4, mean_duration_s=500, max_duration_factor=4
        )
        for job in jobs:
            duration = job.total_work / job.requested_rate()
            assert 60.0 <= duration <= 4 * 500 + 1e-6

    def test_work_consistent_with_gang_rate(self):
        # a job's duration at its gang allocation equals work / rate
        jobs = generate_trace(num_jobs=10, seed=5)
        for job in jobs:
            assert job.total_work / job.requested_rate() > 0

    def test_num_jobs_positive(self):
        with pytest.raises(ValueError):
            generate_trace(num_jobs=0)


class TestDiurnalTrace:
    def test_reproducible(self):
        a = diurnal_trace(num_jobs=40, seed=9, days=2)
        b = diurnal_trace(num_jobs=40, seed=9, days=2)
        assert [(j.arrival_time, j.workload, j.requested_gpus) for j in a] == [
            (j.arrival_time, j.workload, j.requested_gpus) for j in b
        ]

    def test_arrivals_monotone_and_span_days(self):
        days = 3
        jobs = diurnal_trace(num_jobs=200, seed=1, days=days)
        arrivals = [j.arrival_time for j in jobs]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] >= 0.0
        assert arrivals[-1] <= days * 86400.0 * 1.5  # thinning overshoot margin

    def test_peak_hours_denser_than_trough(self):
        # the Fig-1 swing: more submissions near the peak hour than the
        # opposite side of the clock
        jobs = diurnal_trace(num_jobs=600, seed=2, days=10, peak_hour=14.0)
        def hour(t):
            return (t / 3600.0) % 24.0
        peak = sum(1 for j in jobs if 11.0 <= hour(j.arrival_time) <= 17.0)
        trough = sum(
            1 for j in jobs if hour(j.arrival_time) <= 5.0 or hour(j.arrival_time) >= 23.0
        )
        assert peak > 1.5 * trough

    def test_production_demand_mix(self):
        jobs = diurnal_trace(num_jobs=100, seed=3)
        allowed = {d for d, _ in PRODUCTION_DEMAND}
        assert {j.requested_gpus for j in jobs} <= allowed


class TestHeavyTailTrace:
    def test_reproducible(self):
        a = heavy_tail_trace(num_jobs=30, seed=5)
        b = heavy_tail_trace(num_jobs=30, seed=5)
        assert [(j.arrival_time, j.total_work) for j in a] == [
            (j.arrival_time, j.total_work) for j in b
        ]

    def test_durations_heavy_tailed(self):
        jobs = heavy_tail_trace(num_jobs=400, seed=6)
        durations = sorted(j.total_work / j.requested_rate() for j in jobs)
        mean = sum(durations) / len(durations)
        median = durations[len(durations) // 2]
        # Pareto mix: the mean sits far above the median
        assert mean > 1.5 * median

    def test_duration_bounds(self):
        jobs = heavy_tail_trace(
            num_jobs=100, seed=7, min_duration_s=300.0, max_duration_s=7 * 86400.0
        )
        for job in jobs:
            duration = job.total_work / job.requested_rate()
            assert 300.0 - 1e-6 <= duration <= 7 * 86400.0 + 1e-6
