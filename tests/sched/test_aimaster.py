"""AIMaster control loop: profiling ingestion, timeouts, fallback."""

import pytest

from repro.sched.aimaster import AIMaster, ThroughputMonitor
from repro.sched.companion import CompanionModule
from repro.sched.intra import IntraJobScheduler

CAP = {"v100": 9.0, "p100": 4.0, "t4": 3.0}


def make_aimaster(max_p=4, timeout=100.0, warmup=1):
    companion = CompanionModule(max_p=max_p, capability=dict(CAP))
    scheduler = IntraJobScheduler("job", companion)
    return AIMaster(
        scheduler,
        proposal_timeout_s=timeout,
        monitor=ThroughputMonitor(warmup_reports=warmup),
    )


class TestThroughputMonitor:
    def test_ema(self):
        monitor = ThroughputMonitor(alpha=0.5, warmup_reports=1)
        monitor.report(10.0)
        monitor.report(20.0)
        assert monitor.value == pytest.approx(15.0)

    def test_warmup_gate(self):
        monitor = ThroughputMonitor(warmup_reports=3)
        monitor.report(1.0)
        monitor.report(1.0)
        assert not monitor.ready
        monitor.report(1.0)
        assert monitor.ready

    def test_reset(self):
        monitor = ThroughputMonitor(warmup_reports=1)
        monitor.report(5.0)
        monitor.reset()
        assert monitor.value is None and not monitor.ready

    def test_validation(self):
        with pytest.raises(ValueError):
            ThroughputMonitor(alpha=0.0)
        with pytest.raises(ValueError):
            ThroughputMonitor().report(-1.0)


class TestTick:
    def test_submits_and_tracks_proposals(self):
        aim = make_aimaster()
        proposals = aim.tick(0.0, owned={}, cluster_free={"v100": 4})
        assert proposals
        assert len(aim.pending) == len(proposals)

    def test_timeout_expires_pending(self):
        aim = make_aimaster(timeout=10.0)
        aim.tick(0.0, owned={}, cluster_free={"v100": 4})
        pending_before = len(aim.pending)
        aim.tick(50.0, owned={}, cluster_free={})
        assert aim.timed_out == pending_before

    def test_grant_clears_pending_and_replans(self):
        aim = make_aimaster()
        aim.tick(0.0, owned={}, cluster_free={"v100": 4})
        assignment = aim.on_grant(1.0, owned={"v100": 2})
        assert aim.pending == []
        assert assignment is not None
        assert assignment.num_ests == 4


class TestBiasCorrection:
    def test_consistent_measurements_leave_capability(self):
        aim = make_aimaster()
        aim.tick(0.0, owned={"v100": 2}, cluster_free={})
        estimated = aim.scheduler.current_throughput()
        aim.report_step_throughput(estimated)
        aim.tick(1.0, owned={"v100": 2}, cluster_free={})
        assert aim.scheduler.companion.capability["v100"] == pytest.approx(9.0)

    def test_large_bias_refits_capability(self):
        aim = make_aimaster()
        aim.tick(0.0, owned={"v100": 2}, cluster_free={})
        estimated = aim.scheduler.current_throughput()
        aim.report_step_throughput(estimated * 0.4)  # far slower than modelled
        aim.tick(1.0, owned={"v100": 2}, cluster_free={})
        assert aim.scheduler.companion.capability["v100"] < 9.0

    def test_warmup_defers_reaction(self):
        aim = make_aimaster(warmup=5)
        aim.tick(0.0, owned={"v100": 2}, cluster_free={})
        aim.report_step_throughput(0.1)  # single outlier report
        aim.tick(1.0, owned={"v100": 2}, cluster_free={})
        assert aim.scheduler.companion.capability["v100"] == pytest.approx(9.0)


class TestFallback:
    def test_slowdown_triggers_role3_fallback(self):
        aim = make_aimaster()
        aim.tick(0.0, owned={"v100": 2}, cluster_free={})
        # a grant arrives; the new bigger plan underperforms in practice
        aim.on_grant(1.0, owned={"v100": 2, "t4": 2})
        aim.report_step_throughput(1.0)  # way below the old plan's 18 mb/s
        aim.tick(2.0, owned={"v100": 2, "t4": 2}, cluster_free={})
        assert aim.fallbacks == 1
        # reverted to the previous (v100-only) plan
        assert aim.scheduler.current_plan.gpus_of("t4") == 0

    def test_no_fallback_when_plan_delivers(self):
        aim = make_aimaster()
        aim.tick(0.0, owned={"v100": 1}, cluster_free={})
        aim.on_grant(1.0, owned={"v100": 2})
        aim.report_step_throughput(aim.scheduler.current_throughput())
        aim.tick(2.0, owned={"v100": 2}, cluster_free={})
        assert aim.fallbacks == 0


class TestValidation:
    def test_timeout_positive(self):
        companion = CompanionModule(max_p=2, capability=dict(CAP))
        with pytest.raises(ValueError):
            AIMaster(IntraJobScheduler("j", companion), proposal_timeout_s=0)


class TestOnPreempt:
    def test_preempt_replans_but_keeps_pending_proposals(self):
        aim = make_aimaster()
        proposals = aim.tick(0.0, owned={"v100": 2},
                             cluster_free={"v100": 2, "t4": 2})
        assert proposals and aim.pending
        pending_before = list(aim.pending)
        aim.monitor.report(5.0)
        assignment = aim.on_preempt(1.0, owned={"v100": 1})
        # unlike a grant, a fault keeps the job's asks alive...
        assert aim.pending == pending_before
        # ...but stale measurements and the plan are refreshed
        assert aim.monitor.value is None
        assert aim.preemptions == 1
        assert assignment is not None
        assert aim.scheduler.current_plan.gpus_of("v100") == 1
