"""API parity of the policy notification hooks.

Every shipped scheduling policy must expose ``on_preempt``, ``on_join``
and ``on_slowdown`` with the base class's exact signatures — a policy
that renames a parameter or drops one silently stops receiving the
simulator's membership and fault notifications.  ``AIMaster``'s job-side
hooks (``on_grant``/``on_preempt``/``on_join``) share one shape too.
"""

import inspect

import pytest

from repro.sched.aimaster import AIMaster
from repro.sched.colocation_policy import ServingColocationPolicy
from repro.sched.easyscale_policy import EasyScalePolicy
from repro.sched.simulator import SchedulingPolicy
from repro.sched.yarn_cs import YarnCapacityScheduler

POLICIES = [
    SchedulingPolicy,
    YarnCapacityScheduler,
    EasyScalePolicy,
    ServingColocationPolicy,
]
HOOKS = ["on_preempt", "on_join", "on_slowdown"]


def _params(cls, hook):
    return list(inspect.signature(getattr(cls, hook)).parameters)


class TestPolicyHookParity:
    @pytest.mark.parametrize("policy_cls", POLICIES)
    @pytest.mark.parametrize("hook", HOOKS)
    def test_signature_matches_base(self, policy_cls, hook):
        assert _params(policy_cls, hook) == _params(SchedulingPolicy, hook), (
            f"{policy_cls.__name__}.{hook} drifted from the "
            f"SchedulingPolicy signature"
        )

    def test_base_hook_shapes(self):
        assert _params(SchedulingPolicy, "on_preempt") == [
            "self", "sim", "runtime", "now"
        ]
        assert _params(SchedulingPolicy, "on_join") == [
            "self", "sim", "now", "gtype", "count"
        ]
        assert _params(SchedulingPolicy, "on_slowdown") == [
            "self", "sim", "runtime", "now", "factor"
        ]

    @pytest.mark.parametrize("hook", ["on_join", "on_slowdown"])
    def test_base_hooks_are_callable_no_ops(self, hook):
        policy = SchedulingPolicy()
        args = {
            "on_join": (None, 0.0, "v100", 2),
            "on_slowdown": (None, None, 0.0, 2.0),
        }[hook]
        assert getattr(policy, hook)(*args) is None


class TestAIMasterHookParity:
    @pytest.mark.parametrize("hook", ["on_grant", "on_preempt", "on_join"])
    def test_job_side_hooks_share_one_shape(self, hook):
        assert _params(AIMaster, hook) == ["self", "now", "owned"]
