"""Property tests: cluster-simulator invariants over random small traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import microbench_cluster
from repro.sched import (
    ClusterSimulator,
    EasyScalePolicy,
    YarnCapacityScheduler,
    generate_trace,
)


def run(seed, num_jobs, policy_factory):
    jobs = generate_trace(
        num_jobs=num_jobs,
        seed=seed,
        mean_interarrival_s=30,
        mean_duration_s=400,
    )
    sim = ClusterSimulator(microbench_cluster(), jobs, policy_factory())
    return jobs, sim.run(max_time=5_000_000)


POLICIES = [
    ("yarn", YarnCapacityScheduler),
    ("homo", lambda: EasyScalePolicy(False)),
    ("heter", lambda: EasyScalePolicy(True)),
]


class TestInvariants:
    @given(seed=st.integers(0, 30), num_jobs=st.integers(3, 10))
    @settings(max_examples=10, deadline=None)
    def test_all_work_conserved_and_completed(self, seed, num_jobs):
        for name, factory in POLICIES:
            jobs, result = run(seed, num_jobs, factory)
            assert len(result.completed) == num_jobs, f"{name} left jobs unfinished"
            for runtime in result.jobs:
                assert runtime.remaining_work <= ClusterSimulator.WORK_EPS
                assert runtime.completion_time >= runtime.job.arrival_time

    @given(seed=st.integers(0, 30))
    @settings(max_examples=8, deadline=None)
    def test_allocation_bounds(self, seed):
        for name, factory in POLICIES:
            _, result = run(seed, 8, factory)
            values = [count for _, count in result.allocation_timeline]
            assert all(0 <= v <= 64 for v in values), f"{name} over-allocated"
            assert result.allocation_timeline[-1][1] == 0, f"{name} leaked GPUs"

    @given(seed=st.integers(0, 30))
    @settings(max_examples=8, deadline=None)
    def test_start_before_completion(self, seed):
        for name, factory in POLICIES:
            _, result = run(seed, 6, factory)
            for runtime in result.completed:
                assert runtime.start_time is not None
                assert runtime.start_time <= runtime.completion_time

    @given(seed=st.integers(0, 20))
    @settings(max_examples=6, deadline=None)
    def test_yarn_jct_lower_bounded_by_ideal_runtime(self, seed):
        """No job can finish faster than its gang-rate runtime."""
        jobs, result = run(seed, 6, YarnCapacityScheduler)
        by_id = {j.job_id: j for j in jobs}
        for runtime in result.completed:
            job = by_id[runtime.job.job_id]
            ideal = job.total_work / job.requested_rate()
            jct = runtime.completion_time - job.arrival_time
            assert jct >= ideal * (1 - 1e-6)

    @given(seed=st.integers(0, 20))
    @settings(max_examples=6, deadline=None)
    def test_events_consistent_with_outcomes(self, seed):
        for name, factory in POLICIES:
            jobs, result = run(seed, 5, factory)
            submits = result.events.of_kind("job_submit")
            dones = result.events.of_kind("job_done")
            assert len(submits) == len(jobs)
            assert len(dones) == len(result.completed)
            # scale_out GPU totals equal scale_in + release totals
            out = sum(e.payload["gpus"] for e in result.events.of_kind("scale_out"))
            back = sum(e.payload["gpus"] for e in result.events.of_kind("scale_in"))
            released = sum(e.payload["released"] for e in dones)
            assert out == back + released, f"{name} GPU accounting broken"
