"""Simulator fault path: preemptions, lost work, policy reactions."""

import pytest

from repro.faults import FaultEvent, FaultPlan, random_sim_plan
from repro.hw import microbench_cluster
from repro.obs.report import ClusterUtilizationReport
from repro.sched.easyscale_policy import EasyScalePolicy
from repro.sched.simulator import ClusterSimulator, JobRuntime
from repro.sched.trace import TraceJob, generate_trace
from repro.sched.yarn_cs import YarnCapacityScheduler


def _jobs(n=4, seed=11):
    return generate_trace(num_jobs=n, seed=seed)


def _plan():
    return FaultPlan(events=(
        FaultEvent(kind="slowdown", at_time=300.0, magnitude=2.0),
        FaultEvent(kind="restart_delay", at_time=400.0, magnitude=60.0),
        FaultEvent(kind="node_preempt", at_time=600.0, magnitude=2.0),
        FaultEvent(kind="checkpoint_corrupt", at_time=700.0),
        FaultEvent(kind="worker_crash", at_time=900.0),
        FaultEvent(kind="gpu_revoke", at_time=1100.0),
    ), seed=5)


class TestJobRuntimeFaults:
    def test_fault_slowdown_divides_effective_rate(self):
        rt = JobRuntime(
            job=TraceJob(job_id="j", workload="resnet50", arrival_time=0.0,
                         requested_gpus=2, requested_type="v100",
                         total_work=100.0),
            remaining_work=100.0,
        )
        rt.status = "running"
        rt.rate = 10.0
        assert rt.effective_rate == pytest.approx(10.0)
        rt.fault_slowdown = 2.0
        assert rt.effective_rate == pytest.approx(5.0)
        rt.reconfig_until = 0.0
        rt.advance(0.0, 10.0)
        assert rt.remaining_work == pytest.approx(50.0)


class TestSimulatedFaults:
    def test_easyscale_survives_and_pays_recovery(self):
        jobs = _jobs()
        clean = ClusterSimulator(
            microbench_cluster(), jobs, EasyScalePolicy(True)
        ).run()
        faulted = ClusterSimulator(
            microbench_cluster(), jobs, EasyScalePolicy(True), faults=_plan()
        ).run()
        assert len(faulted.completed) == len(jobs)
        assert faulted.preemptions > 0
        assert faulted.recovery_seconds > 0
        assert faulted.lost_work_seconds > 0
        assert faulted.average_jct > clean.average_jct
        assert clean.preemptions == 0 and clean.lost_work_seconds == 0.0

    def test_yarn_requeues_preempted_gangs(self):
        jobs = _jobs()
        result = ClusterSimulator(
            microbench_cluster(), jobs, YarnCapacityScheduler(), faults=_plan()
        ).run()
        assert len(result.completed) == len(jobs)
        assert result.preemptions > 0

    def test_fault_events_reach_the_event_log(self):
        result = ClusterSimulator(
            microbench_cluster(), _jobs(), EasyScalePolicy(True),
            faults=_plan(),
        ).run()
        preempts = result.events.of_kind("preempt")
        assert preempts
        kinds = {e.payload["fault"] for e in preempts}
        assert kinds <= {"worker_crash", "gpu_revoke", "node_preempt"}
        # non-capacity faults surface on their own channel
        other = result.events.of_kind("fault")
        assert {e.payload["fault"] for e in other} <= {
            "slowdown", "restart_delay", "checkpoint_corrupt",
        }

    def test_report_renders_preemptions(self):
        result = ClusterSimulator(
            microbench_cluster(), _jobs(), EasyScalePolicy(True),
            faults=_plan(),
        ).run()
        report = ClusterUtilizationReport.from_events(list(result.events))
        assert report.preemptions == result.preemptions
        text = report.to_text()
        assert "preemptions" in text
        assert "!=preempted" in text
        html = report.to_html()
        assert "preempt" in html

    def test_checkpoint_interval_bounds_lost_work(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="node_preempt", at_time=500.0),
        ))
        tight = ClusterSimulator(
            microbench_cluster(), _jobs(), EasyScalePolicy(True),
            faults=plan, checkpoint_interval=60.0,
        ).run()
        loose = ClusterSimulator(
            microbench_cluster(), _jobs(), EasyScalePolicy(True),
            faults=plan, checkpoint_interval=3600.0,
        ).run()
        assert tight.lost_work_seconds <= loose.lost_work_seconds

    def test_checkpoint_interval_validated(self):
        with pytest.raises(ValueError, match="checkpoint_interval"):
            ClusterSimulator(
                microbench_cluster(), _jobs(), EasyScalePolicy(True),
                checkpoint_interval=0.0,
            )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_sim_plans_always_complete(self, seed):
        jobs = _jobs()
        plan = random_sim_plan(seed, horizon_s=2000.0)
        result = ClusterSimulator(
            microbench_cluster(), jobs, EasyScalePolicy(True), faults=plan
        ).run()
        assert len(result.completed) == len(jobs)
