"""Companion module: plan enumeration and capability bias correction."""

import pytest

from repro.sched.companion import CompanionModule
from repro.sched.perfmodel import estimated_throughput

CAP = {"v100": 9.0, "p100": 4.0, "t4": 3.0}


class TestEnumeration:
    def test_plans_are_feasible_and_sorted(self):
        comp = CompanionModule(max_p=4, capability=CAP)
        plans = comp.enumerate_plans({"v100": 3, "p100": 2, "t4": 2})
        assert plans
        throughputs = [p.throughput for p in plans]
        assert throughputs == sorted(throughputs, reverse=True)
        for scored in plans:
            assert scored.plan.is_feasible
            assert scored.plan.total_gpus <= 7

    def test_availability_respected(self):
        comp = CompanionModule(max_p=8, capability=CAP)
        for scored in comp.enumerate_plans({"v100": 2, "t4": 1}):
            assert scored.plan.gpus_of("v100") <= 2
            assert scored.plan.gpus_of("t4") <= 1
            assert scored.plan.gpus_of("p100") == 0

    def test_best_plan_prefers_fast_gpus(self):
        comp = CompanionModule(max_p=4, capability=CAP)
        best = comp.best_plan({"v100": 4, "t4": 4})
        assert best.plan.gpus_of("v100") == 4
        assert best.plan.gpus_of("t4") == 0

    def test_homogeneous_only_mode(self):
        comp = CompanionModule(max_p=4, capability=CAP, homogeneous_only=True)
        for scored in comp.enumerate_plans({"v100": 2, "p100": 2}):
            assert scored.plan.is_homogeneous

    def test_no_gpus_no_plans(self):
        comp = CompanionModule(max_p=4, capability=CAP)
        assert comp.enumerate_plans({"v100": 0}) == []
        assert comp.best_plan({}) is None

    def test_unknown_types_ignored(self):
        comp = CompanionModule(max_p=2, capability={"v100": 9.0})
        plans = comp.enumerate_plans({"v100": 1, "a100": 4})
        assert plans
        assert all(p.plan.gpus_of("a100") == 0 for p in plans)

    def test_gpu_count_never_exceeds_max_p(self):
        comp = CompanionModule(max_p=3, capability=CAP)
        for scored in comp.enumerate_plans({"v100": 8, "p100": 8, "t4": 8}):
            assert scored.plan.total_gpus <= 3

    def test_top_k_limits(self):
        comp = CompanionModule(max_p=4, capability=CAP)
        assert len(comp.best_plans({"v100": 4, "p100": 4}, top_k=2)) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CompanionModule(max_p=0, capability=CAP)
        with pytest.raises(ValueError):
            CompanionModule(max_p=2, capability={})


class TestBiasCorrection:
    def test_small_bias_ignored(self):
        comp = CompanionModule(max_p=4, capability=dict(CAP), bias_threshold=0.25)
        assert not comp.report_measurement("v100", estimated=9.0, measured=9.5)
        assert comp.capability["v100"] == 9.0

    def test_large_bias_refits(self):
        comp = CompanionModule(max_p=4, capability=dict(CAP), bias_threshold=0.25)
        assert comp.report_measurement("v100", estimated=9.0, measured=4.5)
        assert comp.capability["v100"] == pytest.approx(4.5)

    def test_observations_recorded(self):
        comp = CompanionModule(max_p=4, capability=dict(CAP))
        comp.report_measurement("t4", 3.0, 3.1)
        assert comp.observations == [("t4", 3.0, 3.1, False)]

    def test_unknown_type_rejected(self):
        comp = CompanionModule(max_p=4, capability=dict(CAP))
        with pytest.raises(KeyError):
            comp.report_measurement("a100", 1.0, 1.0)

    def test_wild_overestimate_clamped(self):
        # a single absurd report (e.g. a stalled step producing ~0
        # throughput) must not crater the capability table: the correction
        # is clamped to the band's lower edge, not applied raw
        comp = CompanionModule(max_p=4, capability=dict(CAP))
        assert comp.report_measurement("v100", estimated=9.0, measured=0.09)
        assert comp.capability["v100"] == pytest.approx(4.5)  # 9.0 * 0.5
        assert comp.observations == [("v100", 9.0, 0.09, True)]

    def test_wild_underestimate_clamped(self):
        comp = CompanionModule(max_p=4, capability=dict(CAP))
        assert comp.report_measurement("t4", estimated=3.0, measured=30.0)
        assert comp.capability["t4"] == pytest.approx(6.0)  # 3.0 * 2.0
        assert comp.observations == [("t4", 3.0, 30.0, True)]

    def test_band_edge_not_flagged_clamped(self):
        comp = CompanionModule(max_p=4, capability=dict(CAP))
        assert comp.report_measurement("v100", estimated=9.0, measured=4.5)
        assert comp.capability["v100"] == pytest.approx(4.5)
        assert comp.observations[0][3] is False

    def test_custom_band(self):
        comp = CompanionModule(
            max_p=4, capability=dict(CAP), correction_band=(0.9, 1.5)
        )
        comp.report_measurement("p100", estimated=4.0, measured=1.0)
        assert comp.capability["p100"] == pytest.approx(3.6)  # 4.0 * 0.9

    def test_band_validation(self):
        for bad in [(0.0, 2.0), (1.5, 2.0), (0.5, 0.9), (2.0, 0.5)]:
            with pytest.raises(ValueError):
                CompanionModule(max_p=4, capability=dict(CAP), correction_band=bad)

    def test_refit_changes_future_plans(self):
        comp = CompanionModule(max_p=4, capability=dict(CAP))
        before = comp.best_plan({"v100": 2, "p100": 4}).plan
        comp.report_measurement("v100", estimated=9.0, measured=0.5)  # V100s are slow here
        after = comp.best_plan({"v100": 2, "p100": 4}).plan
        assert before.gpus_of("v100") > 0
        assert after.gpus_of("p100") >= before.gpus_of("p100")
