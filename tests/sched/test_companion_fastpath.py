"""Scheduler fast path: cached/pruned plan search equals brute force.

The contract (see the module docs in ``repro.sched.companion``) is exact:
``enumerate_plans`` / ``best_plans`` / ``best_plan_delta`` return the very
plans — same ranking, same floats — that the seed brute-force enumerator
(``enumerate_plans_reference``) produces, across cache hits, dominance
pruning, and every capability-mutation path.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.companion import CompanionModule
from repro.sched.plancache import MISS, PlanCache, availability_key

CAP = {"v100": 9.0, "p100": 4.0, "t4": 3.0}

TYPES = ("v100", "p100", "t4")


class TestPlanCache:
    def test_miss_then_hit(self):
        cache = PlanCache("t")
        assert cache.get("k") is MISS
        cache.put("k", [1, 2])
        assert cache.get("k") == [1, 2]
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_none_is_a_cacheable_value(self):
        cache = PlanCache("t")
        cache.put("k", None)
        assert cache.get("k") is None  # not MISS: None results are cached

    def test_invalidate_clears_and_counts(self):
        cache = PlanCache("t")
        cache.put("k", 1)
        cache.invalidate()
        assert cache.get("k") is MISS
        assert cache.stats.invalidations == 1

    def test_fifo_eviction(self):
        cache = PlanCache("t", maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is MISS
        assert cache.get("b") == 2
        assert cache.stats.evictions == 1

    def test_hit_ratio(self):
        cache = PlanCache("t")
        cache.put("k", 1)
        cache.get("k")
        cache.get("missing")
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_availability_key_normalizes(self):
        # zero counts and unknown types drop; counts clamp to the caps —
        # exactly mirroring _candidate_counts, so logically identical
        # availabilities share one cache entry
        key = availability_key(
            {"t4": 99, "v100": 2, "a100": 4, "p100": 0}, CAP, max_p=8,
            max_gpus_per_type=16,
        )
        assert key == (("t4", 8), ("v100", 2))


class TestCacheBehaviour:
    def test_repeat_query_hits(self):
        comp = CompanionModule(max_p=4, capability=dict(CAP))
        first = comp.best_plans({"v100": 2, "t4": 1})
        scored_before = comp.vectors_scored
        second = comp.best_plans({"v100": 2, "t4": 1})
        assert first == second
        assert comp.vectors_scored == scored_before  # pure cache hit
        assert any(s["hits"] > 0 for s in comp.cache_stats().values())

    def test_equivalent_availabilities_share_entries(self):
        comp = CompanionModule(max_p=4, capability=dict(CAP))
        comp.best_plans({"v100": 10, "a100": 3})  # clamps to v100: 4
        scored_before = comp.vectors_scored
        comp.best_plans({"v100": 4, "p100": 0})
        assert comp.vectors_scored == scored_before

    def test_direct_capability_write_invalidates(self):
        # IntraJobScheduler.apply_calibration mutates the table directly;
        # the _CapabilityTable container must bump the generation itself
        comp = CompanionModule(max_p=4, capability=dict(CAP))
        stale = comp.best_plan({"v100": 2, "t4": 2})
        generation = comp.generation
        comp.capability["v100"] = 0.5
        assert comp.generation > generation
        fresh = comp.best_plan({"v100": 2, "t4": 2})
        assert fresh == comp.enumerate_plans_reference({"v100": 2, "t4": 2})[0]
        assert fresh != stale

    def test_report_measurement_invalidates(self):
        comp = CompanionModule(max_p=4, capability=dict(CAP))
        comp.best_plan({"v100": 2})
        generation = comp.generation
        comp.report_measurement("v100", estimated=9.0, measured=2.0)
        assert comp.generation > generation

    def test_small_bias_report_keeps_cache(self):
        comp = CompanionModule(max_p=4, capability=dict(CAP))
        comp.best_plan({"v100": 2})
        generation = comp.generation
        comp.report_measurement("v100", estimated=9.0, measured=9.1)
        assert comp.generation == generation  # below threshold: no refit

    def test_all_mutator_paths_bump_generation(self):
        comp = CompanionModule(max_p=4, capability=dict(CAP))
        g = comp.generation
        comp.capability.update({"v100": 8.0})
        assert comp.generation > g
        g = comp.generation
        comp.capability.pop("t4")
        assert comp.generation > g
        g = comp.generation
        comp.capability.setdefault("t4", 3.0)
        assert comp.generation > g


class TestPruning:
    def test_pruning_fires_and_preserves_results(self):
        comp = CompanionModule(max_p=8, capability=dict(CAP))
        avail = {"v100": 8, "p100": 8, "t4": 8}
        top = comp.best_plans(avail, top_k=3)
        assert comp.vectors_pruned > 0
        assert top == comp.enumerate_plans_reference(avail)[:3]

    def test_delta_matches_full_search(self):
        comp = CompanionModule(max_p=6, capability=dict(CAP))
        owned = {"v100": 2}
        got = comp.best_plan_delta(owned, "t4", 2)
        expected = comp.enumerate_plans_reference({"v100": 2, "t4": 2})
        assert got == expected[0]

    def test_delta_unknown_type_returns_owned_best(self):
        comp = CompanionModule(max_p=4, capability=dict(CAP))
        assert comp.best_plan_delta({"v100": 2}, "a100", 4) == comp.best_plan(
            {"v100": 2}
        )

    def test_delta_saturated_cap_returns_owned_best(self):
        comp = CompanionModule(max_p=2, capability=dict(CAP))
        # owned already covers maxP for this type: no new vectors exist
        assert comp.best_plan_delta({"v100": 2}, "v100", 4) == comp.best_plan(
            {"v100": 2}
        )

    def test_delta_rejects_nonpositive_chunk(self):
        comp = CompanionModule(max_p=4, capability=dict(CAP))
        with pytest.raises(ValueError):
            comp.best_plan_delta({"v100": 1}, "v100", 0)


def _availability(draw):
    avail = {}
    for gtype in TYPES + ("a100",):
        if draw(st.booleans()):
            avail[gtype] = draw(st.integers(0, 5))
    return avail


class TestEquivalenceProperties:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_fastpath_equals_bruteforce_under_interleaving(self, data):
        """Random query/mutation interleavings never desynchronize the
        cache: every fast-path answer equals the brute-force oracle run
        against the *current* capability table."""
        draw = data.draw
        types = draw(
            st.lists(st.sampled_from(TYPES), min_size=1, max_size=3, unique=True)
        )
        caps = {t: draw(st.floats(0.25, 16.0)) for t in types}
        comp = CompanionModule(
            max_p=draw(st.integers(1, 6)),
            capability=caps,
            homogeneous_only=draw(st.booleans()),
            max_gpus_per_type=4,
        )
        for _ in range(draw(st.integers(1, 6))):
            op = draw(
                st.sampled_from(
                    ["enumerate", "topk", "delta", "calibrate", "report"]
                )
            )
            if op == "enumerate":
                avail = _availability(draw)
                assert comp.enumerate_plans(avail) == comp.enumerate_plans_reference(
                    avail
                )
            elif op == "topk":
                avail = _availability(draw)
                k = draw(st.integers(1, 4))
                assert (
                    comp.best_plans(avail, top_k=k)
                    == comp.enumerate_plans_reference(avail)[:k]
                )
            elif op == "delta":
                owned = _availability(draw)
                gtype = draw(st.sampled_from(TYPES + ("a100",)))
                chunk = draw(st.integers(1, 4))
                got = comp.best_plan_delta(owned, gtype, chunk)
                if gtype in comp.capability:
                    hypothetical = dict(owned)
                    hypothetical[gtype] = hypothetical.get(gtype, 0) + chunk
                else:
                    hypothetical = owned
                ranked = comp.enumerate_plans_reference(hypothetical)
                assert got == (ranked[0] if ranked else None)
            elif op == "calibrate":
                gtype = draw(st.sampled_from(types))
                comp.capability[gtype] = draw(st.floats(0.25, 16.0))
            elif op == "report":
                gtype = draw(st.sampled_from(types))
                comp.report_measurement(
                    gtype,
                    estimated=draw(st.floats(0.5, 16.0)),
                    measured=draw(st.floats(0.5, 16.0)),
                )

    @given(
        seed_counts=st.lists(st.integers(0, 6), min_size=3, max_size=3),
        top_k=st.integers(1, 5),
        max_p=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_topk_is_prefix_of_full_ranking(self, seed_counts, top_k, max_p):
        avail = {t: n for t, n in zip(TYPES, seed_counts)}
        comp = CompanionModule(max_p=max_p, capability=dict(CAP))
        assert (
            comp.best_plans(avail, top_k=top_k)
            == comp.enumerate_plans_reference(avail)[:top_k]
        )
