"""Cluster simulator: progress accounting, policies, bookkeeping."""

import pytest

from repro.hw import microbench_cluster
from repro.sched.easyscale_policy import EasyScalePolicy
from repro.sched.simulator import ClusterSimulator, JobRuntime
from repro.sched.trace import TraceJob, generate_trace
from repro.sched.yarn_cs import YarnCapacityScheduler


def job(job_id="j0", arrival=0.0, gpus=2, gtype="v100", work=100.0, workload="resnet50"):
    return TraceJob(
        job_id=job_id,
        workload=workload,
        arrival_time=arrival,
        requested_gpus=gpus,
        requested_type=gtype,
        total_work=work,
    )


class TestJobRuntime:
    def test_advance_respects_reconfig_pause(self):
        rt = JobRuntime(job=job(), remaining_work=100.0)
        rt.status = "running"
        rt.rate = 10.0
        rt.reconfig_until = 5.0
        rt.advance(0.0, 10.0)  # only [5, 10) counts
        assert rt.remaining_work == pytest.approx(50.0)

    def test_predicted_completion(self):
        rt = JobRuntime(job=job(), remaining_work=100.0)
        rt.status = "running"
        rt.rate = 10.0
        assert rt.predicted_completion(0.0) == pytest.approx(10.0)
        rt.reconfig_until = 4.0
        assert rt.predicted_completion(0.0) == pytest.approx(14.0)

    def test_pending_jobs_make_no_progress(self):
        rt = JobRuntime(job=job(), remaining_work=100.0)
        rt.advance(0.0, 50.0)
        assert rt.remaining_work == 100.0
        assert rt.predicted_completion(0.0) is None


class TestYarnFifo:
    def test_gang_blocking(self):
        # head job wants 16 V100; a later 1-GPU job must wait behind it
        jobs = [
            job("big", arrival=0.0, gpus=30, gtype="v100", work=30 * 9.0 * 100),
            job("head", arrival=1.0, gpus=16, gtype="v100", work=16 * 9.0 * 10),
            job("small", arrival=2.0, gpus=1, gtype="v100", work=9.0 * 10),
        ]
        result = ClusterSimulator(
            microbench_cluster(), jobs, YarnCapacityScheduler()
        ).run()
        by_id = {r.job.job_id: r for r in result.jobs}
        # "small" cannot start before "head" even though 2 V100s are free
        assert by_id["small"].start_time >= by_id["head"].start_time

    def test_all_jobs_complete(self):
        jobs = generate_trace(num_jobs=10, seed=0)
        result = ClusterSimulator(
            microbench_cluster(), jobs, YarnCapacityScheduler()
        ).run()
        assert len(result.completed) == 10
        assert result.makespan > 0

    def test_fixed_rate(self):
        jobs = [job("a", gpus=2, gtype="p100", work=2 * 4.05 * 50, workload="resnet50")]
        result = ClusterSimulator(
            microbench_cluster(), jobs, YarnCapacityScheduler()
        ).run()
        rt = result.jobs[0]
        assert rt.completion_time == pytest.approx(rt.start_time + 50.0, rel=0.05)


class TestEasyScalePolicy:
    def test_jobs_start_without_full_gang(self):
        # ask for 40 V100 (more than exist): EasyScale still runs the job
        jobs = [job("big", gpus=16, gtype="v100", work=16 * 9.0 * 20)]
        result = ClusterSimulator(
            microbench_cluster(), jobs, EasyScalePolicy(False)
        ).run()
        assert len(result.completed) == 1

    def test_allocation_never_exceeds_cluster(self):
        jobs = generate_trace(num_jobs=15, seed=2)
        result = ClusterSimulator(
            microbench_cluster(), jobs, EasyScalePolicy(True)
        ).run()
        assert max(c for _, c in result.allocation_timeline) <= 64

    def test_homo_policy_uses_single_type_per_job(self):
        jobs = generate_trace(num_jobs=8, seed=3)
        sim = ClusterSimulator(microbench_cluster(), jobs, EasyScalePolicy(False))
        result = sim.run()
        for event in result.events.of_kind("scale_out"):
            pass  # types may differ across events; check runtime plans instead
        for rt in result.jobs:
            if rt.agent and rt.agent.current_plan:
                assert rt.agent.current_plan.is_homogeneous

    def test_reconfig_delay_charged(self):
        jobs = [job("a", gpus=2, gtype="v100", work=2 * 9.0 * 10)]
        sim = ClusterSimulator(
            microbench_cluster(), jobs, EasyScalePolicy(False), reconfig_delay=30.0
        )
        result = sim.run()
        rt = result.jobs[0]
        assert rt.completion_time >= rt.job.arrival_time + 30.0

    def test_faster_than_yarn_on_congested_trace(self):
        jobs = generate_trace(
            num_jobs=25, seed=1, mean_interarrival_s=20, mean_duration_s=800
        )
        yarn = ClusterSimulator(microbench_cluster(), jobs, YarnCapacityScheduler()).run()
        easy = ClusterSimulator(microbench_cluster(), jobs, EasyScalePolicy(False)).run()
        assert easy.average_jct < yarn.average_jct


class TestSimulatorValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            ClusterSimulator(microbench_cluster(), [], YarnCapacityScheduler(), reconfig_delay=-1)
        with pytest.raises(ValueError):
            ClusterSimulator(microbench_cluster(), [], YarnCapacityScheduler(), round_interval=0)

    def test_revoke_bookkeeping(self):
        sim = ClusterSimulator(microbench_cluster(), [job()], EasyScalePolicy(False))
        rt = sim.runtimes[0]
        sim.grant(rt, "v100", 3)
        assert sim.cluster.allocated_count("V100") == 3
        sim.revoke(rt, "v100", 2)
        assert rt.owned["v100"] == 1
        assert sim.cluster.allocated_count("V100") == 1
        with pytest.raises(ValueError):
            sim.revoke(rt, "v100", 5)
