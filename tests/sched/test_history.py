"""Historical capability store: warm starts, merging, persistence."""

import pytest

from repro.sched.companion import CompanionModule
from repro.sched.history import HistoryStore


class TestWarmStart:
    def test_cold_start_returns_none(self):
        assert HistoryStore().lookup("resnet50") is None

    def test_capability_for_merges_with_default(self):
        store = HistoryStore()
        store.record("resnet50", {"v100": 7.5})
        cap = store.capability_for("resnet50", {"v100": 9.0, "t4": 3.0})
        assert cap == {"v100": 7.5, "t4": 3.0}

    def test_running_mean(self):
        store = HistoryStore()
        store.record("bert", {"v100": 2.0})
        store.record("bert", {"v100": 4.0})
        assert store.lookup("bert")["v100"] == pytest.approx(3.0)
        assert store.jobs_seen("bert") == 2

    def test_new_type_joins_profile(self):
        store = HistoryStore()
        store.record("bert", {"v100": 2.0})
        store.record("bert", {"p100": 1.0})
        profile = store.lookup("bert")
        assert profile["v100"] == 2.0 and profile["p100"] == 1.0

    def test_invalid_measurement(self):
        with pytest.raises(ValueError):
            HistoryStore().record("bert", {"v100": 0.0})


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        store = HistoryStore()
        store.record("resnet50", {"v100": 8.1, "t4": 2.6})
        store.record("resnet50", {"v100": 8.5})
        path = tmp_path / "history.json"
        store.save(path)
        loaded = HistoryStore.load(path)
        assert loaded.lookup("resnet50") == pytest.approx(store.lookup("resnet50"))
        assert loaded.jobs_seen("resnet50") == 2

    def test_atomic_save(self, tmp_path):
        store = HistoryStore()
        store.record("x", {"v100": 1.0})
        path = tmp_path / "h.json"
        store.save(path)
        assert not (tmp_path / "h.json.tmp").exists()


class TestCompanionIntegration:
    def test_companion_built_from_history(self):
        store = HistoryStore()
        # history says V100s deliver far less than the registry estimate
        store.record("resnet50", {"v100": 2.0})
        cap = store.capability_for("resnet50", {"v100": 9.0, "p100": 4.0})
        companion = CompanionModule(max_p=4, capability=cap)
        best = companion.best_plan({"v100": 2, "p100": 4})
        # with warm-started capabilities the P100s become competitive
        assert best.plan.gpus_of("p100") > 0
