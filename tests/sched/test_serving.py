"""Serving load model and co-location simulation (Figs. 1, 16)."""

import numpy as np
import pytest

from repro.sched.serving import (
    MINUTES_PER_DAY,
    ColocationStats,
    ServingLoadModel,
    simulate_colocation,
)


class TestServingLoad:
    def test_diurnal_swing(self):
        load = ServingLoadModel(total_gpus=3000, seed=0)
        series = load.series(MINUTES_PER_DAY)
        swing = series.max() - series.min()
        # the paper observes an idle/peak gap approaching 2000 GPUs
        assert swing > 1200

    def test_demand_bounded(self):
        load = ServingLoadModel(total_gpus=1000, seed=1)
        series = load.series(MINUTES_PER_DAY)
        assert series.min() >= 0 and series.max() <= 1000

    def test_deterministic(self):
        a = ServingLoadModel(seed=4).series(100)
        b = ServingLoadModel(seed=4).series(100)
        np.testing.assert_array_equal(a, b)

    def test_peak_near_configured_minute(self):
        load = ServingLoadModel(total_gpus=1000, seed=0, noise_fraction=0.0, peak_minute=600)
        series = load.series(MINUTES_PER_DAY)
        assert abs(int(np.argmax(series)) - 600) < 30


class TestColocation:
    @pytest.fixture(scope="class")
    def stats(self):
        return simulate_colocation(total_gpus=3000, seed=2021)

    def test_day1_has_no_training(self, stats):
        assert stats.training_alloc[:MINUTES_PER_DAY].sum() == 0

    def test_day2_uses_idle_gpus(self, stats):
        day2 = stats.training_alloc[MINUTES_PER_DAY:]
        assert day2.mean() > 100  # paper: 459 average idle GPUs used

    def test_training_never_exceeds_idle(self, stats):
        total = stats.serving_alloc + stats.training_alloc
        assert total.max() <= 3000

    def test_alloc_ratio_improves(self, stats):
        day1 = stats.alloc_ratio(0, 3000)
        day2 = stats.alloc_ratio(1, 3000)
        assert day2 - day1 > 0.10  # paper: +17.1%

    def test_utilization_improves_substantially(self, stats):
        day1 = stats.mean_utilization(0)
        day2 = stats.mean_utilization(1)
        assert (day2 / day1 - 1) > 0.40  # paper: +62.1%

    def test_preemptions_occur_without_failures(self, stats):
        assert stats.preemptions_day2 > 0
        assert stats.failures_day2 == 0

    def test_scale_in_is_seconds(self, stats):
        assert stats.scale_in_latency_s < 60

    def test_refill_within_minutes(self, stats):
        assert stats.refill_minutes <= 5
        # after a demand drop the training allocation climbs back: find a
        # minute in day 2 where idle grew and check training follows
        day2 = slice(MINUTES_PER_DAY, 2 * MINUTES_PER_DAY)
        idle = 3000 - stats.serving_alloc[day2]
        training = stats.training_alloc[day2]
        grew = np.where(np.diff(idle) > 50)[0]
        assert len(grew) > 0
        # training allocation is non-decreasing right after idle grows
        # (until it reaches its backlog cap)
        i = int(grew[0])
        assert training[i + 1] >= training[i] or training[i] >= 900
