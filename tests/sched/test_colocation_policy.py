"""Serving co-location in the DES: priority, reclaim, zero failures."""

import pytest

from repro.hw import microbench_cluster
from repro.sched.colocation_policy import ServingColocationPolicy
from repro.sched.simulator import ClusterSimulator
from repro.sched.trace import TraceJob


def job(job_id, gpus=8, work=None, workload="bert", arrival=0.0):
    spec_rate = 3.0  # bert v100
    return TraceJob(
        job_id=job_id,
        workload=workload,
        arrival_time=arrival,
        requested_gpus=gpus,
        requested_type="v100",
        total_work=work if work is not None else gpus * spec_rate * 400,
    )


def step_demand(spike_at, spike_gpus):
    """Zero serving demand, then a spike of V100s at ``spike_at``."""

    def demand(now):
        return {"v100": spike_gpus} if now >= spike_at else {"v100": 0}

    return demand


class TestServingPriority:
    def test_spike_reclaims_from_elastic(self):
        policy = ServingColocationPolicy(step_demand(spike_at=300.0, spike_gpus=30))
        sim = ClusterSimulator(microbench_cluster(), [job("a", gpus=16)], policy)
        result = sim.run()
        assert policy.preemptions > 0
        assert policy.failures == 0
        assert len(result.completed) == 1  # the job still finished

    def test_serving_demand_always_met_after_spike(self):
        policy = ServingColocationPolicy(step_demand(spike_at=200.0, spike_gpus=30))
        sim = ClusterSimulator(microbench_cluster(), [job("a", gpus=16)], policy)
        sim.run(max_time=100_000)
        # at the end, serving still holds its quota
        assert policy._serving_held.get("v100", 0) == 30

    def test_serving_release_returns_gpus(self):
        calls = {"n": 0}

        def pulse(now):
            # demand rises then falls
            return {"v100": 20} if 100.0 <= now < 400.0 else {"v100": 0}

        policy = ServingColocationPolicy(pulse)
        sim = ClusterSimulator(microbench_cluster(), [job("a", gpus=16, work=16 * 3.0 * 900)], policy)
        result = sim.run()
        assert len(result.completed) == 1
        assert policy._serving_held.get("v100", 0) == 0  # released after the pulse

    def test_no_serving_behaves_like_plain_policy(self):
        policy = ServingColocationPolicy(lambda now: {"v100": 0})
        sim = ClusterSimulator(microbench_cluster(), [job("a", gpus=4)], policy)
        result = sim.run()
        assert policy.preemptions == 0
        assert len(result.completed) == 1

    def test_scale_in_not_failure(self):
        """The §2.1 contrast: revocation shrinks the job instead of
        killing it; the work completes later."""
        policy = ServingColocationPolicy(step_demand(spike_at=100.0, spike_gpus=32))
        sim = ClusterSimulator(microbench_cluster(), [job("a", gpus=16)], policy)
        result = sim.run()
        runtime = result.jobs[0]
        assert runtime.status == "done"
        assert policy.failures == 0
        scale_ins = result.events.of_kind("scale_in")
        assert scale_ins, "the spike should have forced at least one scale-in"
