"""Heap event core vs the reference linear scan: identical event streams.

``ClusterSimulator.run`` (priority queue, lazy invalidation) must
reproduce ``ClusterSimulator.run_reference`` (the seed candidate-min
loop) *exactly* — every event's time, kind, and payload; every JCT; the
makespan; the fault accounting — across policies, traces, and fault
plans.
"""

import pytest

from repro.faults import FaultEvent, FaultPlan, random_sim_plan
from repro.hw import microbench_cluster
from repro.sched import (
    ClusterSimulator,
    EasyScalePolicy,
    YarnCapacityScheduler,
    generate_trace,
)

POLICIES = {
    "yarn": YarnCapacityScheduler,
    "homo": lambda: EasyScalePolicy(False),
    "heter": lambda: EasyScalePolicy(True),
}

FIXED_PLAN = FaultPlan(events=(
    FaultEvent(kind="slowdown", at_time=300.0, magnitude=2.0),
    FaultEvent(kind="restart_delay", at_time=400.0, magnitude=60.0),
    FaultEvent(kind="node_preempt", at_time=600.0, magnitude=2.0),
    FaultEvent(kind="checkpoint_corrupt", at_time=700.0),
    FaultEvent(kind="worker_crash", at_time=900.0),
    FaultEvent(kind="gpu_revoke", at_time=1100.0),
), seed=5)


def _pair(policy_factory, jobs, plan=None, max_time=10_000_000.0):
    heap = ClusterSimulator(
        microbench_cluster(), jobs, policy_factory(), faults=plan
    ).run(max_time=max_time)
    reference = ClusterSimulator(
        microbench_cluster(), jobs, policy_factory(), faults=plan
    ).run_reference(max_time=max_time)
    return heap, reference


def _assert_identical(heap, reference):
    assert heap.events.as_tuples() == reference.events.as_tuples()
    assert heap.events.fingerprint() == reference.events.fingerprint()
    assert heap.jcts == reference.jcts
    assert heap.makespan == reference.makespan
    assert heap.allocation_timeline == reference.allocation_timeline
    assert heap.preemptions == reference.preemptions
    assert heap.recovery_seconds == reference.recovery_seconds
    assert heap.lost_work_seconds == reference.lost_work_seconds


class TestHeapMatchesReference:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_clean_trace(self, name):
        jobs = generate_trace(num_jobs=8, seed=11)
        _assert_identical(*_pair(POLICIES[name], jobs))

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_fixed_fault_plan(self, name):
        jobs = generate_trace(num_jobs=4, seed=11)
        _assert_identical(*_pair(POLICIES[name], jobs, plan=FIXED_PLAN))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_fault_plans(self, seed):
        jobs = generate_trace(num_jobs=5, seed=seed)
        plan = random_sim_plan(seed, horizon_s=2000.0)
        _assert_identical(*_pair(POLICIES["heter"], jobs, plan=plan))

    def test_max_time_cutoff(self):
        # truncation happens at the same decision point on both cores
        jobs = generate_trace(num_jobs=6, seed=3)
        _assert_identical(*_pair(POLICIES["homo"], jobs, max_time=900.0))

    def test_bursty_arrivals(self):
        jobs = generate_trace(
            num_jobs=10, seed=7, mean_interarrival_s=5, mean_duration_s=300
        )
        _assert_identical(*_pair(POLICIES["heter"], jobs))

    def test_fingerprint_is_discriminating(self):
        # sanity: the fingerprint is not constant across different runs
        a = ClusterSimulator(
            microbench_cluster(), generate_trace(num_jobs=3, seed=1),
            POLICIES["heter"](),
        ).run()
        b = ClusterSimulator(
            microbench_cluster(), generate_trace(num_jobs=3, seed=2),
            POLICIES["heter"](),
        ).run()
        assert a.events.fingerprint() != b.events.fingerprint()
