"""Batched event core vs heap core vs reference: identical event streams.

``ClusterSimulator.run_batched`` (coincident-event draining, vectorized
advance/ETA, quiescent reschedule skipping, incremental arbitration) must
reproduce both ``run`` (heap core) and ``run_reference`` (seed linear
scan) byte-for-byte: same ``EventLog`` fingerprint across policies,
trace shapes, fault plans, and membership plans.  The hypothesis sweep
is the PR's acceptance property; the deterministic cases pin the regimes
the sweep samples only occasionally (colocation, shapes, membership).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultEvent, FaultPlan, random_sim_plan
from repro.hw import microbench_cluster
from repro.membership import HostEvent, HostSpec, MembershipPlan
from repro.sched import (
    ClusterSimulator,
    EasyScalePolicy,
    ServingColocationPolicy,
    YarnCapacityScheduler,
    diurnal_trace,
    generate_trace,
    heavy_tail_trace,
)

CORES = ("run", "run_batched", "run_reference")


def _serving_demand(now):
    return {"v100": max(0, int(2 + 2 * math.sin(now / 1800.0)))}


POLICIES = {
    "yarn": YarnCapacityScheduler,
    "homo": lambda: EasyScalePolicy(False),
    "heter": lambda: EasyScalePolicy(True),
    "coloc": lambda: ServingColocationPolicy(_serving_demand),
}


def _membership_plan():
    return MembershipPlan(
        initial_hosts=(HostSpec("member-v", "v100", 2),),
        events=(
            HostEvent(kind="announce", host="spot", at_time=90.0,
                      gtype="t4", slots=2, magnitude=30.0),
            HostEvent(kind="drain", host="member-v", at_time=200.0),
            HostEvent(kind="blacklist", host="spot", at_time=400.0,
                      magnitude=100.0),
        ),
    )


def _fingerprints(policy_factory, jobs, faults=None, membership=None):
    prints = {}
    for core in CORES:
        sim = ClusterSimulator(
            microbench_cluster(), jobs, policy_factory(),
            faults=faults,
            membership=(None if membership is None else MembershipPlan(
                initial_hosts=membership.initial_hosts,
                events=membership.events,
            )),
        )
        prints[core] = getattr(sim, core)().events.fingerprint()
    return prints


def _assert_all_equal(prints, label):
    assert prints["run_batched"] == prints["run"] == prints["run_reference"], (
        f"{label}: core fingerprints diverged: {prints}"
    )


class TestThreeCoreEquivalence:
    @given(seed=st.integers(0, 200), num_jobs=st.integers(4, 16))
    @settings(max_examples=8, deadline=None)
    def test_random_traces_with_faults_and_membership(self, seed, num_jobs):
        jobs = generate_trace(num_jobs=num_jobs, seed=seed)
        faults = random_sim_plan(seed=seed, horizon_s=4000.0)
        membership = _membership_plan()
        for name, factory in POLICIES.items():
            _assert_all_equal(
                _fingerprints(factory, jobs, faults=faults, membership=membership),
                f"seed={seed} policy={name}",
            )

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_clean_trace(self, name):
        jobs = generate_trace(num_jobs=20, seed=3)
        _assert_all_equal(_fingerprints(POLICIES[name], jobs), name)

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_diurnal_shape(self, name):
        jobs = diurnal_trace(num_jobs=30, seed=7, days=0.5)
        _assert_all_equal(_fingerprints(POLICIES[name], jobs), name)

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_heavy_tail_shape(self, name):
        jobs = heavy_tail_trace(num_jobs=16, seed=7)
        _assert_all_equal(_fingerprints(POLICIES[name], jobs), name)

    def test_fixed_fault_plan(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="slowdown", at_time=300.0, magnitude=2.0),
            FaultEvent(kind="node_preempt", at_time=600.0, magnitude=2.0),
            FaultEvent(kind="worker_crash", at_time=900.0),
            FaultEvent(kind="gpu_revoke", at_time=1100.0),
        ), seed=5)
        jobs = generate_trace(num_jobs=18, seed=9)
        for name, factory in POLICIES.items():
            _assert_all_equal(_fingerprints(factory, jobs, faults=plan), name)

    def test_max_time_cutoff(self):
        jobs = generate_trace(num_jobs=12, seed=4)
        for core in CORES:
            sims = {}
            for c in CORES:
                sim = ClusterSimulator(microbench_cluster(), jobs, EasyScalePolicy(True))
                sims[c] = getattr(sim, c)(max_time=900.0)
            assert sims["run_batched"].events.fingerprint() == \
                sims["run"].events.fingerprint() == \
                sims["run_reference"].events.fingerprint()


class TestBatchedResultParity:
    def test_full_result_surface_matches_heap(self):
        jobs = diurnal_trace(num_jobs=24, seed=1, days=0.5)
        heap = ClusterSimulator(microbench_cluster(), jobs, EasyScalePolicy(True)).run()
        batched = ClusterSimulator(
            microbench_cluster(), jobs, EasyScalePolicy(True)
        ).run_batched()
        assert batched.events.as_tuples() == heap.events.as_tuples()
        assert batched.jcts == heap.jcts
        assert batched.makespan == heap.makespan
        assert batched.allocation_timeline == heap.allocation_timeline

    def test_proposal_memo_shares_searches_across_jobs(self):
        # many same-class pending jobs (one size, one type preference):
        # the class-level memo must answer most Role-2 passes without a
        # fresh plan search
        jobs = generate_trace(
            num_jobs=30, seed=2, demand=[(8, 1.0)], type_weights={"v100": 1.0},
            mean_interarrival_s=30.0,
        )
        policy = EasyScalePolicy(True)
        ClusterSimulator(microbench_cluster(), jobs, policy).run_batched()
        assert policy.inter.proposal_memo_hits > policy.inter.proposal_memo_misses

    def test_memoized_proposals_restamp_job_id(self):
        jobs = generate_trace(num_jobs=30, seed=2)
        policy = EasyScalePolicy(True)
        result = ClusterSimulator(microbench_cluster(), jobs, policy).run_batched()
        granted = {g.job_id for g in policy.inter.grant_log}
        # more than one job received grants, so memo-shared proposals were
        # re-stamped rather than granted under the original asker's id
        assert len(granted) > 1
        assert all(any(r.job.job_id == j for r in result.jobs) for j in granted)
