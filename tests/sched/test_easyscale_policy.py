"""EasyScale scheduling policy: per-job agents and cluster filling."""

import pytest

from repro.hw import microbench_cluster
from repro.sched.easyscale_policy import EasyScalePolicy
from repro.sched.simulator import ClusterSimulator
from repro.sched.trace import TraceJob


def job(job_id, workload="bert", gpus=4, gtype="v100", arrival=0.0, work=1000.0):
    return TraceJob(
        job_id=job_id,
        workload=workload,
        arrival_time=arrival,
        requested_gpus=gpus,
        requested_type=gtype,
        total_work=work,
    )


def run_sim(jobs, policy):
    return ClusterSimulator(microbench_cluster(), jobs, policy).run()


class TestAgentSetup:
    def test_homo_policy_restricts_everyone(self):
        sim = ClusterSimulator(microbench_cluster(), [job("a")], EasyScalePolicy(False))
        result = sim.run()
        assert result.jobs[0].agent.companion.homogeneous_only

    def test_heter_policy_allows_heterogeneous_plans(self):
        sim = ClusterSimulator(
            microbench_cluster(), [job("a", workload="resnet50")], EasyScalePolicy(True)
        )
        result = sim.run()
        assert not result.jobs[0].agent.companion.homogeneous_only

    def test_conv_restriction_flag(self):
        policy = EasyScalePolicy(True, restrict_conv_heavy=True)
        sim = ClusterSimulator(
            microbench_cluster(),
            [job("conv", workload="vgg19"), job("gemm", workload="bert", arrival=1.0)],
            policy,
        )
        result = sim.run()
        agents = {r.job.job_id: r.agent for r in result.jobs}
        assert agents["conv"].companion.homogeneous_only
        assert not agents["gemm"].companion.homogeneous_only

    def test_max_p_matches_request(self):
        sim = ClusterSimulator(microbench_cluster(), [job("a", gpus=7)], EasyScalePolicy(False))
        result = sim.run()
        assert result.jobs[0].agent.companion.max_p == 7


class TestScheduling:
    def test_job_never_holds_more_than_max_p(self):
        result = run_sim([job("a", gpus=2, work=500.0)], EasyScalePolicy(False))
        for event in result.events.of_kind("scale_out"):
            pass
        # total granted at any time <= maxP
        peak = max(c for _, c in result.allocation_timeline)
        assert peak <= 2

    def test_two_jobs_share_cluster(self):
        jobs = [
            job("a", gpus=16, gtype="v100", work=16 * 3.0 * 60),
            job("b", gpus=16, gtype="v100", arrival=0.5, work=16 * 3.0 * 60),
        ]
        result = run_sim(jobs, EasyScalePolicy(False))
        assert len(result.completed) == 2
        # both ran concurrently at some point: peak allocation > 16
        peak = max(c for _, c in result.allocation_timeline)
        assert peak > 16

    def test_rates_follow_plans(self):
        result = run_sim([job("a", gpus=4)], EasyScalePolicy(False))
        rt = result.jobs[0]
        assert rt.status == "done"
        assert rt.completion_time is not None

    def test_policy_names(self):
        assert EasyScalePolicy(False).name == "easyscale-homo"
        assert EasyScalePolicy(True).name == "easyscale-heter"


class TestCapabilityScale:
    def test_scale_applies_to_new_companions(self):
        policy = EasyScalePolicy(True, capability_scale={"T4": 0.5})
        sim = ClusterSimulator(microbench_cluster(), [job("a")], policy)
        runtime = sim.runtimes[0]
        policy.on_job_arrival(sim, runtime)
        unscaled = job("b").capability
        scaled = runtime.agent.companion.capability
        assert scaled["t4"] == pytest.approx(unscaled["t4"] * 0.5)
        assert scaled["v100"] == pytest.approx(unscaled["v100"])

    def test_nonpositive_scale_rejected(self):
        with pytest.raises(ValueError):
            EasyScalePolicy(True, capability_scale={"t4": 0.0})

    def test_unknown_types_ignored(self):
        policy = EasyScalePolicy(True, capability_scale={"a100": 2.0})
        sim = ClusterSimulator(microbench_cluster(), [job("a")], policy)
        runtime = sim.runtimes[0]
        policy.on_job_arrival(sim, runtime)
        assert "a100" not in runtime.agent.companion.capability

    def test_simulation_completes_under_calibration(self):
        result = run_sim(
            [job("a", gpus=2, work=500.0)],
            EasyScalePolicy(True, capability_scale={"t4": 0.7, "p100": 0.9}),
        )
        assert len(result.completed) == 1
