"""Inter-job scheduler: greedy arbitration and serving reclaim."""

import pytest

from repro.sched.inter import Grant, InterJobScheduler
from repro.sched.intra import ResourceProposal
from repro.sched.perfmodel import Plan


def proposal(job, gtype, extra, current, proposed):
    return ResourceProposal(
        job_id=job,
        gtype=gtype,
        extra_gpus=extra,
        current_throughput=current,
        proposed_throughput=proposed,
        proposed_plan=Plan.build({gtype: (max(extra, 1), 1)}, max_p=max(extra, 1)),
    )


class TestArbitrate:
    def test_highest_speedup_per_gpu_first(self):
        inter = InterJobScheduler()
        grants = inter.arbitrate(
            [
                proposal("a", "v100", 1, 10.0, 12.0),  # +2/gpu
                proposal("b", "v100", 1, 10.0, 19.0),  # +9/gpu
            ],
            free={"v100": 1},
        )
        assert grants == [Grant("b", "v100", 1)]

    def test_tie_broken_by_more_gpus(self):
        inter = InterJobScheduler()
        grants = inter.arbitrate(
            [
                proposal("a", "v100", 1, 0.0, 5.0),  # 5/gpu
                proposal("b", "v100", 2, 0.0, 10.0),  # 5/gpu, bigger
            ],
            free={"v100": 3},
        )
        assert grants[0].job_id == "b"

    def test_one_grant_per_job_per_round(self):
        inter = InterJobScheduler()
        grants = inter.arbitrate(
            [
                proposal("a", "v100", 1, 0.0, 9.0),
                proposal("a", "v100", 2, 0.0, 17.0),
            ],
            free={"v100": 4},
        )
        assert len(grants) == 1

    def test_free_pool_respected(self):
        inter = InterJobScheduler()
        grants = inter.arbitrate(
            [
                proposal("a", "v100", 2, 0.0, 18.0),
                proposal("b", "v100", 2, 0.0, 17.0),
            ],
            free={"v100": 3},
        )
        # a takes 2, leaving 1: b's 2-GPU ask cannot be met
        assert grants == [Grant("a", "v100", 2)]

    def test_zero_speedup_skipped(self):
        inter = InterJobScheduler()
        assert inter.arbitrate([proposal("a", "v100", 1, 10.0, 10.0)], {"v100": 4}) == []

    def test_tied_proposals_granted_in_input_order_independent_way(self):
        # regression: exact speedup/size ties used to resolve by caller
        # iteration order, making the grant log (and every downstream
        # simulator event) depend on proposal collection order
        import itertools

        tied = [
            proposal("c", "v100", 1, 0.0, 5.0),
            proposal("a", "v100", 1, 0.0, 5.0),
            proposal("b", "v100", 1, 0.0, 5.0),
        ]
        outcomes = set()
        for perm in itertools.permutations(tied):
            grants = InterJobScheduler().arbitrate(list(perm), free={"v100": 2})
            outcomes.add(tuple(grants))
        assert outcomes == {(Grant("a", "v100", 1), Grant("b", "v100", 1))}

    def test_same_job_tie_broken_by_gtype(self):
        tied = [
            proposal("a", "t4", 1, 0.0, 5.0),
            proposal("a", "p100", 1, 0.0, 5.0),
        ]
        forward = InterJobScheduler().arbitrate(tied, free={"t4": 1, "p100": 1})
        backward = InterJobScheduler().arbitrate(tied[::-1], free={"t4": 1, "p100": 1})
        assert forward == backward == [Grant("a", "p100", 1)]

    def test_grant_log_accumulates(self):
        inter = InterJobScheduler()
        inter.arbitrate([proposal("a", "t4", 1, 0.0, 3.0)], {"t4": 1})
        inter.arbitrate([proposal("b", "t4", 1, 0.0, 3.0)], {"t4": 1})
        assert len(inter.grant_log) == 2


class TestReclaim:
    def test_takes_from_smallest_holder_first(self):
        holdings = {"a": {"v100": 1}, "b": {"v100": 5}}
        revocations = InterJobScheduler.reclaim({"v100": 2}, holdings)
        assert revocations[0] == Grant("a", "v100", -1)
        assert revocations[1] == Grant("b", "v100", -1)

    def test_respects_priorities(self):
        holdings = {"a": {"v100": 3}, "b": {"v100": 3}}
        revocations = InterJobScheduler.reclaim(
            {"v100": 2}, holdings, priorities={"a": 10.0, "b": 1.0}
        )
        assert revocations == [Grant("b", "v100", -2)]

    def test_zero_demand_noop(self):
        assert InterJobScheduler.reclaim({"v100": 0}, {"a": {"v100": 2}}) == []

    def test_partial_when_insufficient(self):
        revocations = InterJobScheduler.reclaim({"t4": 10}, {"a": {"t4": 3}})
        assert revocations == [Grant("a", "t4", -3)]
