"""Inter-job scheduler: greedy arbitration and serving reclaim."""

import pytest

from repro.sched.inter import Grant, InterJobScheduler
from repro.sched.intra import ResourceProposal
from repro.sched.perfmodel import Plan


def proposal(job, gtype, extra, current, proposed):
    return ResourceProposal(
        job_id=job,
        gtype=gtype,
        extra_gpus=extra,
        current_throughput=current,
        proposed_throughput=proposed,
        proposed_plan=Plan.build({gtype: (max(extra, 1), 1)}, max_p=max(extra, 1)),
    )


class TestArbitrate:
    def test_highest_speedup_per_gpu_first(self):
        inter = InterJobScheduler()
        grants = inter.arbitrate(
            [
                proposal("a", "v100", 1, 10.0, 12.0),  # +2/gpu
                proposal("b", "v100", 1, 10.0, 19.0),  # +9/gpu
            ],
            free={"v100": 1},
        )
        assert grants == [Grant("b", "v100", 1)]

    def test_tie_broken_by_more_gpus(self):
        inter = InterJobScheduler()
        grants = inter.arbitrate(
            [
                proposal("a", "v100", 1, 0.0, 5.0),  # 5/gpu
                proposal("b", "v100", 2, 0.0, 10.0),  # 5/gpu, bigger
            ],
            free={"v100": 3},
        )
        assert grants[0].job_id == "b"

    def test_one_grant_per_job_per_round(self):
        inter = InterJobScheduler()
        grants = inter.arbitrate(
            [
                proposal("a", "v100", 1, 0.0, 9.0),
                proposal("a", "v100", 2, 0.0, 17.0),
            ],
            free={"v100": 4},
        )
        assert len(grants) == 1

    def test_free_pool_respected(self):
        inter = InterJobScheduler()
        grants = inter.arbitrate(
            [
                proposal("a", "v100", 2, 0.0, 18.0),
                proposal("b", "v100", 2, 0.0, 17.0),
            ],
            free={"v100": 3},
        )
        # a takes 2, leaving 1: b's 2-GPU ask cannot be met
        assert grants == [Grant("a", "v100", 2)]

    def test_zero_speedup_skipped(self):
        inter = InterJobScheduler()
        assert inter.arbitrate([proposal("a", "v100", 1, 10.0, 10.0)], {"v100": 4}) == []

    def test_tied_proposals_granted_in_input_order_independent_way(self):
        # regression: exact speedup/size ties used to resolve by caller
        # iteration order, making the grant log (and every downstream
        # simulator event) depend on proposal collection order
        import itertools

        tied = [
            proposal("c", "v100", 1, 0.0, 5.0),
            proposal("a", "v100", 1, 0.0, 5.0),
            proposal("b", "v100", 1, 0.0, 5.0),
        ]
        outcomes = set()
        for perm in itertools.permutations(tied):
            grants = InterJobScheduler().arbitrate(list(perm), free={"v100": 2})
            outcomes.add(tuple(grants))
        assert outcomes == {(Grant("a", "v100", 1), Grant("b", "v100", 1))}

    def test_same_job_tie_broken_by_gtype(self):
        tied = [
            proposal("a", "t4", 1, 0.0, 5.0),
            proposal("a", "p100", 1, 0.0, 5.0),
        ]
        forward = InterJobScheduler().arbitrate(tied, free={"t4": 1, "p100": 1})
        backward = InterJobScheduler().arbitrate(tied[::-1], free={"t4": 1, "p100": 1})
        assert forward == backward == [Grant("a", "p100", 1)]

    def test_grant_log_accumulates(self):
        inter = InterJobScheduler()
        inter.arbitrate([proposal("a", "t4", 1, 0.0, 3.0)], {"t4": 1})
        inter.arbitrate([proposal("b", "t4", 1, 0.0, 3.0)], {"t4": 1})
        assert len(inter.grant_log) == 2


class TestReclaim:
    def test_takes_from_smallest_holder_first(self):
        holdings = {"a": {"v100": 1}, "b": {"v100": 5}}
        revocations = InterJobScheduler.reclaim({"v100": 2}, holdings)
        assert revocations[0] == Grant("a", "v100", -1)
        assert revocations[1] == Grant("b", "v100", -1)

    def test_respects_priorities(self):
        holdings = {"a": {"v100": 3}, "b": {"v100": 3}}
        revocations = InterJobScheduler.reclaim(
            {"v100": 2}, holdings, priorities={"a": 10.0, "b": 1.0}
        )
        assert revocations == [Grant("b", "v100", -2)]

    def test_zero_demand_noop(self):
        assert InterJobScheduler.reclaim({"v100": 0}, {"a": {"v100": 2}}) == []

    def test_partial_when_insufficient(self):
        revocations = InterJobScheduler.reclaim({"t4": 10}, {"a": {"t4": 3}})
        assert revocations == [Grant("a", "t4", -3)]

    def test_priority_ties_break_by_job_id(self):
        # equal holdings => equal default priority: the job id must close
        # the total order, never the dict insertion order
        holdings = {"z": {"v100": 2}, "a": {"v100": 2}}
        revocations = InterJobScheduler.reclaim({"v100": 2}, holdings)
        assert revocations == [Grant("a", "v100", -2)]

    def test_deterministic_over_insertion_orders(self):
        import itertools
        import random

        jobs = {
            "a": {"v100": 2, "t4": 1},
            "b": {"v100": 2},
            "c": {"v100": 1, "t4": 2},
            "d": {"t4": 3},
        }
        demand = {"t4": 3, "v100": 3}
        baseline = InterJobScheduler.reclaim(demand, jobs)
        rng = random.Random(0)
        for _ in range(20):
            job_order = list(jobs)
            rng.shuffle(job_order)
            shuffled = {}
            for job in job_order:
                types = list(jobs[job])
                rng.shuffle(types)
                shuffled[job] = {t: jobs[job][t] for t in types}
            demand_order = list(demand)
            rng.shuffle(demand_order)
            shuffled_demand = {t: demand[t] for t in demand_order}
            assert InterJobScheduler.reclaim(shuffled_demand, shuffled) == baseline
        # sanity: the permutations actually cover distinct insertion orders
        assert len(set(itertools.permutations(jobs))) == 24

    def test_reclaim_records_flightrec_events(self):
        from repro.obs import flightrec

        rec = flightrec.configure()
        try:
            InterJobScheduler.reclaim({"v100": 2}, {"a": {"v100": 1}, "b": {"v100": 5}})
            events = [e for e in rec.events if e["kind"] == "sched.reclaim"]
            assert [(e["job"], e["gtype"], e["gpus"]) for e in events] == [
                ("a", "v100", 1),
                ("b", "v100", 1),
            ]
        finally:
            flightrec.reset()
