"""Intra-job scheduler: Roles 1-3 and plan concretization."""

import pytest

from repro.sched.companion import CompanionModule
from repro.sched.intra import IntraJobScheduler, plan_to_assignment
from repro.sched.perfmodel import Plan

CAP = {"v100": 9.0, "p100": 4.0, "t4": 3.0}


def make_sched(max_p=4, **kw):
    return IntraJobScheduler("job-x", CompanionModule(max_p=max_p, capability=CAP), **kw)


class TestRole1:
    def test_applies_best_plan(self):
        sched = make_sched()
        scored = sched.apply_best_plan({"v100": 2})
        assert scored is not None
        assert sched.current_plan == scored.plan
        assert sched.current_throughput() == pytest.approx(scored.throughput)

    def test_no_resources_no_plan(self):
        sched = make_sched()
        assert sched.apply_best_plan({}) is None
        assert sched.current_assignment() is None
        assert sched.current_throughput() == 0.0


class TestRole2:
    def test_proposals_require_speedup(self):
        sched = make_sched()
        sched.apply_best_plan({"v100": 4})  # already at maxP on fast GPUs
        proposals = sched.propose({"v100": 4}, {"t4": 4})
        # adding T4s to a saturated 4-EST V100 plan cannot help
        assert proposals == []

    def test_proposals_sorted_by_speedup_per_gpu(self):
        sched = make_sched(max_p=8)
        sched.apply_best_plan({"v100": 1})
        proposals = sched.propose({"v100": 1}, {"v100": 4, "t4": 4})
        assert proposals
        per_gpu = [p.speedup_per_gpu for p in proposals]
        assert per_gpu == sorted(per_gpu, reverse=True)

    def test_pending_job_proposes_from_zero(self):
        sched = make_sched()
        proposals = sched.propose({}, {"v100": 2})
        assert proposals
        assert all(p.current_throughput == 0.0 for p in proposals)
        assert all(p.speedup == float("inf") for p in proposals)

    def test_chunks_capped_by_free(self):
        sched = make_sched(max_p=8)
        proposals = sched.propose({}, {"v100": 1})
        assert all(p.extra_gpus <= 1 for p in proposals)

    def test_top_k(self):
        sched = make_sched(max_p=8, top_k=2)
        assert len(sched.propose({}, {"v100": 8, "p100": 8, "t4": 8})) <= 2

    def test_chunk_order_invariance(self):
        # regression: propose() breaks the chunk loop at the first chunk
        # exceeding the free pool; an unsorted menu used to silently skip
        # the smaller chunks listed after it
        shuffled = make_sched(max_p=8, scaleout_chunks=(8, 1, 4, 2))
        ordered = make_sched(max_p=8, scaleout_chunks=(1, 2, 4, 8))
        free = {"v100": 2}  # 8 and 4 don't fit; 1 and 2 must still be tried
        assert shuffled.propose({}, free) == ordered.propose({}, free)
        assert shuffled.propose({}, free)  # and they are non-empty here

    def test_chunks_normalized_on_assignment(self):
        # ablation harnesses assign the attribute directly; the setter
        # must normalize that path too
        sched = make_sched()
        sched.scaleout_chunks = [4, 4, 2, 1]
        assert sched.scaleout_chunks == (1, 2, 4)

    def test_chunk_validation(self):
        with pytest.raises(ValueError):
            make_sched(scaleout_chunks=())
        with pytest.raises(ValueError):
            make_sched(scaleout_chunks=(2, 0))


class TestRole3:
    def test_on_decision_replans(self):
        sched = make_sched()
        sched.apply_best_plan({"v100": 1})
        assignment = sched.on_decision({"v100": 2})
        assert assignment is not None
        assert assignment.num_workers == 2

    def test_slowdown_fallback(self):
        sched = make_sched()
        sched.apply_best_plan({"v100": 2})
        good_plan = sched.current_plan
        sched.apply_best_plan({"v100": 2, "t4": 2})
        assert sched.on_slowdown(measured=1.0, estimated=20.0)
        assert sched.current_plan == good_plan

    def test_no_fallback_when_measured_ok(self):
        sched = make_sched()
        sched.apply_best_plan({"v100": 1})
        sched.apply_best_plan({"v100": 2})
        assert not sched.on_slowdown(measured=100.0, estimated=18.0)

    def test_no_revert_to_plan_exceeding_ownership(self):
        # regression: after a revocation shrank the job from 4 to 2 GPUs,
        # a slowdown report must not revert to the old 4-GPU plan — the
        # job no longer owns the hardware that plan assigns ESTs to
        sched = make_sched()
        sched.apply_best_plan({"v100": 4})
        sched.apply_best_plan({"v100": 2})
        assert not sched.on_slowdown(measured=0.1, estimated=18.0, owned={"v100": 2})
        assert sched.current_plan is not None
        assert sched.current_plan.gpus_of("v100") <= 2

    def test_feasible_previous_plan_still_reverts(self):
        # ownership unchanged: the classic fallback must keep working
        # through the validated path
        sched = make_sched()
        sched.apply_best_plan({"v100": 2})
        good_plan = sched.current_plan
        sched.apply_best_plan({"v100": 2, "t4": 2})
        assert sched.on_slowdown(
            measured=1.0, estimated=20.0, owned={"v100": 2, "t4": 2}
        )
        assert sched.current_plan == good_plan


class TestPlanToAssignment:
    def test_covers_all_ests(self):
        plan = Plan.build({"v100": (2, 2)}, max_p=4)
        assignment = plan_to_assignment(plan)
        assert assignment.num_ests == 4
        assert assignment.num_workers == 2
        assert [g.name for g in assignment.gpus] == ["V100", "V100"]

    def test_overprovision_drops_empty_workers(self):
        # 3 GPUs x 2 ESTs = capacity 6, maxP 4: third GPU hosts nothing? no
        # — cursor: GPU0 gets [0,1], GPU1 [2,3], GPU2 nothing -> dropped
        plan = Plan.build({"v100": (3, 2)}, max_p=4)
        assignment = plan_to_assignment(plan)
        assert assignment.num_workers == 2
        assert assignment.num_ests == 4

    def test_heterogeneous_order(self):
        plan = Plan.build({"p100": (1, 1), "v100": (1, 3)}, max_p=4)
        assignment = plan_to_assignment(plan)
        names = [g.name for g in assignment.gpus]
        assert sorted(names) == ["P100", "V100"]
        assert assignment.num_ests == 4


class TestCalibration:
    def test_apply_calibration_updates_known_types(self):
        sched = make_sched()
        previous = sched.apply_calibration({"V100": 6.0, "t4": 1.5})
        assert previous == CAP  # superseded table returned for fallback
        assert sched.companion.capability["v100"] == pytest.approx(6.0)
        assert sched.companion.capability["t4"] == pytest.approx(1.5)
        assert sched.companion.capability["p100"] == pytest.approx(4.0)

    def test_unknown_and_nonpositive_rates_ignored(self):
        sched = make_sched()
        sched.apply_calibration({"a100": 50.0, "v100": 0.0, "t4": -1.0})
        assert "a100" not in sched.companion.capability
        assert sched.companion.capability["v100"] == pytest.approx(CAP["v100"])
        assert sched.companion.capability["t4"] == pytest.approx(CAP["t4"])

    def test_calibration_changes_the_chosen_plan(self):
        # static table: v100 at 10, t4 at 5 -> proportional split over
        # {1 v100, 1 t4} for maxP=6 is (4, 2) with f = 0.4
        capability = {"v100": 10.0, "t4": 5.0}
        sched = IntraJobScheduler(
            "job-c", CompanionModule(max_p=6, capability=capability)
        )
        static_best = sched.apply_best_plan({"v100": 1, "t4": 1})
        assert static_best.plan.ests_per_gpu("t4") == 2

        # measured truth: the T4 actually runs at 2.5 mb/s; recalibrating
        # shifts load to the V100 (5, 1), halving the overload factor
        from repro.sched.perfmodel import overload_factor

        truth = {"v100": 10.0, "t4": 2.5}
        f_static_under_truth = overload_factor(static_best.plan, truth)
        sched.apply_calibration(truth)
        calibrated_best = sched.apply_best_plan({"v100": 1, "t4": 1})
        assert calibrated_best.plan.ests_per_gpu("t4") == 1
        f_calibrated_under_truth = overload_factor(calibrated_best.plan, truth)
        assert f_calibrated_under_truth < f_static_under_truth
