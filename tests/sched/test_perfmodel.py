"""Eq. (1a)-(1d): hand-computed cases and model invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.perfmodel import (
    Plan,
    estimated_throughput,
    observed_waste,
    overload_factor,
    waste,
)

CAP = {"v100": 8.0, "p100": 4.0, "t4": 2.0}


class TestPlanConstruction:
    def test_capacity_and_totals(self):
        plan = Plan.build({"v100": (2, 3), "t4": (1, 2)}, max_p=8)
        assert plan.n_est_capacity == 8
        assert plan.total_gpus == 3
        assert plan.gpus_of("v100") == 2 and plan.ests_per_gpu("t4") == 2
        assert plan.gpus_of("p100") == 0

    def test_feasibility(self):
        assert Plan.build({"v100": (2, 2)}, max_p=4).is_feasible
        assert not Plan.build({"v100": (1, 2)}, max_p=4).is_feasible

    def test_homogeneity(self):
        assert Plan.build({"v100": (2, 2)}, max_p=4).is_homogeneous
        assert not Plan.build({"v100": (1, 2), "t4": (1, 2)}, max_p=4).is_homogeneous

    def test_zero_count_entries_dropped(self):
        plan = Plan.build({"v100": (2, 2), "t4": (0, 0)}, max_p=4)
        assert plan.alloc == (("v100", 2, 2),)

    def test_validation(self):
        with pytest.raises(ValueError):
            Plan.build({}, max_p=4)
        with pytest.raises(ValueError):
            Plan.build({"v100": (1, 0)}, max_p=1)
        with pytest.raises(ValueError):
            Plan.build({"v100": (1, 1)}, max_p=0)


class TestHandComputedCases:
    def test_balanced_homogeneous_zero_waste(self):
        # 2 V100 x 2 ESTs, maxP 4: f = 2/8; waste = 2*(8 - 2/(2/8)) + 0 = 0
        plan = Plan.build({"v100": (2, 2)}, max_p=4)
        assert overload_factor(plan, CAP) == pytest.approx(0.25)
        assert waste(plan, CAP) == pytest.approx(0.0)
        assert estimated_throughput(plan, CAP) == pytest.approx(16.0)

    def test_imbalanced_heterogeneous(self):
        # 1 V100 x 2 ESTs + 1 T4 x 2 ESTs, maxP 4
        # f = max(2/8, 2/2) = 1.0 (the T4 is the bottleneck)
        # waste = 1*(8 - 2/1) + 1*(2 - 2/1) + 0 = 6
        # throughput = (8 + 2) - 6 = 4
        plan = Plan.build({"v100": (1, 2), "t4": (1, 2)}, max_p=4)
        assert overload_factor(plan, CAP) == pytest.approx(1.0)
        assert waste(plan, CAP) == pytest.approx(6.0)
        assert estimated_throughput(plan, CAP) == pytest.approx(4.0)

    def test_proportional_assignment_minimizes_waste(self):
        # 1 V100 x 4 ESTs + 1 T4 x 1 EST, maxP 5: f = max(0.5, 0.5) = 0.5
        # waste = (8 - 8) + (2 - 2) + 0 = 0 -> throughput = 10
        plan = Plan.build({"v100": (1, 4), "t4": (1, 1)}, max_p=5)
        assert waste(plan, CAP) == pytest.approx(0.0)
        assert estimated_throughput(plan, CAP) == pytest.approx(10.0)

    def test_overprovision_term(self):
        # 2 V100 x 2 ESTs but maxP 3: capacity 4 > 3
        # f = 0.25; waste = 0 + (4-3)/0.25 = 4 -> throughput = 12
        plan = Plan.build({"v100": (2, 2)}, max_p=3)
        assert waste(plan, CAP) == pytest.approx(4.0)
        assert estimated_throughput(plan, CAP) == pytest.approx(12.0)

    def test_infeasible_plan_rejected(self):
        plan = Plan.build({"t4": (1, 1)}, max_p=4)
        with pytest.raises(ValueError):
            waste(plan, CAP)

    def test_float_roundoff_waste_clamps_to_exact_zero(self):
        # A perfectly balanced plan has waste == 0 in real arithmetic, but
        # ``C - A/(A/C)`` can land a few ulps below zero when A/C doesn't
        # round-trip: with C = 0.007, A = 5 the raw sum is ~-1.7e-18.
        # The model must report exactly 0.0, not a negative number that
        # would make throughput exceed the aggregate capability.
        capability = {"v100": 0.007}
        plan = Plan.build({"v100": (2, 5)}, max_p=10)
        f = overload_factor(plan, capability)
        raw = 2 * (capability["v100"] - 5 / f)
        assert raw < 0  # the round-off this regression test exists for
        assert waste(plan, capability) == 0.0
        assert estimated_throughput(plan, capability) == pytest.approx(0.014)

    def test_large_negative_waste_not_masked(self):
        # the clamp is for ulp-scale noise only; a genuinely negative
        # result (an observed step faster than the capability allows,
        # i.e. a miscalibrated table) must still surface
        plan = Plan.build({"v100": (1, 2)}, max_p=2)
        assert observed_waste(plan, CAP, f_observed=0.1) < -1e-3


class TestObservedWaste:
    def test_matches_model_at_predicted_overload(self):
        plan = Plan.build({"v100": (1, 2), "t4": (1, 2)}, max_p=4)
        f = overload_factor(plan, CAP)
        assert observed_waste(plan, CAP, f) == pytest.approx(waste(plan, CAP))

    def test_slower_execution_strands_more_capability(self):
        plan = Plan.build({"v100": (2, 2)}, max_p=4)
        f = overload_factor(plan, CAP)
        assert observed_waste(plan, CAP, f) == pytest.approx(0.0)
        # running 2x slower than predicted wastes half the capability
        assert observed_waste(plan, CAP, 2 * f) == pytest.approx(8.0)

    def test_rejects_nonpositive_factor(self):
        plan = Plan.build({"v100": (1, 1)}, max_p=1)
        with pytest.raises(ValueError):
            observed_waste(plan, CAP, 0.0)


class TestInvariants:
    @given(
        n_v=st.integers(0, 6),
        a_v=st.integers(1, 8),
        n_t=st.integers(0, 6),
        a_t=st.integers(1, 8),
        max_p=st.integers(1, 30),
    )
    @settings(max_examples=80, deadline=None)
    def test_throughput_bounded_by_aggregate(self, n_v, a_v, n_t, a_t, max_p):
        if n_v + n_t == 0:
            return
        plan = Plan.build({"v100": (n_v, a_v), "t4": (n_t, a_t)}, max_p=max_p)
        if not plan.is_feasible:
            return
        aggregate = n_v * CAP["v100"] + n_t * CAP["t4"]
        tp = estimated_throughput(plan, CAP)
        assert tp <= aggregate + 1e-9
        assert waste(plan, CAP) >= -1e-9

    def test_invalid_capability(self):
        plan = Plan.build({"v100": (1, 1)}, max_p=1)
        with pytest.raises(ValueError):
            overload_factor(plan, {"v100": 0.0})
