"""Shared fixtures and helpers for the EasyScale reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import get_workload
from repro.obs import flightrec
from repro.optim import SGD
from repro.utils.rng import RNGBundle


@pytest.fixture(autouse=True)
def _flightrec_sandbox(tmp_path):
    """Point postmortem bundles at a tmpdir and reset the ring per test.

    The flight recorder is always on, so fault-injection tests would
    otherwise litter the repository root with ``postmortem-*.json``.
    """
    flightrec.configure(directory=str(tmp_path))
    yield
    flightrec.reset()


@pytest.fixture
def rng() -> RNGBundle:
    return RNGBundle(1234)


@pytest.fixture
def resnet18_spec():
    return get_workload("resnet18")


@pytest.fixture
def small_image_dataset(resnet18_spec):
    return resnet18_spec.build_dataset(128, seed=7)


def sgd_factory(lr: float = 0.05, momentum: float = 0.9):
    """Factory-of-factories used across trainer tests."""

    def make(model):
        return SGD(model.named_parameters(), lr=lr, momentum=momentum)

    return make


def numeric_grad(fn, array: np.ndarray, index, eps: float = 1e-3) -> float:
    """Central-difference derivative of scalar ``fn()`` w.r.t. array[index]."""
    original = float(array[index])
    array[index] = original + eps
    hi = fn()
    array[index] = original - eps
    lo = fn()
    array[index] = original
    return (hi - lo) / (2 * eps)
