"""CLI: ``membership gen``/``membership replay`` and ``train --hosts``.

Mirrors ``tests/faults/test_cli_faults.py`` — the exit-code contract is
shared: 0 success, 2 missing/malformed input, 4 divergent audits.
"""

import json

import pytest

from repro.cli import main
from repro.membership import HostEvent, HostSpec, MembershipPlan


@pytest.fixture
def small_plan(tmp_path):
    path = tmp_path / "plan.json"
    MembershipPlan(
        initial_hosts=(HostSpec("v0", "v100", 1), HostSpec("v1", "v100", 1)),
        events=(HostEvent(kind="drain", host="v1", at_step=2),),
        seed=1,
    ).save(path)
    return str(path)


class TestGen:
    def test_gen_writes_a_loadable_plan(self, tmp_path, capsys):
        out = str(tmp_path / "plan.json")
        assert main(["membership", "gen", "--seed", "3", "--steps", "10",
                     "--out", out]) == 0
        plan = MembershipPlan.load(out)
        assert plan.seed == 3 and len(plan) >= 1
        assert "membership plan written" in capsys.readouterr().out

    def test_gen_is_deterministic(self, tmp_path):
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        main(["membership", "gen", "--seed", "9", "--out", a])
        main(["membership", "gen", "--seed", "9", "--out", b])
        assert MembershipPlan.load(a) == MembershipPlan.load(b)

    def test_gen_rolling_emits_drain_waves(self, tmp_path, capsys):
        out = str(tmp_path / "roll.json")
        assert main(["membership", "gen", "--rolling", "4", "--out", out]) == 0
        plan = MembershipPlan.load(out)
        assert len(plan.initial_hosts) == 4
        assert [e.kind for e in plan.events] == ["drain"] * 3
        assert plan.max_unavailable == 1

    def test_gen_rolling_needs_two_hosts(self, capsys):
        assert main(["membership", "gen", "--rolling", "1"]) == 2
        assert "at least 2 hosts" in capsys.readouterr().err


class TestReplay:
    REPLAY_BASE = ["membership", "replay", "--workload", "resnet18",
                   "--ests", "2", "--samples", "32", "--batch-size", "4",
                   "--steps", "8", "--determinism", "D1"]

    def test_replay_bitwise_match_exits_zero(self, small_plan, capsys):
        assert main(self.REPLAY_BASE + ["--plan", small_plan]) == 0
        out = capsys.readouterr().out
        assert "BITWISE-IDENTICAL" in out
        assert "no divergence" in out
        assert "drain(s)" in out

    def test_replay_writes_audit_trails(self, small_plan, tmp_path, capsys):
        prefix = str(tmp_path / "aud")
        assert main(self.REPLAY_BASE + ["--plan", small_plan,
                                        "--audit", prefix]) == 0
        for leg in ("ref", "member"):
            with open(f"{prefix}.{leg}.jsonl", encoding="utf-8") as fh:
                assert fh.read().strip()

    def test_replay_divergence_exits_four(self, tmp_path, capsys):
        # plain D1 on a heterogeneous roster: dropping the T4 host moves
        # its ESTs onto the V100's kernel dialect, so the run must
        # diverge -- and the CLI must say so with exit code 4
        path = tmp_path / "het.json"
        MembershipPlan(
            initial_hosts=(HostSpec("v0", "v100", 1),
                           HostSpec("t0", "t4", 1)),
            events=(HostEvent(kind="drain", host="t0", at_step=2),),
        ).save(path)
        assert main(self.REPLAY_BASE + ["--plan", str(path)]) == 4
        assert "DIVERGED" in capsys.readouterr().out

    def test_replay_missing_plan_exits_two(self, tmp_path, capsys):
        assert main(["membership", "replay", "--plan",
                     str(tmp_path / "nope.json")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_replay_malformed_plan_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "version": 1,
            "initial_hosts": [{"host_id": "v0", "gtype": "v100", "slots": 1}],
            "events": [{"kind": "vaporize", "host": "v0", "at_step": 1}],
        }))
        assert main(["membership", "replay", "--plan", str(path)]) == 2
        err = capsys.readouterr().err
        assert "events[0]" in err and "vaporize" in err


class TestTrainWithHosts:
    def test_train_hosts_verifies_bitwise(self, small_plan, capsys):
        code = main([
            "train", "resnet18", "--ests", "2", "--samples", "32",
            "--batch-size", "4", "--steps-per-stage", "8",
            "--schedule", "2xV100", "--hosts", small_plan, "--verify",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "survived the plan" in out
        assert "IDENTICAL" in out
        assert "drain(s)" in out

    def test_train_missing_plan_exits_two(self, tmp_path, capsys):
        code = main(["train", "resnet18", "--hosts",
                     str(tmp_path / "nope.json")])
        assert code == 2
        assert "no such file" in capsys.readouterr().err
