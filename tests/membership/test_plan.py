"""MembershipPlan: validation, JSON round trip, canned/seeded generators.

Also pins the shared eager kind validator (``validate_event_kinds``) for
*both* plan families: a malformed ``FaultPlan`` or ``MembershipPlan``
JSON must fail at load time with the source path and the offending event
index in the message, not deep inside a replay.
"""

import json

import pytest

from repro.faults.schedule import FAULT_KINDS, FaultPlan, validate_event_kinds
from repro.membership.plan import (
    MEMBERSHIP_KINDS,
    HostEvent,
    HostSpec,
    MembershipPlan,
    random_membership_plan,
    rolling_upgrade_plan,
)

ROSTER = (
    HostSpec("v100-host0", "v100", 1),
    HostSpec("v100-host1", "v100", 1),
    HostSpec("t4-host0", "t4", 1),
    HostSpec("t4-host1", "t4", 1),
)


class TestHostSpec:
    def test_gtype_lowered(self):
        assert HostSpec("h", "V100", 2).gtype == "v100"

    @pytest.mark.parametrize("bad", [0, -1])
    def test_slots_must_be_positive(self, bad):
        with pytest.raises(ValueError, match="slots"):
            HostSpec("h", "v100", bad)

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError, match="host_id"):
            HostSpec("", "v100")


class TestHostEvent:
    def test_exactly_one_trigger(self):
        with pytest.raises(ValueError, match="exactly one"):
            HostEvent(kind="drain", host="h", at_step=1, at_time=1.0)
        with pytest.raises(ValueError, match="exactly one"):
            HostEvent(kind="drain", host="h")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown membership kind"):
            HostEvent(kind="explode", host="h", at_step=1)

    def test_announce_needs_gtype(self):
        with pytest.raises(ValueError, match="needs a gtype"):
            HostEvent(kind="announce", host="h", at_step=1)

    @pytest.mark.parametrize("kind", ["blacklist", "reclaim_notice"])
    def test_expiry_kinds_need_positive_magnitude(self, kind):
        with pytest.raises(ValueError, match="positive magnitude"):
            HostEvent(kind=kind, host="h", at_step=1)

    def test_state_round_trip(self):
        event = HostEvent(kind="announce", host="h", at_step=3,
                          gtype="T4", slots=2, magnitude=30.0)
        assert HostEvent.from_state(event.to_state()) == event


class TestPlanValidation:
    def test_needs_initial_hosts(self):
        with pytest.raises(ValueError, match="at least one initial host"):
            MembershipPlan(initial_hosts=())

    def test_duplicate_initial_hosts_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MembershipPlan(initial_hosts=(HostSpec("h", "v100"),
                                          HostSpec("h", "t4")))

    def test_events_must_be_trigger_ordered(self):
        with pytest.raises(ValueError, match="ordered"):
            MembershipPlan(
                initial_hosts=ROSTER,
                events=(HostEvent(kind="drain", host="v100-host0", at_step=5),
                        HostEvent(kind="drain", host="v100-host1", at_step=2)),
            )

    def test_event_for_unknown_host_rejected(self):
        with pytest.raises(ValueError, match="never announced"):
            MembershipPlan(
                initial_hosts=ROSTER,
                events=(HostEvent(kind="drain", host="ghost", at_step=1),),
            )

    def test_announced_host_may_receive_later_events(self):
        plan = MembershipPlan(
            initial_hosts=ROSTER,
            events=(
                HostEvent(kind="announce", host="new", at_step=1, gtype="t4"),
                HostEvent(kind="drain", host="new", at_step=5),
            ),
        )
        assert len(plan) == 2

    def test_reannounce_of_existing_host_rejected(self):
        with pytest.raises(ValueError, match="already exists"):
            MembershipPlan(
                initial_hosts=ROSTER,
                events=(HostEvent(kind="announce", host="t4-host0",
                                  at_step=1, gtype="t4"),),
            )

    def test_max_unavailable_must_be_positive(self):
        with pytest.raises(ValueError, match="max_unavailable"):
            MembershipPlan(initial_hosts=ROSTER, max_unavailable=0)

    def test_host_spec_lookup(self):
        plan = MembershipPlan(
            initial_hosts=ROSTER,
            events=(HostEvent(kind="announce", host="new", at_step=2,
                              gtype="t4", slots=2),),
        )
        assert plan.host_spec("t4-host0") == ROSTER[2]
        assert plan.host_spec("new") == HostSpec("new", "t4", 2)
        assert plan.host_spec("ghost") is None


class TestJsonRoundTrip:
    def _plan(self):
        return MembershipPlan(
            initial_hosts=ROSTER,
            events=(
                HostEvent(kind="drain", host="v100-host1", at_step=2),
                HostEvent(kind="blacklist", host="t4-host0", at_step=4,
                          magnitude=30.0),
                HostEvent(kind="announce", host="spot-0", at_step=6,
                          gtype="t4", slots=1, magnitude=10.0),
            ),
            seed=11, note="round trip", max_unavailable=2,
        )

    def test_round_trip_is_exact(self):
        plan = self._plan()
        assert MembershipPlan.from_json(plan.to_json()) == plan

    def test_save_load(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = self._plan()
        plan.save(path)
        assert MembershipPlan.load(path) == plan

    def test_version_check(self):
        payload = json.loads(self._plan().to_json())
        payload["version"] = 99
        with pytest.raises(ValueError, match="version 99"):
            MembershipPlan.from_json(json.dumps(payload))

    def test_missing_initial_hosts(self):
        with pytest.raises(ValueError, match="initial_hosts"):
            MembershipPlan.from_json(json.dumps({"events": []}))


class TestEagerKindValidation:
    """Satellite: the shared validator names the source and event index."""

    def test_membership_unknown_kind_names_path_and_index(self, tmp_path):
        path = tmp_path / "bad_membership.json"
        payload = json.loads(MembershipPlan(initial_hosts=ROSTER).to_json())
        payload["events"] = [
            {"kind": "drain", "host": "t4-host0", "at_step": 1},
            {"kind": "vaporize", "host": "t4-host1", "at_step": 2},
        ]
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError) as err:
            MembershipPlan.load(path)
        message = str(err.value)
        assert str(path) in message
        assert "events[1]" in message
        assert "'vaporize'" in message

    def test_fault_unknown_kind_names_path_and_index(self, tmp_path):
        path = tmp_path / "bad_faults.json"
        path.write_text(json.dumps({
            "seed": 0,
            "events": [{"kind": "meteor_strike", "at_step": 3}],
        }))
        with pytest.raises(ValueError) as err:
            FaultPlan.load(path)
        message = str(err.value)
        assert str(path) in message
        assert "events[0]" in message
        assert "'meteor_strike'" in message

    def test_non_object_event_entry_rejected(self):
        with pytest.raises(ValueError, match=r"events\[0\].*JSON object"):
            validate_event_kinds(["drain"], MEMBERSHIP_KINDS, source="plan")

    def test_validator_accepts_all_known_kinds(self):
        events = [{"kind": k} for k in FAULT_KINDS]
        validate_event_kinds(events, FAULT_KINDS, source="plan")  # no raise


class TestRollingUpgradePlan:
    def test_drains_all_but_keep_in_roster_order(self):
        plan = rolling_upgrade_plan(ROSTER, start_step=2, keep=1)
        assert [e.host for e in plan.events] == [
            "v100-host0", "v100-host1", "t4-host0"
        ]
        assert all(e.kind == "drain" and e.at_step == 2 for e in plan.events)
        assert plan.max_unavailable == 1

    def test_keep_must_leave_work_to_do(self):
        with pytest.raises(ValueError, match="nothing to drain"):
            rolling_upgrade_plan(ROSTER[:1], keep=1)
        with pytest.raises(ValueError, match="at least one host"):
            rolling_upgrade_plan(ROSTER, keep=0)


class TestRandomMembershipPlan:
    @pytest.mark.parametrize("seed", range(20))
    def test_seeded_plans_are_valid_and_round_trip(self, seed):
        plan = random_membership_plan(seed, horizon_steps=12)
        assert plan.seed == seed
        assert 1 <= len(plan) <= 4
        assert all(1 <= e.at_step <= 11 for e in plan.events)
        assert MembershipPlan.from_json(plan.to_json()) == plan

    def test_deterministic_in_seed(self):
        assert random_membership_plan(5, 12) == random_membership_plan(5, 12)
        assert random_membership_plan(5, 12) != random_membership_plan(6, 12)

    def test_removals_keep_a_roster_survivor(self):
        from repro.membership.plan import REMOVAL_KINDS

        for seed in range(50):
            plan = random_membership_plan(seed, horizon_steps=12)
            removed = {e.host for e in plan.events if e.kind in REMOVAL_KINDS}
            roster = {s.host_id for s in plan.initial_hosts}
            assert roster - removed, f"seed {seed} removed the whole roster"

    def test_horizon_too_small_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            random_membership_plan(0, horizon_steps=1)
