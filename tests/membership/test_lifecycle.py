"""Host lifecycle state machine: validated transitions, registry."""

import pytest

from repro.membership.lifecycle import (
    ACTIVE,
    BLACKLISTED,
    CANDIDATE,
    DRAINING,
    HOST_STATES,
    REMOVED,
    TRANSITIONS,
    WARMING,
    Host,
    HostRegistry,
    InvalidTransitionError,
)


class TestTransitionGraph:
    def test_every_state_has_an_entry(self):
        assert set(TRANSITIONS) == set(HOST_STATES)

    def test_removed_is_terminal(self):
        assert TRANSITIONS[REMOVED] == ()

    def test_draining_only_removes(self):
        assert TRANSITIONS[DRAINING] == (REMOVED,)


class TestHost:
    def test_gtype_lowered_and_slots_validated(self):
        assert Host("h", "V100", 2).gtype == "v100"
        with pytest.raises(ValueError, match="slots"):
            Host("h", "v100", 0)

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError, match="unknown state"):
            Host("h", "v100", state="limbo")

    def test_serving_states(self):
        assert not Host("h", "v100", state=CANDIDATE).serving
        assert not Host("h", "v100", state=WARMING).serving
        assert Host("h", "v100", state=ACTIVE).serving
        assert Host("h", "v100", state=DRAINING).serving
        assert not Host("h", "v100", state=BLACKLISTED).serving
        assert not Host("h", "v100", state=REMOVED).serving


class TestRegistry:
    def _registry(self):
        reg = HostRegistry()
        reg.add(Host("a", "v100", 2, state=ACTIVE))
        reg.add(Host("b", "t4", 1, state=ACTIVE))
        reg.add(Host("c", "t4", 1))  # candidate
        return reg

    def test_full_lifecycle_path(self):
        reg = HostRegistry()
        reg.add(Host("h", "v100"))
        for state in (WARMING, ACTIVE, DRAINING, REMOVED):
            reg.transition("h", state)
        assert reg.get("h").state == REMOVED
        assert reg.history == [
            ("h", CANDIDATE, WARMING),
            ("h", WARMING, ACTIVE),
            ("h", ACTIVE, DRAINING),
            ("h", DRAINING, REMOVED),
        ]

    def test_blacklist_expiry_rejoins_active(self):
        reg = HostRegistry()
        reg.add(Host("h", "v100", state=ACTIVE))
        reg.transition("h", BLACKLISTED)
        reg.transition("h", ACTIVE)
        assert reg.get("h").state == ACTIVE

    def test_invalid_edge_raises_with_context(self):
        reg = HostRegistry()
        reg.add(Host("h", "v100", state=DRAINING))
        with pytest.raises(InvalidTransitionError) as err:
            reg.transition("h", ACTIVE)
        assert err.value.host_id == "h"
        assert err.value.current == DRAINING
        assert err.value.requested == ACTIVE
        assert "allowed from draining" in str(err.value)
        # the failed transition left no trace
        assert reg.get("h").state == DRAINING
        assert reg.history == []

    def test_terminal_state_rejects_everything(self):
        reg = HostRegistry()
        reg.add(Host("h", "v100", state=REMOVED))
        for state in (ACTIVE, DRAINING, BLACKLISTED, WARMING):
            with pytest.raises(InvalidTransitionError):
                reg.transition("h", state)

    def test_unknown_target_state_rejected(self):
        reg = HostRegistry()
        reg.add(Host("h", "v100", state=ACTIVE))
        with pytest.raises(ValueError, match="unknown state"):
            reg.transition("h", "limbo")

    def test_duplicate_add_rejected(self):
        reg = self._registry()
        with pytest.raises(ValueError, match="already registered"):
            reg.add(Host("a", "v100"))

    def test_unknown_host_lookup(self):
        with pytest.raises(KeyError, match="unknown host"):
            HostRegistry().get("ghost")

    def test_capacity_accounting(self):
        reg = self._registry()
        assert reg.serving_slots() == 3
        assert reg.capacity_by_type() == {"v100": 2, "t4": 1}
        assert [h.host_id for h in reg.serving_hosts()] == ["a", "b"]
        assert [h.host_id for h in reg.in_state(CANDIDATE)] == ["c"]

    def test_iteration_is_registration_order(self):
        reg = self._registry()
        assert [h.host_id for h in reg] == ["a", "b", "c"]
        assert len(reg) == 3 and "a" in reg and "ghost" not in reg
