"""Membership wiring in the discrete-event cluster simulator.

Capacity must grow as hosts join and shrink as they leave; drains and
blacklists preempt gracefully (zero lost work) while forceful removals
are abrupt; and the heap fast path must emit an event stream
byte-identical to the reference linear-scan core under any plan.
"""

import pytest

from repro.faults.schedule import FaultEvent, FaultPlan
from repro.hw import Cluster, Machine, gpu_type
from repro.membership import HostEvent, HostSpec, MembershipPlan
from repro.membership.lifecycle import ACTIVE, REMOVED
from repro.sched.easyscale_policy import EasyScalePolicy
from repro.sched.simulator import ClusterSimulator
from repro.sched.trace import TraceJob
from repro.sched.yarn_cs import YarnCapacityScheduler


def job(job_id="j0", arrival=0.0, gpus=2, gtype="v100", work=100.0,
        workload="resnet50"):
    return TraceJob(
        job_id=job_id,
        workload=workload,
        arrival_time=arrival,
        requested_gpus=gpus,
        requested_type=gtype,
        total_work=work,
    )


def base_cluster():
    return Cluster([Machine.build("base0", gpu_type("V100"), 2)])


ROSTER = (HostSpec("member-v", "v100", 2),)


def plan(events=(), roster=ROSTER, **kwargs):
    return MembershipPlan(initial_hosts=roster, events=tuple(events), **kwargs)


class TestClusterInventory:
    def test_add_machine_grows_totals(self):
        cluster = base_cluster()
        cluster.add_machine(Machine.build("t4-0", gpu_type("T4"), 3))
        assert cluster.total("V100") == 2
        assert cluster.total("T4") == 3
        assert cluster.free_count("T4") == 3

    def test_add_empty_machine_rejected(self):
        with pytest.raises(ValueError, match="no GPUs"):
            base_cluster().add_machine(Machine(name="husk", gpus=[]))

    def test_remove_free_takes_newest_and_prunes_machine(self):
        cluster = base_cluster()
        cluster.add_machine(Machine.build("late", gpu_type("V100"), 1))
        cluster.remove_free("V100", 1)
        # the newest host's GPU went first; its empty machine is pruned
        assert cluster.total("V100") == 2
        assert [m.name for m in cluster.machines] == ["base0"]

    def test_remove_free_needs_free_capacity(self):
        cluster = base_cluster()
        cluster.allocate("j0", "V100", 2)
        with pytest.raises(RuntimeError, match="only 0 free"):
            cluster.remove_free("V100", 1)

    def test_remove_free_refuses_to_empty_the_cluster(self):
        cluster = base_cluster()
        with pytest.raises(RuntimeError, match="last GPUs"):
            cluster.remove_free("V100", 2)


class TestCapacityLifecycle:
    def test_roster_joins_before_capacity_event(self):
        sim = ClusterSimulator(
            base_cluster(), [], YarnCapacityScheduler(), membership=plan(),
        )
        first = next(iter(sim.events))
        assert first.kind == "cluster_capacity"
        assert first.payload == {"v100": 4}
        assert sim.cluster.total("V100") == 4

    def test_announced_host_joins_and_grows_capacity(self):
        events = [HostEvent(kind="announce", host="spot", at_time=100.0,
                            gtype="t4", slots=2, magnitude=50.0)]
        sim = ClusterSimulator(
            base_cluster(), [job(work=2 * 9.0 * 600)], YarnCapacityScheduler(),
            membership=plan(events),
        )
        result = sim.run()
        joins = result.events.of_kind("host_join")
        assert [(e.time, e.payload) for e in joins] == [
            (150.0, {"host": "spot", "gtype": "t4", "gpus": 2})
        ]
        assert sim.cluster.total("T4") == 2
        assert sim.membership.registry.get("spot").state == ACTIVE

    def test_drain_preempts_holder_gracefully(self):
        # one job holds all four V100s; draining the member host must
        # preempt two of them without losing work, then shrink capacity
        events = [HostEvent(kind="drain", host="member-v", at_time=200.0)]
        sim = ClusterSimulator(
            base_cluster(), [job(gpus=4, work=4 * 9.0 * 600)],
            YarnCapacityScheduler(), membership=plan(events),
        )
        result = sim.run()
        preempts = result.events.of_kind("preempt")
        assert len(preempts) == 1
        assert preempts[0].payload["fault"] == "host_drain"
        assert preempts[0].payload["abrupt"] is False
        assert preempts[0].payload["lost_s"] == 0.0
        assert sim.lost_work_seconds == 0.0
        assert sim.cluster.total("V100") == 2
        assert sim.membership.registry.get("member-v").state == REMOVED
        drains = result.events.of_kind("host_drain")
        assert [e.time for e in drains] == [200.0]

    def test_forceful_remove_is_abrupt_and_loses_work(self):
        events = [HostEvent(kind="forceful_remove", host="member-v",
                            at_time=200.0)]
        sim = ClusterSimulator(
            base_cluster(), [job(gpus=4, work=4 * 9.0 * 600)],
            YarnCapacityScheduler(), membership=plan(events),
        )
        result = sim.run()
        preempts = result.events.of_kind("preempt")
        assert preempts[0].payload["fault"] == "host_remove"
        assert preempts[0].payload["abrupt"] is True
        assert preempts[0].payload["lost_s"] > 0.0
        assert sim.lost_work_seconds > 0.0
        assert result.events.of_kind("host_remove")

    def test_blacklist_removes_free_same_type_capacity(self):
        # nobody holds the member host's GPUs: blacklisting removes free
        # capacity of its type without touching the running job
        events = [HostEvent(kind="blacklist", host="member-v", at_time=150.0,
                            magnitude=10_000.0)]
        sim = ClusterSimulator(
            base_cluster(), [job(gpus=2, work=2 * 9.0 * 600)],
            YarnCapacityScheduler(), membership=plan(events),
        )
        result = sim.run()
        assert result.events.of_kind("host_blacklist")
        assert not result.events.of_kind("preempt")
        assert sim.lost_work_seconds == 0.0
        assert sim.cluster.total("V100") == 2

    def test_reclaim_notice_then_deadline(self):
        events = [HostEvent(kind="reclaim_notice", host="member-v",
                            at_time=100.0, magnitude=30.0)]
        sim = ClusterSimulator(
            base_cluster(), [job(gpus=4, work=4 * 9.0 * 600)],
            YarnCapacityScheduler(), membership=plan(events),
        )
        result = sim.run()
        notice = result.events.of_kind("host_reclaim_notice")
        reclaim = result.events.of_kind("host_reclaim")
        assert [e.time for e in notice] == [100.0]
        assert [e.time for e in reclaim] == [130.0]
        # capacity survives the notice window, leaves at the deadline
        assert sim.cluster.total("V100") == 2


class RecordingPolicy(YarnCapacityScheduler):
    def __init__(self):
        super().__init__()
        self.joins = []
        self.slowdowns = []

    def on_join(self, sim, now, gtype, count):
        self.joins.append((now, gtype, count))

    def on_slowdown(self, sim, runtime, now, factor):
        self.slowdowns.append((now, runtime.job.job_id, factor))


class TestPolicyHooks:
    def test_on_join_fires_with_capacity_details(self):
        events = [HostEvent(kind="announce", host="spot", at_time=100.0,
                            gtype="t4", slots=2, magnitude=50.0)]
        policy = RecordingPolicy()
        ClusterSimulator(
            base_cluster(), [job(work=2 * 9.0 * 600)], policy,
            membership=plan(events),
        ).run()
        assert policy.joins == [(150.0, "t4", 2)]

    def test_on_slowdown_fires_from_fault_path(self):
        policy = RecordingPolicy()
        faults = FaultPlan(
            events=(FaultEvent(kind="slowdown", at_time=100.0,
                               magnitude=2.0),),
        )
        ClusterSimulator(
            base_cluster(), [job(work=2 * 9.0 * 600)], policy, faults=faults,
        ).run()
        assert policy.slowdowns == [(100.0, "j0", 2.0)]


FULL_PLAN_EVENTS = (
    HostEvent(kind="announce", host="spot", at_time=90.0, gtype="t4",
              slots=2, magnitude=30.0),
    HostEvent(kind="drain", host="member-v", at_time=200.0),
    HostEvent(kind="blacklist", host="spot", at_time=400.0, magnitude=100.0),
)


class TestHeapMatchesReference:
    @pytest.mark.parametrize("make_policy", [
        YarnCapacityScheduler,
        lambda: EasyScalePolicy(True),
    ])
    def test_event_streams_fingerprint_identically(self, make_policy):
        jobs = [
            job("a", arrival=0.0, gpus=4, work=4 * 9.0 * 500),
            job("b", arrival=50.0, gpus=2, gtype="t4",
                work=2 * 16.0 * 300),
        ]
        fingerprints = []
        for runner in ("run", "run_reference"):
            sim = ClusterSimulator(
                base_cluster(), jobs, make_policy(),
                membership=plan(FULL_PLAN_EVENTS),
            )
            result = getattr(sim, runner)()
            fingerprints.append(result.events.fingerprint())
        assert fingerprints[0] == fingerprints[1]

    def test_membership_events_in_both_streams(self):
        kinds = ("host_announce", "host_join", "host_drain",
                 "host_blacklist")
        for runner in ("run", "run_reference"):
            sim = ClusterSimulator(
                base_cluster(), [job(gpus=4, work=4 * 9.0 * 500)],
                YarnCapacityScheduler(), membership=plan(FULL_PLAN_EVENTS),
            )
            result = getattr(sim, runner)()
            for kind in kinds:
                assert result.events.of_kind(kind), f"{runner}: no {kind}"
