"""Graceful-drain accounting at every step index of a 3-epoch run.

Mirror of ``tests/data/test_sampler_epoch_restore.py``, but the restore
is driven by a membership drain instead of a manual checkpoint round
trip: draining a host at step *s* must land the rebuilt engine's
samplers on exactly the ``_global_order`` the uninterrupted run used,
lose zero work, and finish the horizon bitwise-identical to the static
run — at *every* possible drain step.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import EasyScaleEngine, EasyScaleJobConfig, WorkerAssignment
from repro.data.sampler import DistributedSampler
from repro.hw import gpu_type
from repro.membership import (
    HostEvent,
    HostSpec,
    MembershipController,
    MembershipPlan,
)
from repro.models import get_workload
from repro.utils.fingerprint import fingerprint_state_dict
from tests.conftest import sgd_factory

TOTAL_STEPS = 12  # three epochs of four global steps each
ROSTER = (
    HostSpec("keeper", "v100", 1),
    HostSpec("drainee", "v100", 1),
)


@pytest.fixture(scope="module")
def env():
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(32, seed=7)
    # 32 samples / (batch 4 x 2 ESTs) = 4 global steps per epoch
    config = EasyScaleJobConfig(num_ests=2, seed=0, batch_size=4)
    return spec, dataset, config


@pytest.fixture(scope="module")
def reference(env):
    spec, dataset, config = env
    obs.configure(enabled=True, audit=True)
    try:
        engine = EasyScaleEngine(
            spec, dataset, config, sgd_factory(),
            WorkerAssignment.balanced([gpu_type("V100")] * 2, 2),
        )
        assert engine.steps_per_epoch == 4
        losses = engine.train_steps(TOTAL_STEPS)
        trail = obs.audit_trail()
    finally:
        obs.reset()
    orders = {}
    sampler = DistributedSampler(32, 2, 0, seed=0)
    for epoch in range(3):
        sampler.set_epoch(epoch)
        orders[epoch] = sampler._global_order().copy()
    return {
        "losses": losses,
        "params": fingerprint_state_dict(engine.model.state_dict()),
        "cursor": (engine.epoch, engine.step_in_epoch),
        "orders": orders,
        "trail": trail,
    }


@pytest.mark.parametrize("step", range(TOTAL_STEPS))
def test_drain_at_every_step_restores_global_order(env, reference, step):
    spec, dataset, config = env
    plan = MembershipPlan(
        initial_hosts=ROSTER,
        events=(HostEvent(kind="drain", host="drainee", at_step=step),),
    )
    obs.configure(enabled=True, audit=True, audit_rewind=True)
    try:
        controller = MembershipController(
            spec, dataset, config, sgd_factory(), plan,
        )
        stats = controller.run(TOTAL_STEPS)
        trail = obs.audit_trail()
    finally:
        obs.reset()

    # zero lost work, never the recovery path
    assert controller.mstats.drains == 1
    assert controller.mstats.lost_work_seconds == 0.0
    assert stats.incidents == []

    # the rebuilt engine's samplers reproduce the uninterrupted run's
    # exact _global_order at every epoch of the horizon
    for epoch in range(3):
        for plan_ in controller.engine.loader._plans.values():
            plan_.sampler.set_epoch(epoch)
            np.testing.assert_array_equal(
                plan_.sampler._global_order(), reference["orders"][epoch],
                err_msg=f"drain at step {step}: epoch-{epoch} order diverged",
            )
    controller.engine.loader.set_epoch(controller.engine.epoch)

    # and the whole run is bitwise-identical to the static reference
    diff = obs.diff_audits(reference["trail"], trail)
    assert diff.identical, f"drain at step {step}: {diff.describe()}"
    # controller.losses holds every EST's loss per step; train_steps
    # reports the last EST's — compare on the common projection
    assert [step_losses[-1] for step_losses in controller.losses] == (
        reference["losses"]
    )
    assert fingerprint_state_dict(
        controller.engine.model.state_dict()
    ) == reference["params"]
    assert (
        controller.engine.epoch, controller.engine.step_in_epoch
    ) == reference["cursor"]
    assert controller.clock == pytest.approx(
        controller.compute_s + controller.stats.downtime_s, abs=1e-12
    )
