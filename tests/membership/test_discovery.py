"""Host discovery: step-domain replay and the simulator-time driver."""

import pytest

from repro.membership.discovery import (
    SIM_OPS,
    HostDiscovery,
    MembershipAction,
    SimMembershipDriver,
)
from repro.membership.lifecycle import ACTIVE, CANDIDATE
from repro.membership.plan import HostEvent, HostSpec, MembershipPlan

ROSTER = (
    HostSpec("a", "v100", 1),
    HostSpec("b", "v100", 1),
    HostSpec("c", "t4", 1),
)


def step_plan():
    return MembershipPlan(
        initial_hosts=ROSTER,
        events=(
            HostEvent(kind="drain", host="a", at_step=2),
            HostEvent(kind="blacklist", host="c", at_step=4, magnitude=30.0),
            HostEvent(kind="announce", host="new", at_step=6, gtype="t4",
                      magnitude=10.0),
        ),
    )


class TestHostDiscovery:
    def test_due_is_exactly_once(self):
        disc = HostDiscovery(step_plan())
        assert [e.kind for e in disc.due(2)] == ["drain"]
        assert disc.due(2) == []
        assert disc.due(3) == []
        assert [e.kind for e in disc.due(4)] == ["blacklist"]

    def test_catch_up_after_skipped_boundaries(self):
        # a recovery can jump step boundaries; every missed event still fires
        disc = HostDiscovery(step_plan())
        assert [e.kind for e in disc.due(10)] == [
            "drain", "blacklist", "announce"
        ]
        assert disc.exhausted

    def test_reset_restores_all_events(self):
        disc = HostDiscovery(step_plan())
        disc.due(10)
        disc.reset()
        assert not disc.exhausted
        assert len(disc.pending()) == 3

    def test_kind_filter(self):
        disc = HostDiscovery(step_plan(), kinds=frozenset({"drain"}))
        assert [e.kind for e in disc.due(10)] == ["drain"]


class TestMembershipAction:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown membership op"):
            MembershipAction(1.0, "teleport", "h")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            MembershipAction(-1.0, "join", "h")


def time_plan(max_unavailable=1):
    return MembershipPlan(
        initial_hosts=ROSTER,
        events=(
            HostEvent(kind="announce", host="new", at_time=100.0, gtype="t4",
                      slots=2, magnitude=50.0),
            HostEvent(kind="drain", host="a", at_time=200.0),
            HostEvent(kind="drain", host="b", at_time=200.0),
            HostEvent(kind="blacklist", host="c", at_time=400.0,
                      magnitude=100.0),
            HostEvent(kind="reclaim_notice", host="new", at_time=600.0,
                      magnitude=30.0),
        ),
        max_unavailable=max_unavailable,
    )


class TestSimMembershipDriver:
    def test_static_expansion_includes_deadlines(self):
        driver = SimMembershipDriver(time_plan())
        expanded = [(a.at_time, a.op, a.host_id) for a in driver.actions]
        assert expanded == [
            (100.0, "announce", "new"),
            (150.0, "join", "new"),          # announce + warm-up
            (200.0, "drain", "a"),
            (200.0, "drain", "b"),
            (400.0, "blacklist", "c"),
            (500.0, "rejoin", "c"),          # blacklist + expiry
            (600.0, "reclaim_notice", "new"),
            (630.0, "reclaim", "new"),       # notice + deadline
        ]
        assert all(a.op in SIM_OPS for a in driver.actions)

    def test_registry_seeded_from_plan(self):
        driver = SimMembershipDriver(time_plan())
        states = {h.host_id: h.state for h in driver.registry}
        assert states == {"a": ACTIVE, "b": ACTIVE, "c": ACTIVE,
                          "new": CANDIDATE}

    def test_next_time_is_strictly_after(self):
        driver = SimMembershipDriver(time_plan())
        assert driver.next_time(0.0) == 100.0
        assert driver.next_time(100.0) == 150.0
        assert driver.next_time(630.0) is None

    def test_due_pops_exactly_once(self):
        driver = SimMembershipDriver(time_plan())
        assert [a.op for a in driver.due(150.0)] == ["announce", "join"]
        assert driver.due(150.0) == []

    def test_max_unavailable_defers_drains(self):
        driver = SimMembershipDriver(time_plan(max_unavailable=1))
        due = driver.due(200.0)
        assert [a.host_id for a in due if a.op == "drain"] == ["a"]
        assert driver.deferrals == 1
        # the deferred drain piggybacks on the next decision point, FIFO
        assert [a.host_id for a in driver.due(250.0)] == ["b"]
        assert driver.due(300.0) == []

    def test_max_unavailable_two_releases_both(self):
        driver = SimMembershipDriver(time_plan(max_unavailable=2))
        due = driver.due(200.0)
        assert [a.host_id for a in due if a.op == "drain"] == ["a", "b"]
        assert driver.deferrals == 0

    def test_exhausted(self):
        driver = SimMembershipDriver(time_plan())
        assert not driver.exhausted
        driver.due(10_000.0)
        driver.due(10_001.0)  # releases the deferred drain
        assert driver.exhausted
