"""Membership property sweep (tier-2, ``-m membership``): bitwise
training under many random membership plans on a heterogeneous pool.

The acceptance property of the membership subsystem: for *any* seeded
:func:`~repro.membership.plan.random_membership_plan`, a D1+D2 job
supervised by the :class:`~repro.membership.controller.MembershipController`
on the default V100+T4 roster finishes with (a) a per-step determinism
audit trail identical to the static run's, (b) a bitwise-identical final
model, (c) zero lost work when the plan is graceful-only, while the job
clock decomposes exactly into compute plus modeled downtime.

Also proves the full 30-second spot reclaim notice of the issue's
acceptance scenario, which needs a longer horizon than tier-1 affords.

Deselected from tier-1 by default (each seed replays a full training
run); run with ``pytest -m membership``.
"""

import pytest

from repro import obs
from repro.core import (
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
)
from repro.hw import gpu_type
from repro.membership import (
    HostEvent,
    HostSpec,
    MembershipController,
    MembershipPlan,
    random_membership_plan,
)
from repro.models import get_workload
from repro.utils.fingerprint import fingerprint_state_dict
from tests.conftest import sgd_factory

pytestmark = pytest.mark.membership

TOTAL_STEPS = 12
NUM_SEEDS = 12
POOL = ["V100", "V100", "T4", "T4"]
ROSTER = (
    HostSpec("v100-host0", "v100", 1),
    HostSpec("v100-host1", "v100", 1),
    HostSpec("t4-host0", "t4", 1),
    HostSpec("t4-host1", "t4", 1),
)


@pytest.fixture(scope="module")
def env():
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(64, seed=7)
    config = EasyScaleJobConfig(
        num_ests=4, seed=0, batch_size=8,
        determinism=determinism_from_label("D1+D2"),
    )
    return spec, dataset, config


def static_run(env, total):
    spec, dataset, config = env
    obs.configure(enabled=True, audit=True)
    try:
        engine = EasyScaleEngine(
            spec, dataset, config, sgd_factory(),
            WorkerAssignment.balanced([gpu_type(g) for g in POOL], 4),
        )
        engine.train_steps(total)
        trail = obs.audit_trail()
        fingerprint = fingerprint_state_dict(engine.model.state_dict())
    finally:
        obs.reset()
    return trail, fingerprint


@pytest.fixture(scope="module")
def reference(env):
    """The static run, computed once: audit trail + final fingerprint."""
    return static_run(env, TOTAL_STEPS)


def membership_run(env, plan, total):
    spec, dataset, config = env
    obs.configure(enabled=True, audit=True, audit_rewind=True)
    try:
        controller = MembershipController(
            spec, dataset, config, sgd_factory(), plan,
        )
        controller.run(total)
        trail = obs.audit_trail()
    finally:
        obs.reset()
    return controller, trail


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_random_plans_recover_bitwise(env, reference, seed):
    plan = random_membership_plan(seed, horizon_steps=TOTAL_STEPS)
    controller, trail = membership_run(env, plan, TOTAL_STEPS)

    ref_trail, ref_fingerprint = reference
    diff = obs.diff_audits(ref_trail, trail)
    assert diff.identical, f"seed {seed}: {diff.describe()}"
    assert fingerprint_state_dict(
        controller.engine.model.state_dict()
    ) == ref_fingerprint, f"seed {seed}: final model diverged"
    assert controller.clock == pytest.approx(
        controller.compute_s + controller.stats.downtime_s, abs=1e-12
    ), f"seed {seed}: clock decomposition broken"
    if not any(e.kind == "forceful_remove" for e in plan.events):
        assert controller.mstats.lost_work_seconds == 0.0, (
            f"seed {seed}: graceful-only plan lost work"
        )


def test_thirty_second_reclaim_notice_completes_bitwise(env):
    """The issue's spot-reclaim acceptance scenario at full scale: a
    30 s notice spans ~48 step boundaries of modeled time before the
    host actually leaves — and the whole run stays bitwise."""
    total = 56
    plan = MembershipPlan(
        initial_hosts=ROSTER,
        events=(HostEvent(kind="reclaim_notice", host="t4-host0",
                          at_step=2, magnitude=30.0),),
    )
    ref_trail, ref_fingerprint = static_run(env, total)
    controller, trail = membership_run(env, plan, total)

    diff = obs.diff_audits(ref_trail, trail)
    assert diff.identical, diff.describe()
    assert fingerprint_state_dict(
        controller.engine.model.state_dict()
    ) == ref_fingerprint
    assert controller.mstats.reclaim_notices == 1
    assert controller.mstats.reclaims == 1
    assert controller.mstats.lost_work_seconds == 0.0
    assert controller.stats.incidents == []
    reclaim_step = next(
        s for op, _, s in controller.mstats.log if op == "reclaim"
    )
    # the notice window really spanned many boundaries of modeled time
    assert reclaim_step >= 30
