"""MembershipController acceptance scenarios (tier-1).

Every membership transition must leave training bitwise-identical to the
static run on the initial roster: rolling drains, blacklist-then-expiry
rejoin, spot reclaim with notice, hosts joining — all graceful (zero lost
work); forceful removal routes through the abrupt recovery path and still
recovers bitwise.
"""

import pytest

from repro import obs
from repro.core import (
    EasyScaleEngine,
    EasyScaleJobConfig,
    WorkerAssignment,
    determinism_from_label,
)
from repro.faults.schedule import FaultEvent, FaultPlan
from repro.hw import gpu_type
from repro.membership import (
    ACTIVE,
    REMOVED,
    HostEvent,
    HostSpec,
    MembershipController,
    MembershipPlan,
    rolling_upgrade_plan,
)
from repro.models import get_workload
from repro.utils.fingerprint import fingerprint_state_dict
from tests.conftest import sgd_factory

TOTAL_STEPS = 12
ROSTER = (
    HostSpec("v100-host0", "v100", 1),
    HostSpec("v100-host1", "v100", 1),
    HostSpec("t4-host0", "t4", 1),
    HostSpec("t4-host1", "t4", 1),
)
POOL = ["V100", "V100", "T4", "T4"]


@pytest.fixture(scope="module")
def env():
    spec = get_workload("resnet18")
    dataset = spec.build_dataset(64, seed=7)
    config = EasyScaleJobConfig(
        num_ests=4, seed=0, batch_size=8,
        determinism=determinism_from_label("D1+D2"),
    )
    return spec, dataset, config


@pytest.fixture(scope="module")
def reference(env):
    """The static run on the initial roster: audit trail + fingerprint."""
    spec, dataset, config = env
    obs.configure(enabled=True, audit=True)
    try:
        engine = EasyScaleEngine(
            spec, dataset, config, sgd_factory(),
            WorkerAssignment.balanced([gpu_type(g) for g in POOL], 4),
        )
        losses = engine.train_steps(TOTAL_STEPS)
        trail = obs.audit_trail()
        fingerprint = fingerprint_state_dict(engine.model.state_dict())
    finally:
        obs.reset()
    return trail, fingerprint, losses


def run_plan(env, plan, total=TOTAL_STEPS, faults=None, **kwargs):
    spec, dataset, config = env
    obs.configure(enabled=True, audit=True, audit_rewind=True)
    try:
        controller = MembershipController(
            spec, dataset, config, sgd_factory(), plan, faults=faults,
            **kwargs,
        )
        stats = controller.run(total)
        trail = obs.audit_trail()
    finally:
        obs.reset()
    return controller, stats, trail


def assert_bitwise(reference, controller, trail):
    ref_trail, ref_fingerprint, _ = reference
    diff = obs.diff_audits(ref_trail, trail)
    assert diff.identical, diff.describe()
    assert fingerprint_state_dict(
        controller.engine.model.state_dict()
    ) == ref_fingerprint
    assert controller.clock == pytest.approx(
        controller.compute_s + controller.stats.downtime_s, abs=1e-12
    )


class TestGracefulTransitions:
    def test_drain_is_bitwise_with_zero_lost_work(self, env, reference):
        plan = MembershipPlan(
            initial_hosts=ROSTER,
            events=(HostEvent(kind="drain", host="t4-host1", at_step=4),),
        )
        controller, stats, trail = run_plan(env, plan)
        assert_bitwise(reference, controller, trail)
        assert controller.mstats.drains == 1
        assert controller.mstats.lost_work_seconds == 0.0
        assert stats.incidents == []  # graceful: never the recovery path
        assert controller.registry.get("t4-host1").state == REMOVED
        assert controller.registry.serving_slots() == 3

    def test_blacklist_then_expiry_rejoin(self, env, reference):
        # expiry of ~2 sim-seconds passes a couple of boundaries later
        plan = MembershipPlan(
            initial_hosts=ROSTER,
            events=(HostEvent(kind="blacklist", host="t4-host1", at_step=2,
                              magnitude=2.0),),
        )
        controller, stats, trail = run_plan(env, plan)
        assert_bitwise(reference, controller, trail)
        assert controller.mstats.blacklists == 1
        assert controller.mstats.rejoins == 1
        assert controller.mstats.lost_work_seconds == 0.0
        assert stats.incidents == []
        host = controller.registry.get("t4-host1")
        assert host.state == ACTIVE and host.blacklist_until is None
        assert controller.registry.serving_slots() == 4
        ops = [op for op, h, _ in controller.mstats.log if h == "t4-host1"]
        assert ops == ["blacklist", "rejoin"]

    def test_spot_reclaim_with_notice(self, env, reference):
        # the host keeps serving through the notice window, then drains
        # gracefully at the deadline — capacity only leaves at the end
        plan = MembershipPlan(
            initial_hosts=ROSTER,
            events=(HostEvent(kind="reclaim_notice", host="t4-host0",
                              at_step=2, magnitude=2.5),),
        )
        controller, stats, trail = run_plan(env, plan)
        assert_bitwise(reference, controller, trail)
        assert controller.mstats.reclaim_notices == 1
        assert controller.mstats.reclaims == 1
        assert controller.mstats.lost_work_seconds == 0.0
        assert stats.incidents == []
        assert controller.registry.get("t4-host0").state == REMOVED
        notice_step = next(
            s for op, h, s in controller.mstats.log if op == "reclaim_notice"
        )
        reclaim_step = next(
            s for op, h, s in controller.mstats.log if op == "reclaim"
        )
        assert notice_step == 2 and reclaim_step > notice_step

    def test_announce_warm_up_join_grows_pool(self, env, reference):
        plan = MembershipPlan(
            initial_hosts=ROSTER,
            events=(HostEvent(kind="announce", host="spot-0", at_step=3,
                              gtype="t4", slots=1, magnitude=0.0),),
        )
        controller, stats, trail = run_plan(env, plan)
        assert_bitwise(reference, controller, trail)
        assert controller.mstats.joins == 1
        assert controller.registry.serving_slots() == 5
        assert controller.registry.get("spot-0").state == ACTIVE

    def test_ready_promotes_before_warm_up_deadline(self, env, reference):
        plan = MembershipPlan(
            initial_hosts=ROSTER,
            events=(
                HostEvent(kind="announce", host="spot-0", at_step=2,
                          gtype="v100", magnitude=10_000.0),
                HostEvent(kind="ready", host="spot-0", at_step=5),
            ),
        )
        controller, stats, trail = run_plan(env, plan)
        assert_bitwise(reference, controller, trail)
        assert controller.mstats.joins == 1
        join_step = next(
            s for op, h, s in controller.mstats.log if op == "join"
        )
        assert join_step == 5


class TestForcefulRemoval:
    def test_forceful_takes_recovery_path_and_recovers_bitwise(
        self, env, reference
    ):
        # same host as the graceful drain test — but yanked without notice:
        # snapshot_interval=3 forces a fallback to the step-3 snapshot, so
        # one step is re-executed (lost work > 0), yet the run still lands
        # bitwise on the static reference
        plan = MembershipPlan(
            initial_hosts=ROSTER,
            events=(HostEvent(kind="forceful_remove", host="t4-host1",
                              at_step=4),),
        )
        controller, stats, trail = run_plan(env, plan, snapshot_interval=3)
        assert_bitwise(reference, controller, trail)
        assert controller.mstats.forceful_removals == 1
        assert controller.mstats.drains == 0
        assert len(stats.incidents) == 1
        incident = stats.incidents[0]
        assert incident.kind == "node_preempt"
        assert incident.fault_step == 4 and incident.restore_step == 3
        assert incident.lost_steps == 1
        assert controller.mstats.lost_work_seconds > 0.0
        assert controller.registry.get("t4-host1").state == REMOVED
        assert controller.registry.serving_slots() == 3

    def test_forceful_at_snapshot_boundary_loses_nothing(self, env, reference):
        plan = MembershipPlan(
            initial_hosts=ROSTER,
            events=(HostEvent(kind="forceful_remove", host="t4-host1",
                              at_step=4),),
        )
        controller, stats, trail = run_plan(env, plan, snapshot_interval=4)
        assert_bitwise(reference, controller, trail)
        assert stats.incidents[0].lost_steps == 0
        assert controller.mstats.lost_work_seconds == 0.0


class TestRollingUpgrade:
    def test_drains_four_hosts_one_wave_at_a_time(self):
        spec = get_workload("resnet18")
        dataset = spec.build_dataset(32, seed=7)
        config = EasyScaleJobConfig(num_ests=5, seed=0, batch_size=5)
        hosts = tuple(HostSpec(f"host{i}", "v100", 1) for i in range(5))
        plan = rolling_upgrade_plan(hosts, start_step=1, max_unavailable=1)
        total = 10

        obs.configure(enabled=True, audit=True)
        try:
            ref = EasyScaleEngine(
                spec, dataset, config, sgd_factory(),
                WorkerAssignment.balanced([gpu_type("V100")] * 5, 5),
            )
            ref.train_steps(total)
            ref_trail = obs.audit_trail()
            ref_fp = fingerprint_state_dict(ref.model.state_dict())
        finally:
            obs.reset()

        obs.configure(enabled=True, audit=True, audit_rewind=True)
        try:
            controller = MembershipController(
                spec, dataset, config, sgd_factory(), plan,
            )
            stats = controller.run(total)
            trail = obs.audit_trail()
        finally:
            obs.reset()

        diff = obs.diff_audits(ref_trail, trail)
        assert diff.identical, diff.describe()
        assert fingerprint_state_dict(
            controller.engine.model.state_dict()
        ) == ref_fp
        # exactly one host leaves per step boundary, in roster order
        drain_log = [(h, s) for op, h, s in controller.mstats.log
                     if op == "drain"]
        assert drain_log == [("host0", 1), ("host1", 2),
                             ("host2", 3), ("host3", 4)]
        assert controller.mstats.drains == 4
        assert controller.mstats.deferred_drains > 0
        assert controller.mstats.lost_work_seconds == 0.0
        assert stats.incidents == []
        assert controller.registry.serving_slots() == 1
        assert controller.registry.get("host4").state == ACTIVE

    def test_plan_removing_all_capacity_fails_loudly(self, env):
        spec, dataset, config = env
        plan = rolling_upgrade_plan(ROSTER, keep=1, max_unavailable=4)
        # hand-build a roster-emptying plan: drain the keeper too
        plan = MembershipPlan(
            initial_hosts=ROSTER,
            events=tuple(
                HostEvent(kind="drain", host=s.host_id, at_step=1)
                for s in ROSTER
            ),
            max_unavailable=4,
        )
        controller = MembershipController(
            spec, dataset, config, sgd_factory(), plan,
        )
        with pytest.raises(ValueError, match="removes all serving capacity"):
            controller.run(TOTAL_STEPS)


class TestFaultsAlongside:
    def test_membership_and_fault_plan_compose(self, env, reference):
        plan = MembershipPlan(
            initial_hosts=ROSTER,
            events=(HostEvent(kind="drain", host="v100-host1", at_step=3),),
        )
        faults = FaultPlan(
            events=(FaultEvent(kind="gpu_revoke", at_step=6),), seed=1,
        )
        controller, stats, trail = run_plan(env, plan, faults=faults)
        assert_bitwise(reference, controller, trail)
        assert controller.mstats.drains == 1
        assert stats.faults_injected >= 1
