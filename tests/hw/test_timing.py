"""Timing model: D1/D2 overheads (Fig. 12), context switching (Fig. 11)."""

import pytest

from repro.hw import (
    P100,
    T4,
    V100,
    context_switch_time,
    easyscale_aggregate_throughput,
    easyscale_step_time,
    minibatch_time,
    packing_aggregate_throughput,
)
from repro.hw.timing import CTX_SWITCH_FRACTION, D2_CONV_OVERHEAD
from repro.models import WORKLOADS, get_workload
from repro.tensor.kernels import D0_POLICY, D2_POLICY


class TestDeterminismOverheads:
    def test_d1_under_one_percent(self):
        spec = get_workload("resnet50")
        base = 1.0 / spec.throughput["v100"]
        d1 = minibatch_time(spec, V100, D0_POLICY)
        assert (d1 - base) / base < 0.01

    def test_d2_heavy_for_conv_models(self):
        for name in ("resnet50", "vgg19", "shufflenetv2", "yolov3"):
            spec = get_workload(name)
            d1 = minibatch_time(spec, V100, D0_POLICY)
            d2 = minibatch_time(spec, V100, D2_POLICY)
            assert d2 / d1 == pytest.approx(1 + D2_CONV_OVERHEAD, rel=1e-6)

    def test_d2_cheap_for_gemm_models(self):
        for name in ("neumf", "bert", "electra", "swintransformer"):
            spec = get_workload(name)
            d1 = minibatch_time(spec, V100, D0_POLICY)
            d2 = minibatch_time(spec, V100, D2_POLICY)
            assert d2 / d1 < 1.01

    def test_gpu_speed_ordering(self):
        spec = get_workload("bert")
        assert (
            minibatch_time(spec, V100) < minibatch_time(spec, P100) < minibatch_time(spec, T4)
        )


class TestContextSwitch:
    def test_fraction_bounded_by_paper_max(self):
        for name, frac in CTX_SWITCH_FRACTION.items():
            assert 0 < frac <= 0.019  # Electra's 1.9% is the paper's worst case

    def test_electra_is_worst(self):
        worst = max(CTX_SWITCH_FRACTION, key=CTX_SWITCH_FRACTION.get)
        assert worst == "electra"

    def test_switch_time_scales_with_batch_time(self):
        spec = get_workload("resnet50")
        assert context_switch_time(spec, T4) > context_switch_time(spec, V100)


class TestAggregateThroughput:
    def test_easyscale_flat_per_est(self):
        spec = get_workload("resnet50")
        t1 = easyscale_aggregate_throughput(spec, V100, 1)
        t8 = easyscale_aggregate_throughput(spec, V100, 8)
        assert t8 == pytest.approx(t1, rel=0.02)  # flat modulo switch cost

    def test_packing_gain_capped_at_11_percent(self):
        spec = get_workload("resnet50")
        base = packing_aggregate_throughput(spec, V100, 1)
        many = packing_aggregate_throughput(spec, V100, 16)
        assert 1.0 < many / base <= 1.11 + 1e-9

    def test_step_time_composition(self):
        spec = get_workload("bert")
        t = easyscale_step_time(spec, V100, 4)
        per = minibatch_time(spec, V100)
        sw = context_switch_time(spec, V100)
        assert t == pytest.approx(4 * per + 3 * sw)

    def test_validation(self):
        spec = get_workload("bert")
        with pytest.raises(ValueError):
            easyscale_step_time(spec, V100, 0)
        with pytest.raises(ValueError):
            packing_aggregate_throughput(spec, V100, 0)
