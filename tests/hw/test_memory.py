"""Memory model: the Fig. 10 OOM regimes, flat EasyScale footprint."""

import pytest

from repro.hw import (
    OutOfMemoryError,
    P100,
    T4,
    V100,
    check_fits,
    easyscale_memory_gb,
    max_easyscale_ests,
    max_packed_workers,
    packing_memory_gb,
)
from repro.models import get_workload


class TestPackingOOMPoints:
    """Paper: on a 32 GB V100, worker packing OOMs after 8 workers for
    ResNet50 (bs=32) and after 2 workers for ShuffleNetV2 (bs=512)."""

    def test_resnet50_packs_8_not_9(self):
        spec = get_workload("resnet50")
        assert max_packed_workers(spec, V100, batch_size=32) == 8

    def test_shufflenet_packs_2_not_3(self):
        spec = get_workload("shufflenetv2")
        assert max_packed_workers(spec, V100, batch_size=512) == 2

    def test_packing_memory_linear(self):
        spec = get_workload("resnet50")
        one = packing_memory_gb(spec, 1, 32)
        four = packing_memory_gb(spec, 4, 32)
        assert four == pytest.approx(4 * one)


class TestEasyScaleFootprint:
    def test_nearly_flat_in_ests(self):
        spec = get_workload("resnet50")
        m1 = easyscale_memory_gb(spec, 1, 32)
        m16 = easyscale_memory_gb(spec, 16, 32)
        assert (m16 - m1) / m1 < 0.15  # only tiny per-EST staging overhead

    def test_easyscale_hosts_many_more_workers(self):
        spec = get_workload("resnet50")
        assert max_easyscale_ests(spec, V100, 32) > 4 * max_packed_workers(spec, V100, 32)

    def test_large_model_may_not_fit_small_gpu(self):
        spec = get_workload("shufflenetv2")  # huge activations at bs 1024
        assert max_easyscale_ests(spec, P100, 1024) == 0

    def test_check_fits_raises(self):
        with pytest.raises(OutOfMemoryError):
            check_fits(17.0, T4)
        check_fits(15.0, T4)  # no raise

    def test_validation(self):
        spec = get_workload("resnet50")
        with pytest.raises(ValueError):
            packing_memory_gb(spec, 0)
        with pytest.raises(ValueError):
            easyscale_memory_gb(spec, 0)
