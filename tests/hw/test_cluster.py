"""Cluster inventory: composition, allocation bookkeeping."""

import pytest

from repro.hw import Cluster, Machine, P100, T4, V100, microbench_cluster, production_cluster
from repro.hw.gpu import GPU, gpu_type


class TestGPUTypes:
    def test_lookup(self):
        assert gpu_type("V100").dialect == "v100"
        with pytest.raises(KeyError):
            gpu_type("A100")

    def test_memory_profile(self):
        assert V100.memory_gb == 32.0
        assert P100.memory_gb == 16.0 and T4.memory_gb == 16.0

    def test_gpu_allocate_release(self):
        gpu = GPU(type=V100)
        gpu.allocate("job-a")
        with pytest.raises(RuntimeError):
            gpu.allocate("job-b")
        with pytest.raises(RuntimeError):
            gpu.release("job-b")
        gpu.release("job-a")
        assert gpu.free


class TestMicrobenchCluster:
    def test_paper_composition(self):
        cluster = microbench_cluster()
        assert cluster.total() == 64
        assert cluster.total("V100") == 32
        assert cluster.total("P100") == 16
        assert cluster.total("T4") == 16

    def test_machine_shapes(self):
        cluster = microbench_cluster()
        by_prefix = {}
        for machine in cluster.machines:
            prefix = machine.name.rsplit("-", 1)[0]
            by_prefix.setdefault(prefix, []).append(len(machine.gpus))
        assert by_prefix["v100"] == [8, 8, 8, 8]
        assert by_prefix["p100"] == [2] * 8
        assert by_prefix["t4"] == [4] * 4


class TestAllocation:
    def test_allocate_and_release(self):
        cluster = microbench_cluster()
        taken = cluster.allocate("job", "V100", 5)
        assert len(taken) == 5
        assert cluster.free_count("V100") == 27
        assert cluster.allocated_count() == 5
        cluster.release("job", taken[:2])
        assert cluster.free_count("V100") == 29
        assert cluster.release_all("job") == 3
        assert cluster.allocated_count() == 0

    def test_all_or_nothing(self):
        cluster = microbench_cluster()
        with pytest.raises(RuntimeError):
            cluster.allocate("job", "P100", 17)
        assert cluster.free_count("P100") == 16

    def test_free_by_type(self):
        cluster = microbench_cluster()
        cluster.allocate("j", "T4", 10)
        assert cluster.free_by_type() == {"V100": 32, "P100": 16, "T4": 6}

    def test_owned_by(self):
        cluster = microbench_cluster()
        cluster.allocate("a", "V100", 2)
        cluster.allocate("b", "V100", 3)
        assert len(cluster.owned_by("a")) == 2

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster([])


class TestProductionCluster:
    def test_size_and_mix(self):
        cluster = production_cluster(1000)
        assert cluster.total() == 1000
        assert cluster.total("T4") == 500
        assert cluster.total("P100") == 250
        assert cluster.total("V100") == 250

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            production_cluster(5)
