"""Tier-2 smoke target: every figure regenerator at reduced size.

Each ``benchmarks/bench_fig*.py`` runs in its own pytest subprocess with
``REPRO_BENCH_SMOKE=1`` (shrunk epochs/steps/jobs, same qualitative
assertions) and ``REPRO_TRACE=1`` (span tracing on), proving that the
whole evaluation suite still regenerates and that tracing survives every
code path.  Deselected by default via the ``bench_smoke`` marker; run
with::

    PYTHONPATH=src python -m pytest -m bench_smoke tests/test_bench_smoke.py
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_FILES = sorted(p.name for p in (REPO_ROOT / "benchmarks").glob("bench_fig*.py"))

pytestmark = pytest.mark.bench_smoke


@pytest.mark.parametrize("bench_file", BENCH_FILES)
def test_bench_regenerates_in_smoke_mode(bench_file, tmp_path):
    trace_path = tmp_path / "trace.json"
    env = dict(os.environ)
    env["REPRO_BENCH_SMOKE"] = "1"
    env["REPRO_TRACE"] = "1"
    env["REPRO_TRACE_PATH"] = str(trace_path)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
         f"benchmarks/{bench_file}"],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{bench_file} failed in smoke mode:\n{proc.stdout[-4000:]}\n{proc.stderr[-2000:]}"
    )
    assert trace_path.exists(), f"{bench_file} produced no span trace"
    # a bench touching only uninstrumented paths writes an empty (but
    # valid) trace; the point is that tracing never breaks the pipeline
    chrome = json.loads(trace_path.read_text())
    assert isinstance(chrome["traceEvents"], list)


def test_every_figure_bench_is_covered():
    # the parametrization above must not silently go empty if the
    # benchmarks directory moves or the naming convention changes
    assert len(BENCH_FILES) >= 12
