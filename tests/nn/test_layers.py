"""Layers: shapes, implicit state (BN), RNG consumption (dropout), MHA."""

import numpy as np
import pytest

from repro import nn
from repro.nn.runtime import collect_bn_stats, current_rng, use_rng
from repro.tensor.tensor import Tensor
from repro.utils.rng import RNGBundle

from tests.tensor.test_autograd import check_grad, _rand


@pytest.fixture
def rng():
    return RNGBundle(77)


class TestLinear:
    def test_shape_and_grad(self, rng):
        layer = nn.Linear(6, 4, rng)
        x = Tensor(_rand((5, 6), 1), requires_grad=True)
        out = layer(x)
        assert out.shape == (5, 4)
        check_grad(lambda: (layer(x) ** 2.0).sum(), [x, layer.weight, layer.bias])

    def test_no_bias(self, rng):
        layer = nn.Linear(3, 2, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_init_deterministic(self):
        a = nn.Linear(4, 4, RNGBundle(5))
        b = nn.Linear(4, 4, RNGBundle(5))
        assert a.weight.data.tobytes() == b.weight.data.tobytes()


class TestConv2dLayer:
    def test_shapes(self, rng):
        layer = nn.Conv2d(3, 8, 3, rng, stride=2, padding=1)
        out = layer(Tensor(_rand((2, 3, 8, 8), 1)))
        assert out.shape == (2, 8, 4, 4)


class TestBatchNorm2d:
    def test_normalizes_batch(self, rng):
        bn = nn.BatchNorm2d(4)
        x = Tensor(_rand((8, 4, 3, 3), 1) * 5 + 2)
        out = bn(x).data
        assert abs(out.mean()) < 1e-4
        assert out.std() == pytest.approx(1.0, rel=0.05)

    def test_running_stats_update_in_train(self):
        bn = nn.BatchNorm2d(2)
        x = Tensor(np.ones((4, 2, 2, 2), np.float32) * 3.0)
        bn(x)
        np.testing.assert_allclose(bn.running_mean, 0.9 * 0 + 0.1 * 3.0, rtol=1e-5)
        assert int(bn.num_batches_tracked) == 1

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm2d(2)
        bn._set_buffer("running_mean", np.float32([1.0, 2.0]))
        bn._set_buffer("running_var", np.float32([4.0, 4.0]))
        bn.eval()
        x = Tensor(np.ones((1, 2, 1, 1), np.float32))
        out = bn(x).data.reshape(-1)
        np.testing.assert_allclose(out, [(1 - 1) / 2, (1 - 2) / 2], atol=1e-3)

    def test_eval_does_not_update_stats(self):
        bn = nn.BatchNorm2d(2)
        bn.eval()
        bn(Tensor(_rand((4, 2, 2, 2), 3)))
        np.testing.assert_array_equal(bn.running_mean, np.zeros(2, np.float32))

    def test_journal_diverts_updates(self):
        bn = nn.BatchNorm2d(2)
        x = Tensor(_rand((4, 2, 2, 2), 1))
        with collect_bn_stats() as journal:
            bn(x)
        assert len(journal) == 1
        np.testing.assert_array_equal(bn.running_mean, np.zeros(2, np.float32))
        layer, mean, var = journal[0]
        assert layer is bn
        layer.fold_stats(mean, var)
        assert not np.array_equal(bn.running_mean, np.zeros(2, np.float32))

    def test_grad_through_bn(self):
        bn = nn.BatchNorm2d(2)
        x = Tensor(_rand((4, 2, 2, 2), 1), requires_grad=True)
        check_grad(lambda: (bn(x) ** 2.0).sum(), [x, bn.weight, bn.bias], rtol=5e-2)


class TestBatchNorm1d:
    def test_normalizes(self):
        bn = nn.BatchNorm1d(3)
        x = Tensor(_rand((16, 3), 1) * 4 + 1)
        out = bn(x).data
        assert abs(out.mean()) < 1e-4

    def test_journal(self):
        bn = nn.BatchNorm1d(3)
        with collect_bn_stats() as journal:
            bn(Tensor(_rand((8, 3), 1)))
        assert len(journal) == 1


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        ln = nn.LayerNorm(8)
        x = Tensor(_rand((4, 8), 1) * 3 + 7)
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-4)

    def test_grad(self):
        ln = nn.LayerNorm(6)
        x = Tensor(_rand((3, 6), 2), requires_grad=True)
        check_grad(lambda: (ln(x) ** 2.0).sum(), [x, ln.weight, ln.bias], rtol=5e-2)


class TestDropout:
    def test_requires_installed_rng(self):
        layer = nn.Dropout(0.5)
        with pytest.raises(RuntimeError):
            layer(Tensor(np.ones(4, np.float32)))

    def test_uses_installed_rng_deterministically(self):
        layer = nn.Dropout(0.5)
        x = Tensor(np.ones((64,), np.float32))
        with use_rng(RNGBundle(1)):
            a = layer(x).data
        with use_rng(RNGBundle(1)):
            b = layer(x).data
        np.testing.assert_array_equal(a, b)

    def test_eval_identity(self):
        layer = nn.Dropout(0.5)
        layer.eval()
        x = Tensor(np.ones(4, np.float32))
        assert layer(x) is x

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = nn.Embedding(10, 6, rng)
        out = emb(np.array([[1, 2, 3]]))
        assert out.shape == (1, 3, 6)


class TestActivations:
    def test_gelu_matches_reference(self):
        x = np.linspace(-3, 3, 31).astype(np.float32)
        out = nn.GELU()(Tensor(x)).data
        from scipy.stats import norm

        ref = x * norm.cdf(x)
        np.testing.assert_allclose(out, ref, atol=2e-3)

    def test_relu_sigmoid_flatten(self):
        x = Tensor(_rand((2, 3, 2), 1))
        assert nn.ReLU()(x).data.min() >= 0
        s = nn.Sigmoid()(x).data
        assert s.min() > 0 and s.max() < 1
        assert nn.Flatten()(x).shape == (2, 6)


class TestAttention:
    def test_mha_shape(self, rng):
        mha = nn.MultiHeadAttention(8, 2, rng)
        x = Tensor(_rand((2, 5, 8), 1))
        assert mha(x).shape == (2, 5, 8)

    def test_mha_dim_head_mismatch(self, rng):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(7, 2, rng)

    def test_mha_grad(self, rng):
        mha = nn.MultiHeadAttention(4, 2, rng)
        x = Tensor(_rand((1, 3, 4), 1), requires_grad=True)
        check_grad(lambda: (mha(x) ** 2.0).sum(), [x], rtol=5e-2, probes=3)

    def test_encoder_layer_residual(self, rng):
        layer = nn.TransformerEncoderLayer(8, 2, 2.0, rng, dropout=0.0)
        layer.eval()
        x = Tensor(_rand((2, 4, 8), 1))
        out = layer(x)
        assert out.shape == (2, 4, 8)
        assert not np.allclose(out.data, x.data)


class TestMaxPoolLayer:
    def test_pool(self):
        pool = nn.MaxPool2d(2)
        out = pool(Tensor(_rand((1, 2, 4, 4), 1)))
        assert out.shape == (1, 2, 2, 2)
