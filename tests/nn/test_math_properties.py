"""Mathematical properties of core layers (hypothesis-driven)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.tensor import Tensor
from repro.tensor.ops import conv2d, softmax
from repro.utils.rng import RNGBundle


def _rand(shape, seed):
    return np.random.default_rng(seed).normal(size=shape).astype(np.float32)


class TestLinearity:
    @given(seed=st.integers(0, 100), a=st.floats(-3, 3), b=st.floats(-3, 3))
    @settings(max_examples=20, deadline=None)
    def test_linear_layer_is_linear(self, seed, a, b):
        layer = nn.Linear(6, 4, RNGBundle(1), bias=False)
        x = Tensor(_rand((5, 6), seed))
        y = Tensor(_rand((5, 6), seed + 1))
        combined = layer(Tensor(a * x.data + b * y.data)).data
        separate = a * layer(x).data + b * layer(y).data
        np.testing.assert_allclose(combined, separate, rtol=1e-3, atol=1e-4)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_conv_is_linear_in_input(self, seed):
        weight = Tensor(_rand((4, 3, 3, 3), 0))
        x = Tensor(_rand((2, 3, 6, 6), seed))
        doubled = conv2d(Tensor(2.0 * x.data), weight, padding=1).data
        np.testing.assert_allclose(doubled, 2.0 * conv2d(x, weight, padding=1).data,
                                   rtol=1e-4, atol=1e-4)


class TestEquivariance:
    def test_conv_translation_equivariance(self):
        """Shifting the input shifts the (valid, interior) output."""
        weight = Tensor(_rand((2, 1, 3, 3), 0))
        x = _rand((1, 1, 10, 10), 1)
        shifted = np.roll(x, shift=2, axis=3)
        out = conv2d(Tensor(x), weight).data
        out_shifted = conv2d(Tensor(shifted), weight).data
        # interior columns (away from the wrap-around boundary)
        np.testing.assert_allclose(
            out[..., :, : out.shape[-1] - 2],
            out_shifted[..., :, 2:],
            rtol=1e-4,
            atol=1e-4,
        )


class TestInvariances:
    @given(shift=st.floats(-50, 50))
    @settings(max_examples=20, deadline=None)
    def test_softmax_shift_invariance(self, shift):
        x = _rand((3, 7), 2)
        a = softmax(Tensor(x)).data
        b = softmax(Tensor(x + np.float32(shift))).data
        np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-5)

    @given(scale=st.floats(0.1, 10), shift=st.floats(-5, 5))
    @settings(max_examples=20, deadline=None)
    def test_layernorm_affine_invariance(self, scale, shift):
        """LN(s·x + t) == LN(x) for unit-gamma/zero-beta layers."""
        layer = nn.LayerNorm(8)
        x = _rand((4, 8), 3)
        a = layer(Tensor(x)).data
        b = layer(Tensor(np.float32(scale) * x + np.float32(shift))).data
        np.testing.assert_allclose(a, b, rtol=5e-3, atol=5e-3)

    def test_batchnorm_standardizes_any_affine_input(self):
        bn = nn.BatchNorm2d(3)
        x = _rand((16, 3, 4, 4), 4)
        out1 = bn(Tensor(x)).data
        bn2 = nn.BatchNorm2d(3)
        out2 = bn2(Tensor(x * 7.0 + 3.0)).data
        np.testing.assert_allclose(out1, out2, rtol=5e-3, atol=5e-3)


class TestDropoutStatistics:
    @given(p=st.floats(0.05, 0.9))
    @settings(max_examples=15, deadline=None)
    def test_expectation_preserved(self, p):
        from repro.tensor.ops import dropout

        x = Tensor(np.ones(50_000, np.float32))
        out = dropout(x, p, RNGBundle(1)).data
        assert out.mean() == pytest.approx(1.0, rel=0.08)
