"""Module system: registration, traversal, state-dict round trips."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module, Parameter
from repro.utils.rng import RNGBundle


class Leaf(Module):
    def __init__(self, n):
        super().__init__()
        self.weight = Parameter(np.ones(n, np.float32))
        self.register_buffer("count", np.asarray(0, dtype=np.int64))

    def forward(self, x):
        return x * self.weight


class Branch(Module):
    def __init__(self):
        super().__init__()
        self.left = Leaf(2)
        self.right = Leaf(3)

    def forward(self, x):
        return self.right(self.left(x))


class TestRegistration:
    def test_named_parameters_paths(self):
        m = Branch()
        names = [n for n, _ in m.named_parameters()]
        assert names == ["left.weight", "right.weight"]

    def test_named_buffers_paths(self):
        m = Branch()
        names = [n for n, _ in m.named_buffers()]
        assert names == ["left.count", "right.count"]

    def test_named_modules(self):
        m = Branch()
        names = [n for n, _ in m.named_modules()]
        assert names == ["", "left", "right"]

    def test_num_parameters(self):
        assert Branch().num_parameters() == 5

    def test_unregistered_buffer_update_raises(self):
        m = Leaf(2)
        with pytest.raises(KeyError):
            m._set_buffer("missing", np.zeros(1))


class TestTrainEval:
    def test_mode_propagates(self):
        m = Branch()
        m.eval()
        assert not m.training and not m.left.training
        m.train()
        assert m.training and m.right.training


class TestStateDict:
    def test_roundtrip_bitwise(self):
        m = Branch()
        m.left.weight.data[:] = np.float32([1.5, -2.5])
        m.left._set_buffer("count", np.asarray(9, np.int64))
        state = m.state_dict()
        fresh = Branch()
        fresh.load_state_dict(state)
        assert fresh.left.weight.data.tobytes() == m.left.weight.data.tobytes()
        assert int(fresh.left.count) == 9

    def test_state_dict_copies(self):
        m = Leaf(2)
        state = m.state_dict()
        state["weight"][0] = 99.0
        assert m.weight.data[0] == 1.0

    def test_missing_key_rejected(self):
        m = Branch()
        state = m.state_dict()
        del state["left.weight"]
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_unexpected_key_rejected(self):
        m = Branch()
        state = m.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        m = Branch()
        state = m.state_dict()
        state["left.weight"] = np.zeros(7, np.float32)
        with pytest.raises(ValueError):
            m.load_state_dict(state)

    def test_load_preserves_parameter_identity(self):
        m = Leaf(2)
        param = m.weight
        m.load_state_dict({"weight": np.float32([3.0, 4.0]), "count": np.asarray(1)})
        assert m.weight is param  # optimizers hold references
        np.testing.assert_array_equal(param.data, [3.0, 4.0])


class TestContainers:
    def test_sequential(self):
        from repro.tensor.tensor import Tensor

        seq = nn.Sequential(Leaf(3), Leaf(3))
        out = seq(Tensor(np.ones(3, np.float32)))
        np.testing.assert_array_equal(out.data, np.ones(3))
        assert len(seq) == 2
        assert len([1 for _ in seq]) == 2

    def test_module_list_traversal(self):
        ml = nn.ModuleList([Leaf(1), Leaf(1)])
        assert len(ml) == 2
        assert ml[0] is list(ml)[0]
        names = [n for n, _ in ml.named_parameters()]
        assert names == ["0.weight", "1.weight"]

    def test_module_list_not_callable(self):
        with pytest.raises(RuntimeError):
            nn.ModuleList([])(1)

    def test_zero_grad(self):
        m = Leaf(2)
        m.weight.grad = np.ones(2, np.float32)
        m.zero_grad()
        assert m.weight.grad is None
