"""Loss functions: values against references, gradients, stability."""

import numpy as np
import pytest

from repro.nn.loss import bce_with_logits, cross_entropy, mse_loss, smooth_l1
from repro.tensor.tensor import Tensor

from tests.tensor.test_autograd import check_grad, _rand


class TestCrossEntropy:
    def test_matches_reference(self):
        logits = _rand((6, 4), 1)
        targets = np.array([0, 1, 2, 3, 0, 1])
        loss = cross_entropy(Tensor(logits), targets).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        ref = -logp[np.arange(6), targets].mean()
        assert loss == pytest.approx(float(ref), rel=1e-4)

    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -20.0, np.float32)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        assert cross_entropy(Tensor(logits), np.array([1, 2])).item() < 1e-5

    def test_grad(self):
        x = Tensor(_rand((4, 5), 2), requires_grad=True)
        targets = np.array([1, 0, 4, 2])
        check_grad(lambda: cross_entropy(x, targets), [x])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(_rand((4, 5, 2))), np.zeros(4, np.int64))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(_rand((4, 5))), np.zeros(3, np.int64))


class TestMSE:
    def test_value(self):
        pred = Tensor(np.float32([1.0, 3.0]))
        assert mse_loss(pred, np.float32([0.0, 1.0])).item() == pytest.approx(2.5)

    def test_grad(self):
        x = Tensor(_rand((6,), 1), requires_grad=True)
        check_grad(lambda: mse_loss(x, np.zeros(6, np.float32)), [x])


class TestBCE:
    def test_matches_reference(self):
        logits = _rand((8,), 1) * 3
        targets = (np.random.default_rng(2).random(8) > 0.5).astype(np.float32)
        loss = bce_with_logits(Tensor(logits), targets).item()
        p = 1 / (1 + np.exp(-logits.astype(np.float64)))
        ref = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert loss == pytest.approx(float(ref), rel=1e-3)

    def test_stable_for_extreme_logits(self):
        logits = Tensor(np.float32([80.0, -80.0]))
        loss = bce_with_logits(logits, np.float32([1.0, 0.0]))
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-6

    def test_grad(self):
        x = Tensor(_rand((5,), 3), requires_grad=True)
        t = np.float32([1, 0, 1, 1, 0])
        check_grad(lambda: bce_with_logits(x, t), [x])


class TestSmoothL1:
    def test_quadratic_region(self):
        pred = Tensor(np.float32([0.5]))
        assert smooth_l1(pred, np.float32([0.0])).item() == pytest.approx(0.125)

    def test_linear_region(self):
        pred = Tensor(np.float32([3.0]))
        assert smooth_l1(pred, np.float32([0.0])).item() == pytest.approx(2.5)

    def test_grad_away_from_kink(self):
        x = Tensor(np.float32([0.4, -0.3, 2.5, -4.0]), requires_grad=True)
        check_grad(lambda: smooth_l1(x, np.zeros(4, np.float32)), [x])
