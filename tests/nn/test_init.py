"""Parameter initialization: distributions, fans, determinism."""

import math

import numpy as np
import pytest

from repro.nn.init import kaiming_uniform, normal_, uniform_fan_in_bias, xavier_uniform
from repro.utils.rng import RNGBundle


class TestKaiming:
    def test_bounds_linear(self):
        rng = RNGBundle(0)
        w = kaiming_uniform(rng, (64, 128))
        gain = math.sqrt(2.0 / (1.0 + 5.0))
        bound = gain * math.sqrt(3.0 / 128)
        assert np.abs(w).max() <= bound + 1e-6

    def test_bounds_conv_fan(self):
        rng = RNGBundle(0)
        w = kaiming_uniform(rng, (8, 4, 3, 3))
        bound = math.sqrt(2.0 / 6.0) * math.sqrt(3.0 / (4 * 9))
        assert np.abs(w).max() <= bound + 1e-6

    def test_deterministic(self):
        a = kaiming_uniform(RNGBundle(3), (5, 5))
        b = kaiming_uniform(RNGBundle(3), (5, 5))
        assert a.tobytes() == b.tobytes()


class TestBias:
    def test_bounds(self):
        b = uniform_fan_in_bias(RNGBundle(0), (100,), fan_in=25)
        assert np.abs(b).max() <= 0.2 + 1e-6

    def test_zero_fan_in(self):
        b = uniform_fan_in_bias(RNGBundle(0), (4,), fan_in=0)
        np.testing.assert_array_equal(b, np.zeros(4, np.float32))


class TestXavierNormal:
    def test_xavier_bounds(self):
        w = xavier_uniform(RNGBundle(1), (10, 40))
        bound = math.sqrt(6.0 / 50)
        assert np.abs(w).max() <= bound + 1e-6

    def test_normal_std(self):
        w = normal_(RNGBundle(2), (20000,), std=0.02)
        assert w.std() == pytest.approx(0.02, rel=0.05)
        assert w.dtype == np.float32
